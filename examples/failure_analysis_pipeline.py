#!/usr/bin/env python3
"""The Desh-style failure-analysis pipeline, end to end.

Reproduces: Fig 2a (the ten-sequence lead-time distribution) and the σ
inputs of Eq. 2, from synthetic logs.

1. Synthesize six months' worth of cluster logs with embedded failure
   chains (plus benign noise);
2. mine the chains back out and measure their lead times (Fig 2a);
3. refit the lead-time mixture and compare against the generating model;
4. use the fitted model the way the C/R models do: estimate σ — the
   fraction of failures live migration could avert for each application.

Run:
    python examples/failure_analysis_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.failures import (
    PAPER_LEAD_TIME_MODEL,
    fit_lead_time_model,
    mine_chains,
    synthesize_log,
)
from repro.experiments.report import format_table
from repro.platform import SUMMIT
from repro.workloads import APPLICATIONS


def main() -> None:
    rng = np.random.default_rng(2022)

    print("Synthesizing logs with 5000 embedded failure chains ...")
    records = synthesize_log(rng, n_failures=5000, nodes=1024)
    print(f"  {len(records)} log records")

    chains = mine_chains(records)
    print(f"  mined {len(chains)} chains "
          f"({len(chains) / 5000:.1%} recovery rate)")

    fitted = fit_lead_time_model(chains)
    rows = []
    for seq in PAPER_LEAD_TIME_MODEL.sequences:
        mined = next(
            (s for s in fitted.sequences if s.sequence_id == seq.sequence_id),
            None,
        )
        rows.append(
            [
                seq.sequence_id,
                seq.occurrences,
                seq.mean_lead,
                mined.mean_lead if mined else float("nan"),
                mined.occurrences if mined else 0,
            ]
        )
    print()
    print(
        format_table(
            ["seq", "true_per_10k", "true_mean_s", "mined_mean_s", "mined_n"],
            rows,
            title="Fig 2a — generating model vs mined chains",
            floatfmt="{:.1f}",
        )
    )

    print()
    rows = []
    for name, app in APPLICATIONS.items():
        theta = SUMMIT.lm_transfer_time(app.checkpoint_bytes_per_node)
        sigma = 0.85 * float(fitted.survival(theta))
        rows.append([name, theta, sigma])
    print(
        format_table(
            ["app", "lm_transfer_s", "sigma"],
            rows,
            title="σ per application (fraction of failures LM can avert)",
            floatfmt="{:.2f}",
        )
    )
    print()
    print("Large footprints push the LM transfer time past the dominant")
    print("~43 s lead-time mass, collapsing σ — exactly why the paper's")
    print("hybrid falls back to p-ckpt for large applications.")


if __name__ == "__main__":
    main()
