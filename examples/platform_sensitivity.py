#!/usr/bin/env python3
"""Platform sensitivity: what hardware makes p-ckpt win or lose?

Reproduces: the hardware reading of Observations 4 and 8 — how the
interconnect and single-node PFS bandwidths steer the hybrid's choice.

The paper's Observations 4 and 8 say the LM-vs-p-ckpt balance hinges on
two bandwidths: the interconnect (carries migrations) and the single-node
PFS path (carries prioritized commits). This example sweeps both around
their Summit values for the CHIMERA workload and reports which mechanism
the hybrid model ends up using.

Run:
    python examples/platform_sensitivity.py [--replications N]
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.experiments.report import format_table
from repro.experiments.runner import run_replications
from repro.failures import TITAN_WEIBULL
from repro.iomodel.bandwidth import GiB
from repro.platform import SUMMIT, InterconnectSpec
from repro.workloads import APPLICATIONS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replications", type=int, default=12)
    args = parser.parse_args()

    app = APPLICATIONS["CHIMERA"]
    rows = []
    for label, ic_bw in [
        ("half interconnect", 6.25 * GiB),
        ("Summit (12.5 GiB/s)", 12.5 * GiB),
        ("double interconnect", 25.0 * GiB),
    ]:
        platform = dataclasses.replace(
            SUMMIT, interconnect=InterconnectSpec(node_bw=ic_bw)
        )
        result = run_replications(
            app,
            "P2",
            replications=args.replications,
            platform=platform,
            weibull=TITAN_WEIBULL,
            seed=3,
        )
        ft = result.ft
        rows.append(
            [
                label,
                platform.lm_transfer_time(app.checkpoint_bytes_per_node),
                ft.mitigated_lm,
                ft.mitigated_pckpt,
                result.ft_ratio,
                result.total_overhead_hours,
            ]
        )

    print(
        format_table(
            ["interconnect", "lm_transfer_s", "mit_by_LM", "mit_by_pckpt",
             "ft_ratio", "total_overhead_h"],
            rows,
            title=f"{app.name} under hybrid p-ckpt vs interconnect bandwidth",
            floatfmt="{:.2f}",
        )
    )
    print()
    print("A faster interconnect shortens the migration window, shifting")
    print("mitigations from p-ckpt to LM; a slower one does the opposite —")
    print("but the hybrid's total FT ratio barely moves, because p-ckpt")
    print("catches whatever LM no longer can. That robustness to hardware")
    print("balance is the point of coordinating both mechanisms.")


if __name__ == "__main__":
    main()
