#!/usr/bin/env python3
"""Fig 4/7-style study: how lead-time variability affects each model.

Reproduces: Fig 4 (M1/M2) and Fig 7 (P1/P2) — overhead reduction under
−50%…+50% lead-time change.

Sweeps the prediction lead-time change from −50% to +50% for one
application and prints the overhead reductions of M1/M2 (prior work) and
P1/P2 (this paper) side by side — the core story of the paper: prediction
lead times are short and volatile, and only p-ckpt tolerates that.

Run:
    python examples/leadtime_study.py [--app CHIMERA] [--replications N]
"""

from __future__ import annotations

import argparse

from repro.experiments import leadvar
from repro.experiments.config import ExperimentScale
from repro.workloads import APPLICATIONS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="CHIMERA",
                        choices=sorted(APPLICATIONS))
    parser.add_argument("--replications", type=int, default=24)
    args = parser.parse_args()

    scale = ExperimentScale(replications=args.replications, seed=11)

    prior = leadvar.run(args.app, ("M1", "M2"), scale=scale)
    ours = leadvar.run(args.app, ("P1", "P2"), scale=scale)

    print(leadvar.render(prior))
    print()
    print(leadvar.render(ours))
    print()
    m2_drop = (
        prior.reductions[("M2", 0)]["total"]
        - prior.reductions[("M2", -10)]["total"]
    )
    p1_drop = (
        ours.reductions[("P1", 0)]["total"]
        - ours.reductions[("P1", -10)]["total"]
    )
    print(f"A −10% lead-time change costs M2 {m2_drop:.0f} points of total")
    print(f"overhead reduction on {args.app}, but only {p1_drop:.0f} points")
    print("under p-ckpt — the protocol's entire FT latency is one node's")
    print("prioritized PFS commit.")


if __name__ == "__main__":
    main()
