#!/usr/bin/env python3
"""Observation 8: when does p-ckpt beat live migration?

Reproduces: Observation 8 and Eqs. 4–8 (the LM-vs-p-ckpt break-even
curve), cross-checked against the Fig 6c transfer-size sweep.

Prints the analytical break-even curve α(σ) from the paper's Eqs. 4–8
(both the published Eq. 8 and the exact solution of Eq. 7), then
cross-checks it against simulation: the Fig 6c transfer-size sweep on one
large and one small application.

Run:
    python examples/breakeven_analysis.py [--simulate]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.breakeven import (
    alpha_breakeven,
    alpha_breakeven_exact,
    sigma_upper_bound,
)
from repro.experiments import fig6c
from repro.experiments.config import ExperimentScale
from repro.experiments.report import format_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--simulate", action="store_true",
                        help="also run the Fig 6c simulation sweep")
    parser.add_argument("--replications", type=int, default=16)
    args = parser.parse_args()

    sigmas = np.linspace(0.0, 0.60, 13)
    print(
        format_series(
            "sigma",
            [f"{s:.2f}" for s in sigmas],
            {
                "alpha (Eq. 8, published)": [alpha_breakeven(s) for s in sigmas],
                "alpha (Eq. 7, exact)": [alpha_breakeven_exact(s) for s in sigmas],
            },
            title="LM transfer factor alpha above which p-ckpt wins",
        )
    )
    print()
    print(f"Consistency bound: sigma < {sigma_upper_bound():.3f} "
          "(the golden-ratio conjugate; the paper rounds to 0.61).")
    print("Reproduction note: the published Eq. (8) understates the exact")
    print("Eq. (7) break-even — at sigma=0.5 the true threshold is "
          f"{alpha_breakeven_exact(0.5):.2f}, not {alpha_breakeven(0.5):.2f}.")

    if args.simulate:
        print()
        print("Simulated cross-check (Fig 6c sweep):")
        scale = ExperimentScale(replications=args.replications, seed=5)
        result = fig6c.run(alphas=(1.0, 2.0, 3.0), apps=("CHIMERA", "POP"),
                           scale=scale)
        print(fig6c.render(result))


if __name__ == "__main__":
    main()
