#!/usr/bin/env python3
"""Fig 6-style shoot-out: all five C/R models on three applications.

Reproduces: Fig 6a (per-model overhead breakdown under Titan's failure
distribution), at laptop scale.

Compares B, M1 (safeguard), M2 (live migration), P1 (p-ckpt), and
P2 (hybrid p-ckpt) on CHIMERA, XGC and POP under Titan's failure
distribution — a laptop-scale rendition of the paper's headline figure.

Run:
    python examples/model_shootout.py [--replications N]
"""

from __future__ import annotations

import argparse

from repro.experiments import fig6
from repro.experiments.config import ExperimentScale
from repro.failures import TITAN_WEIBULL


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replications", type=int, default=24)
    args = parser.parse_args()

    scale = ExperimentScale(replications=args.replications, seed=42)
    result = fig6.run(
        TITAN_WEIBULL,
        apps=("CHIMERA", "XGC", "POP"),
        scale=scale,
    )
    print(fig6.render(result))
    print()
    print("Reading the table: the paper's Observation 2 expects p-ckpt")
    print("(P1) and hybrid p-ckpt (P2) to beat safeguard (M1) and live")
    print("migration (M2), with the gap widest on the largest apps —")
    print("M1's all-node safeguard cannot finish inside a ~43 s lead,")
    print("while p-ckpt only needs the vulnerable node's own commit.")


if __name__ == "__main__":
    main()
