#!/usr/bin/env python3
"""Trace the p-ckpt two-phase protocol, span by span.

Reproduces: the protocol walk-through of Sec. VI / Fig 5 — prediction
notifications, lead-time-ordered vulnerable commits, pfs-commit
broadcasts, phase-2 landings, failures struck/avoided, and recoveries.

Constructs a deliberately hostile scenario — a large-footprint job on a
failure-prone machine — runs it under P1 with structured tracing
enabled, and then uses the full observability API:

* prints the record stream (spans rendered as ``>``/``<`` markers);
* filters it down to one protocol round (``only``-style queries);
* reconciles completed-span totals against the run's own overhead
  accounting via :func:`repro.analysis.metrics.trace_summary`;
* exports a Perfetto-viewable Chrome trace and a JSONL dump.

Run:
    python examples/pckpt_protocol_trace.py [--export-prefix PATH]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.metrics import trace_summary
from repro.des import BEGIN, Trace
from repro.iomodel.bandwidth import GiB
from repro.failures import WeibullParams
from repro.models import CRSimulation, get_model
from repro.workloads import ApplicationSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--export-prefix", default=None, metavar="PATH",
        help="also write PATH.json (Chrome trace) and PATH.jsonl",
    )
    args = parser.parse_args()

    # A 256-node job with CHIMERA-like per-node footprint, 6 hours of
    # compute, on a machine failing every ~1.5 hours.
    app = ApplicationSpec(
        name="HOSTILE",
        nodes=256,
        checkpoint_bytes_total=256 * 284.0 * GiB,
        compute_hours=6.0,
    )
    weibull = WeibullParams("angry-machine", shape=0.7, scale_hours=1.1,
                            system_nodes=256)

    trace = Trace(env=None, max_records=2000)  # adopted by the sim's env
    sim = CRSimulation(
        app,
        get_model("P1"),
        weibull=weibull,
        rng=np.random.default_rng(12),
        trace=trace,
    )
    out = sim.run()

    print("=== p-ckpt protocol trace (first 60 records) ===")
    print(trace.format(limit=60))
    print()

    # Zoom into the protocol itself: every p-ckpt record, via filter().
    pckpt_records = list(trace.filter(source="pckpt"))
    print(f"=== the pckpt source alone ({len(pckpt_records)} records) ===")
    for rec in pckpt_records[:12]:
        print(f"  [{rec.time:12.1f}s] {rec.ph} {rec.kind:<22s} {rec.detail!r}")
    print()

    print("=== protocol rounds (pckpt_protocol spans) ===")
    begins = list(trace.filter(kind="pckpt_protocol", ph=BEGIN))
    for rec in begins[:5]:
        print(f"  round at t={rec.time:.1f}s queue={rec.detail!r}")
    count, total = trace.span_totals.get("pckpt_protocol", (0, 0.0))
    print(f"  {count} rounds, {total:.1f} s blocked in total")
    print()

    print("=== span totals vs the engine's own accounting ===")
    summary = trace_summary(trace)
    for kind, stats in summary["spans"].items():
        print(f"  {kind:<20s} x{stats['count']:<5d} {stats['seconds']:12.1f} s")
    ov = summary["overhead"]
    print(f"  span-derived ckpt  : {ov['checkpoint']:12.1f} s "
          f"(engine: {out.overhead.checkpoint:.1f} s)")
    print(f"  span-derived recov : {ov['recovery']:12.1f} s "
          f"(engine: {out.overhead.recovery:.1f} s)")
    print(f"  span-derived recomp: {ov['recomputation']:12.1f} s "
          f"(engine: {out.overhead.recomputation:.1f} s)")
    print()

    print("=== run summary ===")
    print(f"makespan            : {out.makespan / 3600:.2f} h "
          f"(ideal {app.compute_hours:.1f} h)")
    print(f"failures            : {out.ft.failures} "
          f"({out.ft.predicted} predicted, {out.ft.false_alarms} false alarms)")
    print(f"mitigated by p-ckpt : {out.ft.mitigated_pckpt}")
    print(f"p-ckpt protocols run: {out.proactive_runs}")
    print(f"periodic checkpoints: {out.periodic_checkpoints}")
    print(f"overhead            : ckpt {out.overhead.checkpoint / 3600:.2f} h, "
          f"recomp {out.overhead.recomputation / 3600:.2f} h, "
          f"recovery {out.overhead.recovery / 3600:.2f} h")
    print(f"kernel              : {sim.env.events_processed} events, "
          f"heap high-water {sim.env.queue_high_water}")
    print()
    print("Event kinds seen:", ", ".join(trace.kinds()))

    if args.export_prefix:
        n = trace.to_chrome_trace(args.export_prefix + ".json")
        print(f"[wrote {n} Chrome trace events to {args.export_prefix}.json "
              f"— open in https://ui.perfetto.dev]")
        n = trace.to_jsonl(args.export_prefix + ".jsonl")
        print(f"[wrote {n} JSONL records to {args.export_prefix}.jsonl]")


if __name__ == "__main__":
    main()
