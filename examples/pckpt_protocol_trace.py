#!/usr/bin/env python3
"""Trace the p-ckpt two-phase protocol event by event.

Constructs a deliberately hostile scenario — a large-footprint job on a
failure-prone machine — runs it under P1 with tracing enabled, and prints
the protocol's life: prediction notifications, lead-time-ordered
vulnerable commits, pfs-commit broadcasts, phase-2 landings, failures
struck/avoided, and recoveries.

Run:
    python examples/pckpt_protocol_trace.py
"""

from __future__ import annotations

import numpy as np

from repro.des import Environment, Trace
from repro.failures import WeibullParams
from repro.iomodel.bandwidth import GiB
from repro.models import CRSimulation, get_model
from repro.workloads import ApplicationSpec


def main() -> None:
    # A 256-node job with CHIMERA-like per-node footprint, 6 hours of
    # compute, on a machine failing every ~1.5 hours.
    app = ApplicationSpec(
        name="HOSTILE",
        nodes=256,
        checkpoint_bytes_total=256 * 284.0 * GiB,
        compute_hours=6.0,
    )
    weibull = WeibullParams("angry-machine", shape=0.7, scale_hours=1.1,
                            system_nodes=256)

    trace = Trace(Environment(), max_records=400)
    sim = CRSimulation(
        app,
        get_model("P1"),
        weibull=weibull,
        rng=np.random.default_rng(12),
        trace=trace,
    )
    out = sim.run()

    print("=== p-ckpt protocol trace (first 60 records) ===")
    print(trace.format(limit=60))
    print()
    print("=== run summary ===")
    print(f"makespan            : {out.makespan / 3600:.2f} h "
          f"(ideal {app.compute_hours:.1f} h)")
    print(f"failures            : {out.ft.failures} "
          f"({out.ft.predicted} predicted, {out.ft.false_alarms} false alarms)")
    print(f"mitigated by p-ckpt : {out.ft.mitigated_pckpt}")
    print(f"p-ckpt protocols run: {out.proactive_runs}")
    print(f"periodic checkpoints: {out.periodic_checkpoints}")
    print(f"overhead            : ckpt {out.overhead.checkpoint / 3600:.2f} h, "
          f"recomp {out.overhead.recomputation / 3600:.2f} h, "
          f"recovery {out.overhead.recovery / 3600:.2f} h")
    print()
    print("Event kinds seen:", ", ".join(trace.kinds()))


if __name__ == "__main__":
    main()
