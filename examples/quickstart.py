#!/usr/bin/env python3
"""Quickstart: simulate one application under the hybrid p-ckpt model.

Reproduces: the POP column of Fig 6a (overhead bars, B vs P2) and its
Table IV FT-ratio entry, at laptop scale.

Runs the POP climate code (Table I) on the Summit-like platform under
Titan's failure distribution, first with plain periodic checkpointing
(model B) and then with hybrid p-ckpt (model P2), and prints the overhead
breakdown and fault-tolerance statistics side by side.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SUMMIT, TITAN_WEIBULL, run_replications
from repro.experiments.report import format_table
from repro.workloads import APPLICATIONS


def main() -> None:
    app = APPLICATIONS["POP"]
    print(
        f"Simulating {app.name}: {app.nodes} nodes, "
        f"{app.checkpoint_bytes_total / 2**30:.1f} GiB checkpoint, "
        f"{app.compute_hours:.0f} h of compute"
    )
    print(f"Platform: {SUMMIT.name}; failures: {TITAN_WEIBULL.name} "
          f"(job MTBF {TITAN_WEIBULL.app_mtbf_hours(app.nodes):.0f} h)")
    print()

    results = {}
    for model in ("B", "P2"):
        results[model] = run_replications(
            app, model, replications=40, weibull=TITAN_WEIBULL, seed=7
        )

    base = results["B"]
    rows = []
    for model, r in results.items():
        red = r.reduction_vs(base)
        rows.append(
            [
                model,
                r.total_overhead_hours,
                r.overhead.checkpoint_reported / 3600,
                r.overhead.recomputation / 3600,
                r.overhead.recovery / 3600,
                r.ft_ratio,
                red["total"],
            ]
        )
    print(
        format_table(
            ["model", "total_h", "ckpt_h", "recomp_h", "recov_h", "ft_ratio",
             "reduction_%"],
            rows,
            title=f"{app.name} fault-tolerance overhead (mean of 40 runs)",
            floatfmt="{:.2f}",
        )
    )
    print()
    print(
        f"Hybrid p-ckpt removed "
        f"{results['P2'].reduction_vs(base)['total']:.0f}% of the "
        f"fault-tolerance overhead."
    )


if __name__ == "__main__":
    main()
