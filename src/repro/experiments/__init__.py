"""Experiment drivers: one module per paper table/figure, plus the
Monte-Carlo runner and report formatting (see DESIGN.md §3)."""

from . import export, fig2a, fig2b, fig2c, fig6, fig6c, fig8, ftratio, leadvar, obs9
from .config import BENCH_SCALE, PAPER_SCALE, SMOKE_SCALE, ExperimentScale
from .runner import SimulationResult, run_replications, simulate_application
from .sweep import false_negative_sweep, lead_time_sweep, model_comparison

__all__ = [
    "SimulationResult",
    "run_replications",
    "simulate_application",
    "ExperimentScale",
    "SMOKE_SCALE",
    "BENCH_SCALE",
    "PAPER_SCALE",
    "model_comparison",
    "lead_time_sweep",
    "false_negative_sweep",
    "export",
    "fig2a",
    "fig2b",
    "fig2c",
    "fig6",
    "fig6c",
    "fig8",
    "ftratio",
    "leadvar",
    "obs9",
]
