"""Monte-Carlo experiment runner.

One replication = one :class:`~repro.models.base.CRSimulation` run with a
dedicated child seed.  Replications are embarrassingly parallel; the
runner vectorizes the outer loop across processes (HPC-parallel idiom:
keep the inner simulation single-threaded and simple, parallelize the
replication loop) while staying exactly reproducible — child seeds come
from ``SeedSequence.spawn``, so the result is independent of worker count
and scheduling order.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..analysis.metrics import FTStats, OverheadBreakdown, percent_reduction
from ..des.metrics import MetricsRegistry
from ..failures.leadtime import PAPER_LEAD_TIME_MODEL, LeadTimeModel
from ..failures.predictor import DEFAULT_PREDICTOR, PredictorSpec
from ..failures.weibull import TITAN_WEIBULL, WeibullParams
from ..models.base import CRSimulation, ModelConfig, RunOutput
from ..models.registry import get_model
from ..platform.system import SUMMIT, PlatformSpec
from ..workloads.applications import ApplicationSpec

__all__ = ["SimulationResult", "simulate_application", "run_replications"]

SECONDS_PER_HOUR = 3600.0


@dataclass
class SimulationResult:
    """Aggregated outcome of one (application, model) cell.

    Attributes
    ----------
    app_name / model_name:
        What was simulated.
    replications:
        Number of Monte-Carlo runs aggregated.
    overhead:
        Mean per-run overhead breakdown (seconds).
    overhead_std:
        Standard deviation of per-run *total* overhead (seconds).
    makespan_seconds:
        Mean wall time to completion.
    ft:
        Event counts summed over all replications (ratios are computed on
        the pooled counts — the paper's "averaged over 1000 runs").
    oci_initial / oci_final:
        Mean first/last checkpoint interval (seconds).
    metrics:
        Merged :class:`~repro.des.metrics.MetricsRegistry` across all
        replications when the run collected metrics, else ``None``.
        Merging happens in replication order, so the result is
        bit-identical regardless of worker count.
    """

    app_name: str
    model_name: str
    replications: int
    overhead: OverheadBreakdown
    overhead_std: float
    makespan_seconds: float
    ft: FTStats
    oci_initial: float
    oci_final: float
    metrics: Optional[MetricsRegistry] = None

    @property
    def total_overhead_hours(self) -> float:
        """Mean total overhead in hours (Fig 6 bar annotations)."""
        return self.overhead.total / SECONDS_PER_HOUR

    @property
    def ft_ratio(self) -> float:
        """Pooled FT ratio across replications."""
        return self.ft.ft_ratio

    def reduction_vs(self, base: "SimulationResult") -> Dict[str, float]:
        """Percent overhead reductions relative to a base-model result.

        Returns the paper's three categories plus the total.
        """
        return {
            "checkpoint": percent_reduction(
                base.overhead.checkpoint_reported, self.overhead.checkpoint_reported
            ),
            "recomputation": percent_reduction(
                base.overhead.recomputation, self.overhead.recomputation
            ),
            "recovery": percent_reduction(
                base.overhead.recovery, self.overhead.recovery
            ),
            "total": percent_reduction(base.overhead.total, self.overhead.total),
        }


def _run_once(
    app: ApplicationSpec,
    config: ModelConfig,
    platform: PlatformSpec,
    weibull: WeibullParams,
    lead_model: LeadTimeModel,
    predictor: PredictorSpec,
    seed_seq,
    collect_metrics: bool = False,
) -> RunOutput:
    """Worker: one replication (top-level for pickling)."""
    if not isinstance(seed_seq, np.random.SeedSequence):
        seed_seq = np.random.SeedSequence(seed_seq)
    rng = np.random.default_rng(seed_seq)
    sim = CRSimulation(
        app,
        config,
        platform=platform,
        weibull=weibull,
        lead_model=lead_model,
        predictor=predictor,
        rng=rng,
        metrics=MetricsRegistry() if collect_metrics else None,
    )
    return sim.run()


#: Chunks submitted per worker: enough slack for dynamic load balancing
#: near the tail, few enough that pickling/IPC stays per-chunk.
_CHUNKS_PER_WORKER = 4


def _run_chunk(
    app: ApplicationSpec,
    config: ModelConfig,
    platform: PlatformSpec,
    weibull: WeibullParams,
    lead_model: LeadTimeModel,
    predictor: PredictorSpec,
    children: Sequence,
    collect_metrics: bool,
) -> List[RunOutput]:
    """Worker: a contiguous chunk of replications (top-level for pickling)."""
    return [
        _run_once(app, config, platform, weibull, lead_model, predictor,
                  c, collect_metrics)
        for c in children
    ]


def _chunk_spans(n: int, workers: int) -> List[tuple]:
    """``(start, stop)`` chunk bounds: ~4 chunks per worker, order-stable."""
    size = max(1, math.ceil(n / (workers * _CHUNKS_PER_WORKER)))
    return [(start, min(start + size, n)) for start in range(0, n, size)]


def _retry_chunk_serially(
    app: ApplicationSpec,
    config: ModelConfig,
    platform: PlatformSpec,
    weibull: WeibullParams,
    lead_model: LeadTimeModel,
    predictor: PredictorSpec,
    children: Sequence,
    start: int,
    collect_metrics: bool,
    cause: BaseException,
) -> List[RunOutput]:
    """Re-run a crashed chunk in the parent, one replication at a time.

    A worker crash surfaces as one failed chunk future and would discard
    every completed replication; instead the chunk is retried serially
    once, which both salvages the run (transient crashes — OOM kill,
    interpreter death) and pins a deterministic failure to a replication
    index and seed before giving up.
    """
    outputs = []
    for offset, child in enumerate(children):
        index = start + offset
        try:
            outputs.append(
                _run_once(app, config, platform, weibull, lead_model,
                          predictor, child, collect_metrics)
            )
        except Exception as exc:
            raise RuntimeError(
                f"replication {index} (app={app.name}, model={config.name}, "
                f"seed spawn_key={tuple(child.spawn_key)}) failed in a "
                f"worker ({cause!r}) and again on serial retry"
            ) from exc
    return outputs


def _aggregate(
    app: ApplicationSpec, config: ModelConfig, outputs: Sequence[RunOutput]
) -> SimulationResult:
    n = len(outputs)
    mean_overhead = OverheadBreakdown()
    ft = FTStats()
    totals = np.array([o.overhead.total for o in outputs])
    for out in outputs:
        mean_overhead = mean_overhead + out.overhead
        ft = ft + out.ft
    mean_overhead = mean_overhead.scaled(1.0 / n)
    # Metrics snapshots merge in replication order — the outputs sequence
    # is already ordered by replication index regardless of which worker
    # produced each one, so aggregation is parallelism-independent.
    if any(o.metrics is not None for o in outputs):
        metrics = MetricsRegistry.merge_snapshots([o.metrics for o in outputs])
    else:
        metrics = None
    return SimulationResult(
        app_name=app.name,
        model_name=config.name,
        replications=n,
        overhead=mean_overhead,
        overhead_std=float(totals.std()),
        makespan_seconds=float(np.mean([o.makespan for o in outputs])),
        ft=ft,
        oci_initial=float(np.mean([o.oci_initial for o in outputs])),
        oci_final=float(np.mean([o.oci_final for o in outputs])),
        metrics=metrics,
    )


def _resolve_model(model: Union[str, ModelConfig]) -> ModelConfig:
    return get_model(model) if isinstance(model, str) else model


def simulate_application(
    app: ApplicationSpec,
    model: Union[str, ModelConfig],
    platform: PlatformSpec = SUMMIT,
    weibull: WeibullParams = TITAN_WEIBULL,
    lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    predictor: PredictorSpec = DEFAULT_PREDICTOR,
    seed: int = 0,
    collect_metrics: bool = False,
) -> SimulationResult:
    """Run a single replication of one application under one model.

    Convenience entry point for examples and quick looks; experiments use
    :func:`run_replications`.
    """
    config = _resolve_model(model)
    out = _run_once(app, config, platform, weibull, lead_model, predictor,
                    seed, collect_metrics)
    return _aggregate(app, config, [out])


def run_replications(
    app: ApplicationSpec,
    model: Union[str, ModelConfig],
    replications: int = 100,
    platform: PlatformSpec = SUMMIT,
    weibull: WeibullParams = TITAN_WEIBULL,
    lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    predictor: PredictorSpec = DEFAULT_PREDICTOR,
    seed: int = 0,
    workers: Optional[int] = None,
    collect_metrics: bool = False,
) -> SimulationResult:
    """Monte-Carlo estimate for one (application, model) cell.

    Parameters
    ----------
    replications:
        Number of runs (the paper uses 1000; benchmarks use fewer).
    seed:
        Root seed; children are spawned deterministically per replication.
    workers:
        Process count; ``None`` chooses serial below a size threshold and
        ``os.cpu_count()`` above it; 1 forces serial.
    collect_metrics:
        Attach a metrics registry to every replication and return the
        merged registry on the result.  Each worker ships back a plain
        snapshot dict; the merge happens here in replication order, so
        the aggregate is identical whatever *workers* is.
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    config = _resolve_model(model)
    root = np.random.SeedSequence(seed)
    children = root.spawn(replications)

    if workers is None:
        workers = 1 if replications < 8 else min(os.cpu_count() or 1, replications)

    if workers <= 1:
        outputs = [
            _run_once(app, config, platform, weibull, lead_model, predictor,
                      c, collect_metrics)
            for c in children
        ]
    else:
        # Submit worker-count-aware chunks (not one future per
        # replication): pickling and result IPC are paid per chunk, which
        # matters at PAPER_SCALE.  Futures are gathered in submission
        # order, so outputs stay in replication order and aggregation is
        # independent of which worker ran what.
        spans = _chunk_spans(replications, workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (
                    start,
                    stop,
                    pool.submit(
                        _run_chunk, app, config, platform, weibull,
                        lead_model, predictor, children[start:stop],
                        collect_metrics,
                    ),
                )
                for start, stop in spans
            ]
            outputs = []
            for start, stop, future in futures:
                try:
                    outputs.extend(future.result())
                except Exception as exc:
                    outputs.extend(
                        _retry_chunk_serially(
                            app, config, platform, weibull, lead_model,
                            predictor, children[start:stop], start,
                            collect_metrics, exc,
                        )
                    )
    return _aggregate(app, config, outputs)
