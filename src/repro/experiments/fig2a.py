"""Experiment E1 — Fig 2a: failure-prediction lead-time distribution.

Regenerates the paper's box-plot statistics for the ten failure sequences
two ways:

1. **analytic** — straight from the calibrated mixture model;
2. **mined** — by running the full Desh pipeline: synthesize a cluster
   log containing embedded failure chains, mine the chains back out, and
   summarize the recovered lead times.

The benchmark asserts the two agree, which validates the whole
failure-analysis substrate end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..failures.chains import fit_lead_time_model, mine_chains, synthesize_log
from ..failures.leadtime import PAPER_LEAD_TIME_MODEL, LeadTimeModel
from .report import format_table

__all__ = ["Fig2aResult", "run", "render"]


@dataclass
class Fig2aResult:
    """Per-sequence lead-time statistics, analytic and mined."""

    analytic: Dict[int, Dict[str, float]]
    mined: Dict[int, Dict[str, float]]
    n_chains_mined: int


def run(
    model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    n_failures: int = 4000,
    seed: int = 2022,
) -> Fig2aResult:
    """Generate the Fig 2a statistics.

    Parameters
    ----------
    n_failures:
        Failure chains embedded in the synthetic log (the paper mined six
        months of logs from three systems).
    """
    rng = np.random.default_rng(seed)
    analytic = model.boxplot_stats()

    records = synthesize_log(rng, n_failures, nodes=256, model=model)
    chains = mine_chains(records)
    fitted = fit_lead_time_model(chains)
    mined = fitted.boxplot_stats()
    return Fig2aResult(analytic=analytic, mined=mined, n_chains_mined=len(chains))


def render(result: Fig2aResult) -> str:
    """Format the Fig 2a table (one row per failure sequence)."""
    rows = []
    for sid in sorted(result.analytic):
        a = result.analytic[sid]
        m = result.mined.get(sid)
        rows.append(
            [
                sid,
                int(a["occurrences"]),
                a["mean"],
                a["median"],
                a["q1"],
                a["q3"],
                m["mean"] if m else float("nan"),
            ]
        )
    return format_table(
        ["seq", "occurrences", "mean_s", "median_s", "q1_s", "q3_s", "mined_mean_s"],
        rows,
        title=(
            "Fig 2a — lead-time distribution per failure sequence "
            f"(mined {result.n_chains_mined} chains from synthetic logs)"
        ),
        floatfmt="{:.1f}",
    )
