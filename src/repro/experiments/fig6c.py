"""Experiment E12 — Fig 6c: impact of the LM transfer-size factor α.

The paper varies LM's transfer size (M2-α models, α = data moved / ckpt
size) and compares against p-ckpt (P1): for large applications P1 beats
M2 until α drops toward the Eq. (8) break-even (≈1–2.5×); for small
applications LM always wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..failures.weibull import TITAN_WEIBULL, WeibullParams
from .config import BENCH_SCALE, ExperimentScale
from .report import format_table
from .runner import SimulationResult
from .sweep import model_comparison

__all__ = ["Fig6cResult", "run", "render", "DEFAULT_ALPHAS", "DEFAULT_APPS"]

DEFAULT_ALPHAS: Tuple[float, ...] = (1.0, 2.0, 2.5, 3.0, 4.0)
DEFAULT_APPS: Tuple[str, ...] = ("CHIMERA", "XGC", "POP")


@dataclass
class Fig6cResult:
    """Total-overhead reductions of P1 and the M2-α family."""

    apps: Tuple[str, ...]
    alphas: Tuple[float, ...]
    #: reductions[(model_name, app)] = percent total reduction vs B
    reductions: Dict[tuple, float]
    cells: Dict[tuple, SimulationResult]

    def crossover_alpha(self, app: str) -> float | None:
        """Largest α at which M2-α still loses to P1 (None if never)."""
        p1 = self.reductions[("P1", app)]
        losing = [a for a in self.alphas if self.reductions[(f"M2-{a:g}", app)] < p1]
        return max(losing) if losing else None


def run(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    apps: Sequence[str] = DEFAULT_APPS,
    weibull: WeibullParams = TITAN_WEIBULL,
    scale: ExperimentScale = BENCH_SCALE,
    **kwargs,
) -> Fig6cResult:
    """Run P1 against the M2-α family."""
    models = ["P1"] + [f"M2-{a:g}" for a in alphas]
    cells = model_comparison(models, list(apps), weibull, scale=scale, **kwargs)
    reductions: Dict[tuple, float] = {}
    for app in apps:
        base = cells[("B", app)]
        for m in models:
            reductions[(m, app)] = cells[(m, app)].reduction_vs(base)["total"]
    return Fig6cResult(
        apps=tuple(apps),
        alphas=tuple(alphas),
        reductions=reductions,
        cells=cells,
    )


def render(result: Fig6cResult) -> str:
    """Format the Fig 6c bars as a table (% total reduction vs B)."""
    headers = ["app", "P1"] + [f"M2-{a:g}" for a in result.alphas] + ["crossover_alpha"]
    rows = []
    for app in result.apps:
        xo = result.crossover_alpha(app)
        rows.append(
            [app, result.reductions[("P1", app)]]
            + [result.reductions[(f"M2-{a:g}", app)] for a in result.alphas]
            + ["-" if xo is None else f"{xo:g}"]
        )
    return format_table(
        headers,
        rows,
        title="Fig 6c — LM transfer-size sweep: % total-overhead reduction vs B",
        floatfmt="{:.1f}",
    )
