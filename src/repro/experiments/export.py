"""Machine-readable export of experiment results (JSON / CSV).

Each driver's result object converts to a flat list of records (one dict
per measured cell), so downstream plotting — matplotlib, pandas, a
spreadsheet — can regenerate the paper's figures from the raw data:

>>> from repro.experiments import fig6, export
>>> result = fig6.run(scale=...)          # doctest: +SKIP
>>> export.write_json("fig6a.json", export.records(result))  # doctest: +SKIP
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List

from .fig2a import Fig2aResult
from .fig2b import Fig2bResult
from .fig2c import Fig2cResult
from .fig6 import Fig6Result
from .fig6c import Fig6cResult
from .fig8 import Fig8Result
from .ftratio import FTRatioResult
from .leadvar import LeadVarResult
from .obs9 import Obs9Result
from .runner import SimulationResult

__all__ = ["simulation_record", "records", "to_csv", "write_json", "write_csv"]


def simulation_record(result: SimulationResult) -> Dict[str, Any]:
    """Flatten one Monte-Carlo cell into a JSON-able record."""
    return {
        "app": result.app_name,
        "model": result.model_name,
        "replications": result.replications,
        "checkpoint_overhead_s": result.overhead.checkpoint_reported,
        "recomputation_overhead_s": result.overhead.recomputation,
        "recovery_overhead_s": result.overhead.recovery,
        "total_overhead_s": result.overhead.total,
        "total_overhead_std_s": result.overhead_std,
        "makespan_s": result.makespan_seconds,
        "ft_ratio": result.ft_ratio,
        "failures": result.ft.failures,
        "predicted": result.ft.predicted,
        "mitigated_lm": result.ft.mitigated_lm,
        "mitigated_pckpt": result.ft.mitigated_pckpt,
        "mitigated_safeguard": result.ft.mitigated_safeguard,
        "false_alarms": result.ft.false_alarms,
        "lm_aborts": result.ft.lm_aborts,
        "oci_initial_s": result.oci_initial,
        "oci_final_s": result.oci_final,
    }


def _with(extra: Dict[str, Any], cell: SimulationResult) -> Dict[str, Any]:
    rec = simulation_record(cell)
    rec.update(extra)
    return rec


def records(result) -> List[Dict[str, Any]]:
    """Convert any driver result into a flat list of records."""
    if isinstance(result, Fig6Result):
        return [
            _with({"weibull": result.weibull_name}, cell)
            for cell in result.cells.values()
        ]
    if isinstance(result, Fig6cResult):
        return [simulation_record(cell) for cell in result.cells.values()]
    if isinstance(result, LeadVarResult):
        return [
            _with({"lead_change_percent": change}, cell)
            for (model, change), cell in result.cells.items()
        ]
    if isinstance(result, FTRatioResult):
        return [
            _with({"lead_change_percent": change}, cell)
            for (app, model, change), cell in result.cells.items()
        ]
    if isinstance(result, Fig8Result):
        return [
            _with(
                {
                    "lead_change_percent": change,
                    "lm_pckpt_difference_percent": result.difference[(app, change)],
                },
                cell,
            )
            for (app, change), cell in result.cells.items()
        ]
    if isinstance(result, Obs9Result):
        return [
            _with({"false_negative_rate": fn}, cell)
            for (model, fn), cell in result.cells.items()
        ]
    if isinstance(result, Fig2aResult):
        out = []
        for sid, stats in sorted(result.analytic.items()):
            rec = {"sequence_id": sid, "source": "analytic", **stats}
            out.append(rec)
        for sid, stats in sorted(result.mined.items()):
            out.append({"sequence_id": sid, "source": "mined", **stats})
        return out
    if isinstance(result, Fig2bResult):
        sweep = result.sweep
        return [
            {
                "tasks": t,
                "transfer_bytes": s,
                "bandwidth_bps": float(sweep.bandwidth[i, j]),
                "bandwidth_std_bps": float(sweep.bandwidth_std[i, j]),
            }
            for i, t in enumerate(sweep.task_counts)
            for j, s in enumerate(sweep.transfer_sizes)
        ]
    if isinstance(result, Fig2cResult):
        sweep = result.sweep
        return [
            {
                "nodes": n,
                "transfer_bytes": s,
                "bandwidth_bps": float(sweep.bandwidth[i, j]),
                "bandwidth_std_bps": float(sweep.bandwidth_std[i, j]),
            }
            for i, n in enumerate(sweep.node_counts)
            for j, s in enumerate(sweep.transfer_sizes)
        ]
    raise TypeError(f"no record converter for {type(result).__name__}")


def to_csv(rows: List[Dict[str, Any]]) -> str:
    """Render records as CSV text (union of keys, stable order)."""
    if not rows:
        return ""
    fields: List[str] = []
    for row in rows:
        for key in row:
            if key not in fields:
                fields.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields)
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()


def write_json(path: str, rows: List[Dict[str, Any]]) -> None:
    """Write records to *path* as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(rows, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_csv(path: str, rows: List[Dict[str, Any]]) -> None:
    """Write records to *path* as CSV."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_csv(rows))
