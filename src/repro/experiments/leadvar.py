"""Experiments E4/E10 — Figs 4 and 7: lead-time variability impact.

Shared driver: for one application, sweep the prediction lead-time change
and report each model's percent overhead reduction (checkpoint /
recomputation / recovery) relative to the base model at the same change —
exactly the y-axis of Figs 4 and 7.  Fig 4 calls it with models (M1, M2);
Fig 7 with (P1, P2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .config import BENCH_SCALE, ExperimentScale
from .report import format_table
from .runner import SimulationResult
from .sweep import lead_time_sweep

__all__ = ["LeadVarResult", "run", "render", "DEFAULT_CHANGES"]

DEFAULT_CHANGES: Tuple[float, ...] = (50, 10, 0, -10, -50)

_CATEGORIES = ("checkpoint", "recomputation", "recovery", "total")


@dataclass
class LeadVarResult:
    """Reductions per (model, change, category), plus raw cells."""

    app_name: str
    models: Tuple[str, ...]
    changes: Tuple[float, ...]
    #: reductions[(model, change)] = {category: percent}
    reductions: Dict[tuple, Dict[str, float]]
    cells: Dict[tuple, SimulationResult]

    def series(self, model: str, category: str) -> list:
        """One curve of a Fig 4/7 panel."""
        return [self.reductions[(model, c)][category] for c in self.changes]


def run(
    app_name: str,
    models: Sequence[str] = ("M1", "M2"),
    changes: Sequence[float] = DEFAULT_CHANGES,
    scale: ExperimentScale = BENCH_SCALE,
    **kwargs,
) -> LeadVarResult:
    """Sweep lead-time variability for *app_name* and the given models."""
    cells = lead_time_sweep(app_name, list(models), changes, scale=scale, **kwargs)
    reductions: Dict[tuple, Dict[str, float]] = {}
    for change in changes:
        base = cells[("B", change)]
        for model in models:
            reductions[(model, change)] = cells[(model, change)].reduction_vs(base)
    return LeadVarResult(
        app_name=app_name,
        models=tuple(models),
        changes=tuple(changes),
        reductions=reductions,
        cells=cells,
    )


def render(result: LeadVarResult) -> str:
    """Format the per-change reduction table (one Fig 4/7 panel)."""
    headers = ["lead_change_%"] + [
        f"{m}:{cat[:6]}" for m in result.models for cat in _CATEGORIES
    ]
    rows = []
    for change in result.changes:
        row: list = [f"{change:+g}%"]
        for m in result.models:
            red = result.reductions[(m, change)]
            row.extend(red[cat] for cat in _CATEGORIES)
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=(
            f"Lead-time variability impact for {result.app_name} "
            f"(% overhead reduction vs base model B; higher is better)"
        ),
        floatfmt="{:.1f}",
    )
