"""Plain-text rendering of experiment results (tables and series).

Every experiment driver renders through these helpers so benchmark output
visually matches the paper's tables/figures: same rows, same columns, same
units.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    floatfmt: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table.

    Floats go through *floatfmt*; everything else through ``str``.
    """
    def cell(v: object) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    cols = [list(col) for col in zip(*([list(headers)] + str_rows))] if str_rows else [
        [h] for h in headers
    ]
    widths = [max(len(v) for v in col) for col in cols]

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    floatfmt: str = "{:.2f}",
) -> str:
    """Render named series against a shared x-axis (a figure-as-text)."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [s[i] for s in series.values()]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title, floatfmt=floatfmt)


def format_kv(pairs: dict[str, object], title: str | None = None) -> str:
    """Render key/value facts, one per line."""
    width = max(len(k) for k in pairs) if pairs else 0
    lines = [title] if title else []
    for k, v in pairs.items():
        if isinstance(v, float):
            v = f"{v:.4g}"
        lines.append(f"{k.ljust(width)} : {v}")
    return "\n".join(lines)
