"""Experiment E3 — Fig 2c: weak-scaling I/O performance matrix.

Re-runs the paper's second I/O experiment: aggregate PFS bandwidth versus
node count and per-node transfer size (8 writer tasks/node, 10 runs
averaged).  The resulting matrix is exactly what the C/R simulation's
:class:`~repro.iomodel.matrix.MatrixPFSModel` interpolates, so this driver
also reports the matrix-vs-analytic interpolation error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..iomodel.bandwidth import GiB, TiB, aggregate_bandwidth
from ..iomodel.calibration import WeakScalingSweep, run_weak_scaling_sweep
from ..iomodel.matrix import MatrixPFSModel
from .report import format_table

__all__ = ["Fig2cResult", "run", "render"]


@dataclass
class Fig2cResult:
    """The matrix, its interpolator, and the model-fit error."""

    sweep: WeakScalingSweep
    max_interp_rel_error: float
    saturation_bw: float


def run(seed: int = 2022, nruns: int = 10) -> Fig2cResult:
    """Execute the weak-scaling campaign and fit the matrix model."""
    rng = np.random.default_rng(seed)
    sweep = run_weak_scaling_sweep(rng, nruns=nruns)
    model = MatrixPFSModel(sweep)

    # Probe interpolation fidelity at off-grid midpoints.
    errs = []
    nodes = np.asarray(sweep.node_counts)
    sizes = np.asarray(sweep.transfer_sizes)
    for n in np.sqrt(nodes[:-1] * nodes[1:]).astype(int):
        for s in np.sqrt(sizes[:-1] * sizes[1:]):
            truth = float(aggregate_bandwidth(int(max(n, 1)), float(s)))
            est = model.write_bandwidth(int(max(n, 1)), float(s))
            errs.append(abs(est - truth) / truth)
    return Fig2cResult(
        sweep=sweep,
        max_interp_rel_error=float(max(errs)),
        saturation_bw=float(sweep.bandwidth.max()),
    )


def render(result: Fig2cResult) -> str:
    """Format the Fig 2c heat map as a table (GiB/s)."""
    sweep = result.sweep
    headers = ["nodes"] + [f"{s / GiB:g}GiB" for s in sweep.transfer_sizes]
    rows = [
        [n] + [bw / GiB for bw in sweep.bandwidth[i]]
        for i, n in enumerate(sweep.node_counts)
    ]
    table = format_table(
        headers,
        rows,
        title="Fig 2c — aggregate write bandwidth vs nodes x transfer size (GiB/s)",
        floatfmt="{:.1f}",
    )
    return table + (
        f"\n=> realized saturation {result.saturation_bw / TiB:.2f} TiB/s; "
        f"matrix interpolation max rel. error "
        f"{result.max_interp_rel_error * 100:.1f}%"
    )
