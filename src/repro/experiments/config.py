"""Shared experiment configuration.

The paper runs 1000 replications per cell; that is available via
:data:`PAPER_SCALE`, while tests and benchmarks default to
:data:`BENCH_SCALE` so a full table regenerates in seconds-to-minutes on a
laptop.  All drivers accept an :class:`ExperimentScale` so the trade-off is
explicit at every call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ExperimentScale", "BENCH_SCALE", "SMOKE_SCALE", "PAPER_SCALE"]


@dataclass(frozen=True)
class ExperimentScale:
    """How much Monte-Carlo effort a driver spends.

    Attributes
    ----------
    replications:
        Runs per (application, model, parameter) cell.
    seed:
        Root seed (replications spawn deterministic children).
    workers:
        Process-pool width; ``None`` = auto.
    """

    replications: int = 30
    seed: int = 2022  # the paper's publication year, for flavour
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError("replications must be >= 1")


#: Fast shape-check scale for unit tests.
SMOKE_SCALE = ExperimentScale(replications=5)

#: Default benchmark scale — stable shapes in reasonable wall time.
BENCH_SCALE = ExperimentScale(replications=30)

#: The paper's scale (1000 runs averaged).
PAPER_SCALE = ExperimentScale(replications=1000)
