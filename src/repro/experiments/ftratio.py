"""Experiments E5/E9 — Tables II and IV: FT ratio under lead variability.

FT ratio = successfully mitigated failures / total failures.  Table II
reports it for models M1/M2, Table IV for P1/P2, each for CHIMERA, XGC
and POP across lead-time changes of +50/+10/0/−10/−50%.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Sequence, Tuple

from .config import BENCH_SCALE, ExperimentScale
from .report import format_table
from .runner import SimulationResult
from .sweep import lead_time_sweep

__all__ = ["FTRatioResult", "run", "render", "DEFAULT_APPS"]

DEFAULT_APPS: Tuple[str, ...] = ("CHIMERA", "XGC", "POP")
DEFAULT_CHANGES: Tuple[float, ...] = (50, 10, 0, -10, -50)

#: FT ratios are pooled counts, so apps with few failures per run (small
#: node counts → long MTBFs) need proportionally more replications for a
#: stable estimate.  CHIMERA sees ~7 failures per 360 h run while POP sees
#: ~0.5 per 480 h run.
DEFAULT_REPLICATION_BOOST: Mapping[str, int] = {
    "S3D": 3,
    "GYRO": 8,
    "POP": 8,
    "VULCAN": 8,
}


@dataclass
class FTRatioResult:
    """FT ratios per (app, model, lead change)."""

    apps: Tuple[str, ...]
    models: Tuple[str, ...]
    changes: Tuple[float, ...]
    #: ratios[(app, model, change)] = ft ratio
    ratios: Dict[tuple, float]
    cells: Dict[tuple, SimulationResult]


def run(
    models: Sequence[str],
    apps: Sequence[str] = DEFAULT_APPS,
    changes: Sequence[float] = DEFAULT_CHANGES,
    scale: ExperimentScale = BENCH_SCALE,
    replication_boost: Mapping[str, int] = DEFAULT_REPLICATION_BOOST,
    **kwargs,
) -> FTRatioResult:
    """Compute the Table II / IV grid for the given models.

    Parameters
    ----------
    replication_boost:
        Per-app multiplier on ``scale.replications`` (see
        :data:`DEFAULT_REPLICATION_BOOST`).
    """
    ratios: Dict[tuple, float] = {}
    cells: Dict[tuple, SimulationResult] = {}
    for app in apps:
        app_scale = replace(
            scale,
            replications=scale.replications * replication_boost.get(app, 1),
        )
        grid = lead_time_sweep(
            app, list(models), changes, scale=app_scale, include_base=False,
            **kwargs
        )
        for (model, change), res in grid.items():
            ratios[(app, model, change)] = res.ft_ratio
            cells[(app, model, change)] = res
    return FTRatioResult(
        apps=tuple(apps),
        models=tuple(models),
        changes=tuple(changes),
        ratios=ratios,
        cells=cells,
    )


def render(result: FTRatioResult, title: str = "FT ratio") -> str:
    """Format the grid in the paper's layout (apps × models as columns)."""
    headers = ["lead_change"] + [
        f"{app}:{m}" for app in result.apps for m in result.models
    ]
    rows = []
    for change in result.changes:
        row: list = [f"{change:+g}%"]
        for app in result.apps:
            for m in result.models:
                row.append(result.ratios[(app, m, change)])
        rows.append(row)
    return format_table(headers, rows, title=title, floatfmt="{:.3f}")
