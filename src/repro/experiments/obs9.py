"""Experiment E13 — Observation 9: sensitivity to false negatives.

Hold the false-positive rate at 18% and sweep the false-negative rate up
to 40%.  Every model's overhead reduction declines, but the LM-assisted
models (M2/P2) lose *recomputation* reductions faster than M1/P1 — their
σ-based OCI keeps assuming the nominal 85% recall, so the checkpoint
interval stays too long for the failures they can actually catch.

The driver can also run the paper's proposed fix (``P2-fn``, whose σ uses
the actual recall) as an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .config import BENCH_SCALE, ExperimentScale
from .report import format_table
from .runner import SimulationResult
from .sweep import false_negative_sweep

__all__ = ["Obs9Result", "run", "render", "DEFAULT_FN_RATES"]

DEFAULT_FN_RATES: Tuple[float, ...] = (0.15, 0.25, 0.40)


@dataclass
class Obs9Result:
    """Reductions per (model, FN rate)."""

    app_name: str
    models: Tuple[str, ...]
    fn_rates: Tuple[float, ...]
    #: reductions[(model, fn)] = {category: percent vs B at same fn}
    reductions: Dict[tuple, Dict[str, float]]
    cells: Dict[tuple, SimulationResult]

    def decline(self, model: str, category: str = "recomputation") -> float:
        """Reduction lost between the lowest and highest FN rate (points)."""
        lo, hi = self.fn_rates[0], self.fn_rates[-1]
        return (
            self.reductions[(model, lo)][category]
            - self.reductions[(model, hi)][category]
        )


def run(
    app_name: str = "XGC",
    models: Sequence[str] = ("M1", "M2", "P1", "P2"),
    fn_rates: Sequence[float] = DEFAULT_FN_RATES,
    scale: ExperimentScale = BENCH_SCALE,
    **kwargs,
) -> Obs9Result:
    """Sweep the FN rate for *app_name*."""
    cells = false_negative_sweep(app_name, list(models), fn_rates, scale=scale, **kwargs)
    reductions: Dict[tuple, Dict[str, float]] = {}
    for fn in fn_rates:
        base = cells[("B", fn)]
        for model in models:
            name = model if isinstance(model, str) else model.name
            reductions[(name, fn)] = cells[(name, fn)].reduction_vs(base)
    return Obs9Result(
        app_name=app_name,
        models=tuple(m if isinstance(m, str) else m.name for m in models),
        fn_rates=tuple(fn_rates),
        reductions=reductions,
        cells=cells,
    )


def render(result: Obs9Result) -> str:
    """Format reductions vs FN rate."""
    headers = ["fn_rate"] + [
        f"{m}:{cat}" for m in result.models for cat in ("total", "recomputation")
    ]
    rows = []
    for fn in result.fn_rates:
        row: list = [f"{fn:.0%}"]
        for m in result.models:
            red = result.reductions[(m, fn)]
            row.extend((red["total"], red["recomputation"]))
        rows.append(row)
    table = format_table(
        headers,
        rows,
        title=(
            f"Observation 9 — overhead reductions vs false-negative rate "
            f"({result.app_name}, FP fixed at 18%)"
        ),
        floatfmt="{:.1f}",
    )
    declines = ", ".join(
        f"{m}: -{result.decline(m):.0f}pts" for m in result.models
    )
    return table + f"\n=> recomputation-reduction decline (15%->40% FN): {declines}"
