"""Experiments E6/E7/E8 — Fig 6a/6b and the System-8 variant (Obs. 7).

For every Table I application, compare the five C/R models under one
Table III failure distribution: stacked overhead breakdown normalized to
the base model, annotated with absolute overhead hours — the paper's
Fig 6 bars as a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..failures.weibull import TITAN_WEIBULL, WeibullParams
from ..workloads.applications import APPLICATION_ORDER
from .config import BENCH_SCALE, ExperimentScale
from .report import format_table
from .runner import SimulationResult
from .sweep import model_comparison

__all__ = ["Fig6Result", "run", "render", "DEFAULT_MODELS"]

DEFAULT_MODELS: Tuple[str, ...] = ("B", "M1", "M2", "P1", "P2")


@dataclass
class Fig6Result:
    """Overhead comparison under one failure distribution."""

    weibull_name: str
    apps: Tuple[str, ...]
    models: Tuple[str, ...]
    cells: Dict[tuple, SimulationResult]

    def total_reduction(self, model: str, app: str) -> float:
        """Percent total-overhead reduction of *model* vs B for *app*."""
        base = self.cells[("B", app)]
        return self.cells[(model, app)].reduction_vs(base)["total"]

    def reduction_range(self, model: str) -> Tuple[float, float]:
        """(min, max) total reduction across applications — the paper's
        headline "≈53–65%" style numbers."""
        vals = [self.total_reduction(model, a) for a in self.apps]
        return (min(vals), max(vals))


def run(
    weibull: WeibullParams = TITAN_WEIBULL,
    models: Sequence[str] = DEFAULT_MODELS,
    apps: Sequence[str] = APPLICATION_ORDER,
    scale: ExperimentScale = BENCH_SCALE,
    **kwargs,
) -> Fig6Result:
    """Run the Fig 6 grid under *weibull*."""
    cells = model_comparison(list(models), list(apps), weibull, scale=scale, **kwargs)
    return Fig6Result(
        weibull_name=weibull.name,
        apps=tuple(apps),
        models=tuple(models),
        cells=cells,
    )


def render(result: Fig6Result) -> str:
    """Format one Fig 6 panel: per-app stacked overheads and reductions."""
    headers = [
        "app",
        "model",
        "total_h",
        "ckpt_h",
        "recomp_h",
        "recov_h",
        "overhead_%ofB",
        "reduction_%",
        "ft_ratio",
    ]
    rows = []
    for app in result.apps:
        base = result.cells[("B", app)]
        for m in result.models:
            r = result.cells[(m, app)]
            rows.append(
                [
                    app,
                    m,
                    r.total_overhead_hours,
                    r.overhead.checkpoint_reported / 3600.0,
                    r.overhead.recomputation / 3600.0,
                    r.overhead.recovery / 3600.0,
                    100.0 * r.overhead.total / base.overhead.total
                    if base.overhead.total
                    else 0.0,
                    r.reduction_vs(base)["total"],
                    r.ft_ratio,
                ]
            )
    table = format_table(
        headers,
        rows,
        title=(
            f"Fig 6 — overhead breakdown under the {result.weibull_name} "
            "failure distribution (normalized to model B)"
        ),
        floatfmt="{:.2f}",
    )
    summaries = []
    for m in result.models:
        if m == "B":
            continue
        lo, hi = result.reduction_range(m)
        summaries.append(f"{m}: {lo:.0f}..{hi:.0f}%")
    return table + "\n=> total-overhead reduction ranges: " + "; ".join(summaries)
