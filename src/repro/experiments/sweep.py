"""Shared sweep engines used by the per-figure experiment drivers.

Three reusable grids cover the paper's evaluation:

* :func:`model_comparison` — (model × application) cells against one
  failure distribution, with overhead reductions relative to model B
  (Figs 6a/6b, System-8 text, Fig 6c's M2-α variants);
* :func:`lead_time_sweep` — (model × lead-time-change) cells for one
  application (Figs 4 and 7, Tables II and IV, Fig 8);
* :func:`false_negative_sweep` — (model × FN-rate) cells (Observation 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from ..failures.leadtime import PAPER_LEAD_TIME_MODEL, LeadTimeModel
from ..failures.predictor import DEFAULT_PREDICTOR, PredictorSpec
from ..failures.weibull import TITAN_WEIBULL, WeibullParams
from ..models.base import ModelConfig
from ..platform.system import SUMMIT, PlatformSpec
from ..workloads.applications import APPLICATIONS, ApplicationSpec
from .config import BENCH_SCALE, ExperimentScale
from .runner import SimulationResult, run_replications

__all__ = [
    "CellKey",
    "model_comparison",
    "lead_time_sweep",
    "false_negative_sweep",
]

#: Grid cells are keyed "(model, column)" where column is an app name, a
#: lead-time change, or a FN rate depending on the sweep.
CellKey = tuple


def _run_cell(
    app: ApplicationSpec,
    model: Union[str, ModelConfig],
    scale: ExperimentScale,
    platform: PlatformSpec,
    weibull: WeibullParams,
    lead_model: LeadTimeModel,
    predictor: PredictorSpec,
) -> SimulationResult:
    return run_replications(
        app,
        model,
        replications=scale.replications,
        platform=platform,
        weibull=weibull,
        lead_model=lead_model,
        predictor=predictor,
        seed=scale.seed,
        workers=scale.workers,
    )


def model_comparison(
    models: Sequence[Union[str, ModelConfig]],
    apps: Sequence[str] | None = None,
    weibull: WeibullParams = TITAN_WEIBULL,
    scale: ExperimentScale = BENCH_SCALE,
    platform: PlatformSpec = SUMMIT,
    lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    predictor: PredictorSpec = DEFAULT_PREDICTOR,
    include_base: bool = True,
) -> Dict[CellKey, SimulationResult]:
    """Run every model on every application under one failure distribution.

    Returns ``{(model_name, app_name): SimulationResult}``.  Model "B" is
    always included (prepended if missing) so reductions can be computed.
    """
    names = [m if isinstance(m, str) else m.name for m in models]
    work: List[Union[str, ModelConfig]] = list(models)
    if include_base and "B" not in names:
        work.insert(0, "B")
    if apps is None:
        apps = list(APPLICATIONS)
    out: Dict[CellKey, SimulationResult] = {}
    for app_name in apps:
        app = APPLICATIONS[app_name]
        for model in work:
            res = _run_cell(app, model, scale, platform, weibull, lead_model, predictor)
            out[(res.model_name, app_name)] = res
    return out


def lead_time_sweep(
    app_name: str,
    models: Sequence[Union[str, ModelConfig]],
    changes_percent: Sequence[float] = (50, 10, 0, -10, -50),
    weibull: WeibullParams = TITAN_WEIBULL,
    scale: ExperimentScale = BENCH_SCALE,
    platform: PlatformSpec = SUMMIT,
    lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    predictor: PredictorSpec = DEFAULT_PREDICTOR,
    include_base: bool = True,
) -> Dict[CellKey, SimulationResult]:
    """Sweep prediction lead-time variability for one application.

    Returns ``{(model_name, change_percent): SimulationResult}``; the base
    model (unaffected by lead times) is run once per change for exact
    common-random-number pairing.
    """
    app = APPLICATIONS[app_name]
    names = [m if isinstance(m, str) else m.name for m in models]
    work: List[Union[str, ModelConfig]] = list(models)
    if include_base and "B" not in names:
        work.insert(0, "B")
    out: Dict[CellKey, SimulationResult] = {}
    for change in changes_percent:
        pred = predictor.with_lead_change(change)
        for model in work:
            res = _run_cell(app, model, scale, platform, weibull, lead_model, pred)
            out[(res.model_name, change)] = res
    return out


def false_negative_sweep(
    app_name: str,
    models: Sequence[Union[str, ModelConfig]],
    fn_rates: Sequence[float] = (0.15, 0.25, 0.40),
    weibull: WeibullParams = TITAN_WEIBULL,
    scale: ExperimentScale = BENCH_SCALE,
    platform: PlatformSpec = SUMMIT,
    lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    predictor: PredictorSpec = DEFAULT_PREDICTOR,
    include_base: bool = True,
) -> Dict[CellKey, SimulationResult]:
    """Sweep the false-negative rate at fixed FP=18% (Observation 9).

    Returns ``{(model_name, fn_rate): SimulationResult}``.
    """
    app = APPLICATIONS[app_name]
    names = [m if isinstance(m, str) else m.name for m in models]
    work: List[Union[str, ModelConfig]] = list(models)
    if include_base and "B" not in names:
        work.insert(0, "B")
    out: Dict[CellKey, SimulationResult] = {}
    for fn in fn_rates:
        pred = predictor.with_false_negative_rate(fn)
        for model in work:
            res = _run_cell(app, model, scale, platform, weibull, lead_model, pred)
            out[(res.model_name, fn)] = res
    return out
