"""Shared sweep engines used by the per-figure experiment drivers.

Three reusable grids cover the paper's evaluation:

* :func:`model_comparison` — (model × application) cells against one
  failure distribution, with overhead reductions relative to model B
  (Figs 6a/6b, System-8 text, Fig 6c's M2-α variants);
* :func:`lead_time_sweep` — (model × lead-time-change) cells for one
  application (Figs 4 and 7, Tables II and IV, Fig 8);
* :func:`false_negative_sweep` — (model × FN-rate) cells (Observation 9).

All three flatten their grid into campaign cells and execute them through
:func:`repro.campaign.scheduler.run_campaign`: one shared process pool
for the whole grid (instead of one pool per cell), optional
content-addressed caching via ``store=``, and live progress via
``progress=``.  Results are bit-identical to running each cell through
:func:`~repro.experiments.runner.run_replications` serially — sharding
and caching never change the numbers (see ``docs/CAMPAIGN.md``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from ..failures.leadtime import PAPER_LEAD_TIME_MODEL, LeadTimeModel
from ..failures.predictor import DEFAULT_PREDICTOR, PredictorSpec
from ..failures.weibull import TITAN_WEIBULL, WeibullParams
from ..models.base import ModelConfig
from ..models.registry import get_model
from ..platform.system import SUMMIT, PlatformSpec
from ..workloads.applications import APPLICATIONS, ApplicationSpec
from .config import BENCH_SCALE, ExperimentScale
from .runner import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..campaign.progress import CampaignProgress
    from ..campaign.store import ResultStore

__all__ = [
    "CellKey",
    "model_comparison",
    "lead_time_sweep",
    "false_negative_sweep",
]

#: Grid cells are keyed "(model, column)" where column is an app name, a
#: lead-time change, or a FN rate depending on the sweep.
CellKey = tuple


def _with_base(models: Sequence[Union[str, ModelConfig]],
               include_base: bool) -> List[Union[str, ModelConfig]]:
    names = [m if isinstance(m, str) else m.name for m in models]
    work: List[Union[str, ModelConfig]] = list(models)
    if include_base and "B" not in names:
        work.insert(0, "B")
    return work


def _run_grid(
    grid: Sequence[tuple],
    scale: ExperimentScale,
    platform: PlatformSpec,
    weibull: WeibullParams,
    lead_model: LeadTimeModel,
    store: "Optional[ResultStore]",
    progress: "Optional[CampaignProgress]",
    resume: bool,
) -> Dict[CellKey, SimulationResult]:
    """Execute ``[(column, app, model, predictor), ...]`` as one campaign.

    Cells are keyed ``(resolved_model_name, column)``, matching what the
    serial engines produced from ``res.model_name``.  The campaign import
    is deferred to the call: ``repro.campaign`` builds on
    :mod:`repro.experiments.runner`, so a module-level import here would
    be circular.
    """
    from ..campaign.plan import CellSpec
    from ..campaign.scheduler import run_campaign

    cells = []
    for column, app, model, predictor in grid:
        config = get_model(model) if isinstance(model, str) else model
        cells.append(
            CellSpec(
                key=(config.name, column),
                app=app,
                model=config,
                platform=platform,
                weibull=weibull,
                lead_model=lead_model,
                predictor=predictor,
                seed=scale.seed,
                replications=scale.replications,
            )
        )
    return run_campaign(cells, store=store, workers=scale.workers,
                        progress=progress, resume=resume)


def model_comparison(
    models: Sequence[Union[str, ModelConfig]],
    apps: Sequence[str] | None = None,
    weibull: WeibullParams = TITAN_WEIBULL,
    scale: ExperimentScale = BENCH_SCALE,
    platform: PlatformSpec = SUMMIT,
    lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    predictor: PredictorSpec = DEFAULT_PREDICTOR,
    include_base: bool = True,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[CampaignProgress]" = None,
    resume: bool = True,
) -> Dict[CellKey, SimulationResult]:
    """Run every model on every application under one failure distribution.

    Returns ``{(model_name, app_name): SimulationResult}``.  Model "B" is
    always included (prepended if missing) so reductions can be computed.
    """
    work = _with_base(models, include_base)
    if apps is None:
        apps = list(APPLICATIONS)
    grid = []
    for app_name in apps:
        app = APPLICATIONS[app_name]
        for model in work:
            grid.append((app_name, app, model, predictor))
    return _run_grid(grid, scale, platform, weibull, lead_model,
                     store, progress, resume)


def lead_time_sweep(
    app_name: str,
    models: Sequence[Union[str, ModelConfig]],
    changes_percent: Sequence[float] = (50, 10, 0, -10, -50),
    weibull: WeibullParams = TITAN_WEIBULL,
    scale: ExperimentScale = BENCH_SCALE,
    platform: PlatformSpec = SUMMIT,
    lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    predictor: PredictorSpec = DEFAULT_PREDICTOR,
    include_base: bool = True,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[CampaignProgress]" = None,
    resume: bool = True,
) -> Dict[CellKey, SimulationResult]:
    """Sweep prediction lead-time variability for one application.

    Returns ``{(model_name, change_percent): SimulationResult}``; the base
    model (unaffected by lead times) is run once per change for exact
    common-random-number pairing.
    """
    app = APPLICATIONS[app_name]
    work = _with_base(models, include_base)
    grid = []
    for change in changes_percent:
        pred = predictor.with_lead_change(change)
        for model in work:
            grid.append((change, app, model, pred))
    return _run_grid(grid, scale, platform, weibull, lead_model,
                     store, progress, resume)


def false_negative_sweep(
    app_name: str,
    models: Sequence[Union[str, ModelConfig]],
    fn_rates: Sequence[float] = (0.15, 0.25, 0.40),
    weibull: WeibullParams = TITAN_WEIBULL,
    scale: ExperimentScale = BENCH_SCALE,
    platform: PlatformSpec = SUMMIT,
    lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    predictor: PredictorSpec = DEFAULT_PREDICTOR,
    include_base: bool = True,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[CampaignProgress]" = None,
    resume: bool = True,
) -> Dict[CellKey, SimulationResult]:
    """Sweep the false-negative rate at fixed FP=18% (Observation 9).

    Returns ``{(model_name, fn_rate): SimulationResult}``.
    """
    app = APPLICATIONS[app_name]
    work = _with_base(models, include_base)
    grid = []
    for fn in fn_rates:
        pred = predictor.with_false_negative_rate(fn)
        for model in work:
            grid.append((fn, app, model, pred))
    return _run_grid(grid, scale, platform, weibull, lead_model,
                     store, progress, resume)
