"""Shared sweep engines used by the per-figure experiment drivers.

Three reusable grids cover the paper's evaluation:

* :func:`model_comparison` — (model × application) cells against one
  failure distribution, with overhead reductions relative to model B
  (Figs 6a/6b, System-8 text, Fig 6c's M2-α variants);
* :func:`lead_time_sweep` — (model × lead-time-change) cells for one
  application (Figs 4 and 7, Tables II and IV, Fig 8);
* :func:`false_negative_sweep` — (model × FN-rate) cells (Observation 9).

All three are thin adapters over :mod:`repro.spec.build`: each engine
folds its kwargs into a :class:`~repro.spec.build.ResolvedExperiment`
and hands it to :func:`~repro.spec.build.run_resolved`, which lays out
the grid with the **same** :func:`~repro.spec.build.build_cells` the
declarative ``pckpt run --spec FILE`` path uses.  One grid constructor
means one set of content-addressed store keys: a sweep launched from a
spec file and the equivalent kwargs call hit identical cache entries
(see ``docs/EXPERIMENT_SPEC.md``).

Execution goes through :func:`repro.campaign.scheduler.run_campaign`:
one shared process pool for the whole grid, optional content-addressed
caching via ``store=``, and live progress via ``progress=``.  Results
are bit-identical to running each cell through
:func:`~repro.experiments.runner.run_replications` serially — sharding
and caching never change the numbers (see ``docs/CAMPAIGN.md``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Union

from ..failures.leadtime import PAPER_LEAD_TIME_MODEL, LeadTimeModel
from ..failures.predictor import DEFAULT_PREDICTOR, PredictorSpec
from ..failures.weibull import TITAN_WEIBULL, WeibullParams
from ..models.base import ModelConfig
from ..platform.system import SUMMIT, PlatformSpec
from ..spec.build import ResolvedExperiment, _resolve_models, run_resolved
from ..spec.schema import SweepAxis
from ..workloads.applications import APPLICATIONS
from .config import BENCH_SCALE, ExperimentScale
from .runner import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..campaign.progress import CampaignProgress
    from ..campaign.store import ResultStore

__all__ = [
    "CellKey",
    "model_comparison",
    "lead_time_sweep",
    "false_negative_sweep",
]

#: Grid cells are keyed "(model, column)" where column is an app name, a
#: lead-time change, or a FN rate depending on the sweep.
CellKey = tuple


def model_comparison(
    models: Sequence[Union[str, ModelConfig]],
    apps: Sequence[str] | None = None,
    weibull: WeibullParams = TITAN_WEIBULL,
    scale: ExperimentScale = BENCH_SCALE,
    platform: PlatformSpec = SUMMIT,
    lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    predictor: PredictorSpec = DEFAULT_PREDICTOR,
    include_base: bool = True,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[CampaignProgress]" = None,
    resume: bool = True,
) -> Dict[CellKey, SimulationResult]:
    """Run every model on every application under one failure distribution.

    Returns ``{(model_name, app_name): SimulationResult}``.  Model "B" is
    always included (prepended if missing) so reductions can be computed.
    """
    if apps is None:
        apps = list(APPLICATIONS)
    experiment = ResolvedExperiment(
        apps=tuple(APPLICATIONS[a] for a in apps),
        models=_resolve_models(models, include_base),
        platform=platform,
        weibull=weibull,
        lead_model=lead_model,
        predictor=predictor,
        sweep=None,
        replications=scale.replications,
        seed=scale.seed,
    )
    return run_resolved(experiment, store=store, workers=scale.workers,
                        progress=progress, resume=resume)


def lead_time_sweep(
    app_name: str,
    models: Sequence[Union[str, ModelConfig]],
    changes_percent: Sequence[float] = (50, 10, 0, -10, -50),
    weibull: WeibullParams = TITAN_WEIBULL,
    scale: ExperimentScale = BENCH_SCALE,
    platform: PlatformSpec = SUMMIT,
    lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    predictor: PredictorSpec = DEFAULT_PREDICTOR,
    include_base: bool = True,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[CampaignProgress]" = None,
    resume: bool = True,
) -> Dict[CellKey, SimulationResult]:
    """Sweep prediction lead-time variability for one application.

    Returns ``{(model_name, change_percent): SimulationResult}``; the base
    model (unaffected by lead times) is run once per change for exact
    common-random-number pairing.
    """
    experiment = ResolvedExperiment(
        apps=(APPLICATIONS[app_name],),
        models=_resolve_models(models, include_base),
        platform=platform,
        weibull=weibull,
        lead_model=lead_model,
        predictor=predictor,
        sweep=SweepAxis("lead-change-percent", tuple(changes_percent)),
        replications=scale.replications,
        seed=scale.seed,
    )
    return run_resolved(experiment, store=store, workers=scale.workers,
                        progress=progress, resume=resume)


def false_negative_sweep(
    app_name: str,
    models: Sequence[Union[str, ModelConfig]],
    fn_rates: Sequence[float] = (0.15, 0.25, 0.40),
    weibull: WeibullParams = TITAN_WEIBULL,
    scale: ExperimentScale = BENCH_SCALE,
    platform: PlatformSpec = SUMMIT,
    lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    predictor: PredictorSpec = DEFAULT_PREDICTOR,
    include_base: bool = True,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[CampaignProgress]" = None,
    resume: bool = True,
) -> Dict[CellKey, SimulationResult]:
    """Sweep the false-negative rate at fixed FP=18% (Observation 9).

    Returns ``{(model_name, fn_rate): SimulationResult}``.
    """
    experiment = ResolvedExperiment(
        apps=(APPLICATIONS[app_name],),
        models=_resolve_models(models, include_base),
        platform=platform,
        weibull=weibull,
        lead_model=lead_model,
        predictor=predictor,
        sweep=SweepAxis("fn-rate", tuple(fn_rates)),
        replications=scale.replications,
        seed=scale.seed,
    )
    return run_resolved(experiment, store=store, workers=scale.workers,
                        progress=progress, resume=resume)
