"""Experiment E2 — Fig 2b: single-node I/O bandwidth characterization.

Re-runs the paper's first I/O experiment: aggregate write bandwidth on one
compute node versus transfer size, for writer-task counts from 1 to 42,
averaged over 10 noisy runs.  The paper's conclusion — 8 MPI tasks
maximize single-node bandwidth — must reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..iomodel.bandwidth import GiB
from ..iomodel.calibration import SingleNodeSweep, run_single_node_sweep
from .report import format_table

__all__ = ["Fig2bResult", "run", "render"]


@dataclass
class Fig2bResult:
    """The sweep plus the headline conclusion."""

    sweep: SingleNodeSweep
    optimal_tasks: int


def run(seed: int = 2022, nruns: int = 10) -> Fig2bResult:
    """Execute the synthetic measurement campaign."""
    rng = np.random.default_rng(seed)
    sweep = run_single_node_sweep(rng, nruns=nruns)
    return Fig2bResult(sweep=sweep, optimal_tasks=sweep.optimal_task_count())


def render(result: Fig2bResult) -> str:
    """Format the Fig 2b curves (rows = task counts, cols = sizes)."""
    sweep = result.sweep
    headers = ["tasks"] + [f"{s / GiB:g}GiB" for s in sweep.transfer_sizes]
    rows = [
        [t] + [bw / GiB for bw in sweep.bandwidth[i]]
        for i, t in enumerate(sweep.task_counts)
    ]
    table = format_table(
        headers,
        rows,
        title="Fig 2b — single-node aggregate write bandwidth (GiB/s)",
        floatfmt="{:.2f}",
    )
    return table + f"\n=> optimal writer tasks per node: {result.optimal_tasks}"
