"""Experiment E11 — Fig 8: LM vs p-ckpt dominance inside the hybrid model.

Within model P2, which proactive mechanism handles more failures?  The
paper plots the FT-ratio *difference* (LM − p-ckpt, normalized by total
failures) against lead-time changes from −90% to +90%: positive means LM
dominates (always true for small applications), negative means p-ckpt has
taken over (large applications at shrinking lead times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .config import BENCH_SCALE, ExperimentScale
from .report import format_series
from .runner import SimulationResult
from .sweep import lead_time_sweep

__all__ = ["Fig8Result", "run", "render", "DEFAULT_CHANGES"]

DEFAULT_CHANGES: Tuple[float, ...] = (-90, -50, -10, 0, 10, 50, 90)


@dataclass
class Fig8Result:
    """FT-ratio difference curves per application."""

    apps: Tuple[str, ...]
    changes: Tuple[float, ...]
    #: difference[(app, change)] = (lm_mitigated − pckpt_mitigated)/failures, %
    difference: Dict[tuple, float]
    cells: Dict[tuple, SimulationResult]

    def series(self, app: str) -> list:
        """One Fig 8 curve."""
        return [self.difference[(app, c)] for c in self.changes]


def run(
    apps: Sequence[str] = ("CHIMERA", "XGC", "S3D", "POP"),
    changes: Sequence[float] = DEFAULT_CHANGES,
    scale: ExperimentScale = BENCH_SCALE,
    **kwargs,
) -> Fig8Result:
    """Sweep P2 across the extended lead-time range."""
    difference: Dict[tuple, float] = {}
    cells: Dict[tuple, SimulationResult] = {}
    for app in apps:
        grid = lead_time_sweep(
            app, ["P2"], changes, scale=scale, include_base=False, **kwargs
        )
        for (_, change), res in grid.items():
            difference[(app, change)] = 100.0 * res.ft.lm_pckpt_ft_difference
            cells[(app, change)] = res
    return Fig8Result(
        apps=tuple(apps),
        changes=tuple(changes),
        difference=difference,
        cells=cells,
    )


def render(result: Fig8Result) -> str:
    """Format the Fig 8 curves."""
    return format_series(
        "lead_change_%",
        [f"{c:+g}" for c in result.changes],
        {app: result.series(app) for app in result.apps},
        title=(
            "Fig 8 — FT-ratio difference (LM − p-ckpt) in model P2, % of "
            "failures (positive: LM dominates)"
        ),
    )
