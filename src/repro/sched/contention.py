"""Shared-storage contention: every running job drains into one PFS.

In the single-application experiments each job owns the whole machine,
so :class:`~repro.experiments.pipeline.DrainManager`'s per-job drain
lanes are the only queueing that matters.  Under a batch queue that
assumption breaks: *all* running jobs' burst-buffer drains and priority
PFS commits share the machine's parallel file system.  This module
models that sharing with one machine-wide
:class:`~repro.des.resources.PriorityResource`:

* ``drain_lanes`` concurrent BB→PFS transfers machine-wide (the paper's
  bleed-off concurrency cap, lifted from per-job to per-machine);
* p-ckpt **priority writes** preempt the lane queue (priority 0 vs the
  drains' priority 1) — the protocol's contention-free guarantee for the
  vulnerable node survives multi-tenancy because vulnerable traffic
  always grants before periodic drain traffic;
* an optional ``background_load`` divides realized bandwidth by
  ``1 - load``, the same derating
  :class:`~repro.iomodel.congestion.CongestedPFSModel` applies — so a
  sched run at load *x* and a single-job run on a congested PFS at load
  *x* see identical service times.

Drain *wait* time (queueing delay before a lane grants) is the layer's
contention signal; it feeds the ``sched.drain.wait`` histogram.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..des import Environment, PriorityResource
from ..des.metrics import MetricsRegistry
from ..platform.pfs import PFSSpec

__all__ = ["SharedStorage"]

#: Queue priorities on the machine-wide PFS resource (lower grants first).
PRIORITY_WRITE = 0.0
PRIORITY_DRAIN = 1.0


class SharedStorage:
    """Machine-wide PFS front end with prioritized lane arbitration.

    Parameters
    ----------
    env:
        The simulation environment.
    pfs:
        The PFS spec answering service-time queries.
    drain_lanes:
        Concurrent BB→PFS transfers machine-wide.
    background_load:
        External PFS utilization in ``[0, 1)``; realized bandwidth is
        derated by ``1 - load`` (matching ``CongestedPFSModel``).
    metrics:
        Optional registry receiving drain-wait observations.
    """

    def __init__(
        self,
        env: Environment,
        pfs: PFSSpec,
        drain_lanes: int = 2,
        background_load: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if drain_lanes < 1:
            raise ValueError("drain_lanes must be >= 1")
        if not (0.0 <= background_load < 1.0):
            raise ValueError("background_load must be in [0, 1)")
        self.env = env
        self.pfs = pfs
        self._lanes = PriorityResource(env, capacity=drain_lanes)
        self._derate = 1.0 - background_load
        self.metrics = metrics
        #: Completed drains / priority writes, machine-wide (run stats).
        self.drains_completed = 0
        self.priority_writes = 0

    # -- service-time queries (derated) -----------------------------------
    def drain_seconds(self, nnodes: int, bytes_per_node: float) -> float:
        """Service time of one full periodic-checkpoint drain."""
        return self.pfs.drain_time(nnodes, bytes_per_node) / self._derate

    def priority_write_seconds(self, bytes_per_node: float) -> float:
        """Service time of one vulnerable node's prioritized commit."""
        return self.pfs.priority_write_time(bytes_per_node) / self._derate

    def safeguard_seconds(self, nnodes: int, bytes_per_node: float) -> float:
        """Service time of an all-node proactive safeguard commit."""
        return self.pfs.proactive_write_time(nnodes, bytes_per_node) / self._derate

    def restore_seconds(self, nnodes: int, bytes_per_node: float) -> float:
        """All-node PFS restore (reads bypass the write-lane queue)."""
        return self.pfs.full_restore_read_time(nnodes, bytes_per_node) / self._derate

    # -- processes ---------------------------------------------------------
    def drain(self, nnodes: int, bytes_per_node: float) -> Generator:
        """Hold a drain lane for one checkpoint's BB→PFS bleed-off.

        Yields from a process context; returns when the drain commits.
        """
        asked = self.env.now
        with self._lanes.request(priority=PRIORITY_DRAIN) as req:
            yield req
            if self.metrics is not None:
                self.metrics.histogram("sched.drain.wait_seconds").observe(
                    self.env.now - asked
                )
            yield self.env.timeout(self.drain_seconds(nnodes, bytes_per_node))
        self.drains_completed += 1

    def priority_write(self, bytes_per_node: float) -> Generator:
        """Hold a lane for a vulnerable node's prioritized PFS commit.

        Grants ahead of every queued drain (priority 0 < 1), preserving
        the p-ckpt contention-free guarantee across jobs.
        """
        with self._lanes.request(priority=PRIORITY_WRITE) as req:
            yield req
            yield self.env.timeout(self.priority_write_seconds(bytes_per_node))
        self.priority_writes += 1

    def safeguard_write(self, nnodes: int, bytes_per_node: float) -> Generator:
        """Hold a lane for an all-node safeguard checkpoint commit.

        Same preemptive priority as :meth:`priority_write` — proactive
        mitigation traffic always beats periodic drains.
        """
        with self._lanes.request(priority=PRIORITY_WRITE) as req:
            yield req
            yield self.env.timeout(self.safeguard_seconds(nnodes, bytes_per_node))
        self.priority_writes += 1
