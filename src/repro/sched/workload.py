"""Workload synthesis: Poisson and trace-driven job streams.

Two ways to populate the batch queue, both producing the same
:class:`~repro.sched.jobs.SchedJob` tuples:

* :func:`poisson_workload` — *n* jobs with exponential interarrivals,
  applications drawn from a mix, C/R models cycled from a pool, and
  tenants assigned round-robin.  Fully deterministic in its seed (the
  generator stream is disjoint from every replication's seed stream by
  construction, so the workload never perturbs the failure draws).
* :func:`trace_workload` — explicit ``(app, arrival, ...)`` entries, the
  form a spec document's ``sched.arrival`` list (and every shrunk fuzz
  reproducer) uses.

``hours_scale`` shrinks each application's Table-I compute hours so
quick runs and fuzz cases stay fast; it scales demand, not the physics —
checkpoint sizes, OCIs and failure rates are untouched.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..workloads.applications import APPLICATION_ORDER, APPLICATIONS
from .jobs import SchedJob

__all__ = ["poisson_workload", "trace_workload"]

#: Spawn key reserving the workload generator's seed stream.  Campaign
#: replication *k* runs from ``SeedSequence(seed, spawn_key=(k,))``, so
#: any key far above realistic replication counts is disjoint.
_WORKLOAD_SPAWN_KEY = 1_000_003


def poisson_workload(
    apps: Sequence[str],
    models: Sequence[str],
    n_jobs: int,
    seed: int,
    interarrival_seconds: float = 900.0,
    users: int = 4,
    hours_scale: float = 1.0,
    max_nodes: Optional[int] = None,
) -> Tuple[SchedJob, ...]:
    """Synthesize *n_jobs* jobs with Poisson arrivals.

    Applications are drawn uniformly from *apps*; models cycle through
    *models* in submission order (so every model of the pool protects a
    share of the workload); tenants are assigned round-robin over
    ``users`` synthetic users.  Node requests are the application's
    Table-I width, capped at *max_nodes* when given.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if interarrival_seconds <= 0:
        raise ValueError("interarrival_seconds must be positive")
    if users < 1:
        raise ValueError("users must be >= 1")
    if hours_scale <= 0:
        raise ValueError("hours_scale must be positive")
    if not apps:
        apps = APPLICATION_ORDER
    if not models:
        raise ValueError("models pool cannot be empty")
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(_WORKLOAD_SPAWN_KEY,))
    )
    jobs: List[SchedJob] = []
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(interarrival_seconds))
        app = APPLICATIONS[apps[int(rng.integers(len(apps)))]]
        nodes = app.nodes if max_nodes is None else min(app.nodes, max_nodes)
        jobs.append(SchedJob(
            id=i,
            app=app.name,
            model=models[i % len(models)],
            user=f"u{i % users}",
            arrival=t,
            nodes=nodes,
            compute_seconds=app.compute_seconds * hours_scale,
        ))
    return tuple(jobs)


def trace_workload(
    entries: Sequence[dict],
    models: Sequence[str],
    users: int = 4,
    hours_scale: float = 1.0,
    max_nodes: Optional[int] = None,
) -> Tuple[SchedJob, ...]:
    """Build jobs from explicit trace entries.

    Each entry is ``{"app": NAME, "at": SECONDS}`` plus optional
    ``"model"``, ``"user"`` and ``"nodes"`` overrides; omitted values
    fall back to the Poisson defaults (model-pool cycling, round-robin
    users, Table-I width).
    """
    if hours_scale <= 0:
        raise ValueError("hours_scale must be positive")
    if not models:
        raise ValueError("models pool cannot be empty")
    jobs: List[SchedJob] = []
    for i, entry in enumerate(entries):
        app = APPLICATIONS[str(entry["app"]).upper()]
        nodes = int(entry.get("nodes", app.nodes))
        if max_nodes is not None:
            nodes = min(nodes, max_nodes)
        jobs.append(SchedJob(
            id=i,
            app=app.name,
            model=str(entry.get("model", models[i % len(models)])),
            user=str(entry.get("user", f"u{i % users}")),
            arrival=float(entry["at"]),
            nodes=nodes,
            compute_seconds=app.compute_seconds * hours_scale,
        ))
    return tuple(jobs)
