"""Scheduler baseline harness: the committed high-occupancy workload.

``python -m repro.sched.bench --out benchmarks/sched`` runs the
reference mixed workload (≥16 Table-I jobs, all five paper models in the
pool, several replications) under one policy and writes a
schema-versioned ``SCHED_<git-sha>.json`` artifact following the
``BENCH_*``/``SERVICE_LOAD_*`` convention.  This is the high-occupancy
regime the ``kernel.store_backlog`` micro-benchmark stresses: many
concurrent jobs' drains queueing on the shared PFS lanes.

``tools/check_sched_schema.py`` validates committed artifacts against
the declarative tables in :mod:`repro.sched.jobs` in CI.
"""

from __future__ import annotations

import json
import platform as _platform
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .engine import SchedResult, aggregate_sched, run_sched_once
from .jobs import (
    JOB_FIELDS,
    POLICY_NAMES,
    RESULT_FIELDS,
    SCHED_BASELINE_KIND,
    SCHED_SCHEMA_VERSION,
)
from .workload import poisson_workload

__all__ = [
    "BASELINE_MODELS",
    "run_baseline",
    "result_payload",
    "validate_sched_payload",
    "sched_filename",
    "write_sched_payload",
    "format_sched_payload",
    "main",
]

#: C/R model pool the baseline workload cycles through — all five paper
#: models, so the artifact exercises every mitigation path.
BASELINE_MODELS = ("B", "M1", "M2", "P1", "P2")


def run_baseline(
    policy: str = "easy",
    n_jobs: int = 16,
    seed: int = 0,
    replications: int = 3,
    hours_scale: float = 0.1,
    interarrival_seconds: float = 900.0,
) -> SchedResult:
    """Run the reference workload and aggregate its replications."""
    from ..failures.leadtime import PAPER_LEAD_TIME_MODEL
    from ..failures.predictor import DEFAULT_PREDICTOR
    from ..failures.weibull import TITAN_WEIBULL
    from ..platform.system import SUMMIT

    workload = poisson_workload(
        (), BASELINE_MODELS, n_jobs, seed=seed,
        interarrival_seconds=interarrival_seconds,
        hours_scale=hours_scale,
    )
    outputs = [
        run_sched_once(
            workload, policy, SUMMIT, TITAN_WEIBULL,
            PAPER_LEAD_TIME_MODEL, DEFAULT_PREDICTOR,
            np.random.SeedSequence(entropy=seed, spawn_key=(k,)),
        )
        for k in range(replications)
    ]
    return aggregate_sched(policy, outputs)


def result_payload(result: SchedResult, seed: int,
                   quick: bool = False) -> Dict[str, Any]:
    """Assemble the artifact dict (``RESULT_FIELDS`` shape) for *result*."""
    from ..bench import git_sha

    sha, dirty = git_sha()
    payload: Dict[str, Any] = {
        "kind": SCHED_BASELINE_KIND,
        "schema_version": SCHED_SCHEMA_VERSION,
        "git_sha": sha,
        "python": _platform.python_version(),
        "policy": result.policy,
        "seed": seed,
        "replications": result.replications,
        "jobs": result.jobs,
        "starved": result.starved,
        "makespan_seconds": result.makespan_seconds,
        "utilization": result.utilization,
        "wait_mean_seconds": result.wait_mean_seconds,
        "wait_p95_seconds": result.wait_p95_seconds,
        "wait_max_seconds": result.wait_max_seconds,
        "failures": result.ft.failures,
        "mitigated": result.ft.mitigated,
        "ft_ratio": result.ft.ft_ratio,
        "per_job": list(result.per_job),
    }
    if dirty:
        payload["dirty"] = True
    if quick:
        payload["quick"] = True
    return payload


def _check_fields(obj: Dict[str, Any], table: Dict[str, tuple],
                  where: str, problems: List[str]) -> None:
    for name, (ftype, nullable) in table.items():
        if name not in obj:
            problems.append(f"{where}: missing field {name!r}")
            continue
        value = obj[name]
        if value is None:
            if not nullable:
                problems.append(f"{where}: {name} must not be null")
            continue
        if ftype is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{where}: {name} must be a number")
        elif not isinstance(value, ftype) or isinstance(value, bool) and ftype is int:
            problems.append(f"{where}: {name} must be {ftype.__name__}")


def validate_sched_payload(payload: Dict[str, Any]) -> List[str]:
    """Structural checks on a sched baseline payload; returns problems."""
    problems: List[str] = []
    _check_fields(payload, RESULT_FIELDS, "payload", problems)
    if payload.get("kind") != SCHED_BASELINE_KIND:
        problems.append(f"kind must be {SCHED_BASELINE_KIND!r}")
    if payload.get("schema_version") != SCHED_SCHEMA_VERSION:
        problems.append(f"schema_version must be {SCHED_SCHEMA_VERSION}")
    if payload.get("policy") not in POLICY_NAMES:
        problems.append(f"policy must be one of {POLICY_NAMES}")
    per_job = payload.get("per_job")
    if isinstance(per_job, list):
        if isinstance(payload.get("jobs"), int) and len(per_job) != payload["jobs"]:
            problems.append("per_job length must equal jobs")
        for i, entry in enumerate(per_job):
            if not isinstance(entry, dict):
                problems.append(f"per_job[{i}] must be an object")
                continue
            _check_fields(entry, JOB_FIELDS, f"per_job[{i}]", problems)
    for name in ("utilization", "ft_ratio"):
        value = payload.get(name)
        if isinstance(value, (int, float)) and not 0.0 <= value <= 1.0:
            problems.append(f"{name} must be in [0, 1]")
    return problems


def sched_filename(sha: str) -> str:
    """Canonical artifact name for a commit."""
    return f"SCHED_{sha}.json"


def write_sched_payload(payload: Dict[str, Any], directory: Path) -> Path:
    """Write ``SCHED_<sha>.json`` under *directory* (validated)."""
    problems = validate_sched_payload(payload)
    if problems:
        raise ValueError("refusing to write invalid payload: "
                         + "; ".join(problems))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / sched_filename(payload["git_sha"])
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def format_sched_payload(payload: Dict[str, Any]) -> str:
    """Human summary of a sched payload (printed by the CLI entry)."""
    hours = payload["makespan_seconds"] / 3600.0
    return "\n".join([
        f"sched baseline @ {payload['git_sha']}"
        + ("+dirty" if payload.get("dirty") else "")
        + (" (quick)" if payload.get("quick") else ""),
        f"  {payload['jobs']} jobs x {payload['replications']} reps under "
        f"{payload['policy']}: makespan {hours:.1f} h, "
        f"utilization {payload['utilization']:.1%}, "
        f"{payload['starved']} starved",
        f"  wait mean {payload['wait_mean_seconds']:.0f} s   "
        f"p95 {payload['wait_p95_seconds']:.0f} s   "
        f"max {payload['wait_max_seconds']:.0f} s",
        f"  FT: {payload['mitigated']}/{payload['failures']} mitigated "
        f"(ratio {payload['ft_ratio']:.2f})",
    ])


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sched.bench",
        description="Run the scheduler baseline workload and write the "
                    "committed SCHED_<sha>.json artifact.",
    )
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write the artifact into")
    parser.add_argument("--policy", choices=POLICY_NAMES, default="easy")
    parser.add_argument("--jobs", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--replications", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="small workload, one replication (CI smoke)")
    args = parser.parse_args(argv)

    n_jobs = 8 if args.quick else args.jobs
    reps = 1 if args.quick else args.replications
    result = run_baseline(policy=args.policy, n_jobs=n_jobs,
                          seed=args.seed, replications=reps)
    payload = result_payload(result, seed=args.seed, quick=args.quick)
    print(format_sched_payload(payload))
    if args.out is not None:
        path = write_sched_payload(payload, args.out)
        print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
