"""Job model for the cluster-scheduler layer: schema tables and records.

One **job** is one Table-I application instance submitted to the batch
queue: an application, the C/R model protecting it, the tenant that owns
it, a node count, and an arrival time.  The scheduler places jobs onto
the machine's nodes under a pluggable policy (``fcfs``, ``easy``,
``fair`` — :data:`POLICY_NAMES`) while every *running* job's checkpoint
traffic competes for the same burst-buffer drainers and PFS bandwidth
(:mod:`repro.sched.contention`).

The declarative tables below (:data:`POLICY_NAMES`, :data:`JOB_FIELDS`,
:data:`RESULT_FIELDS`) are the single source of truth shared with
``docs/SCHEDULER.md``, the committed ``benchmarks/sched/SCHED_*.json``
baseline artifacts, and ``tools/check_sched_schema.py`` — the same
convention ``repro.service`` uses for its job schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "SCHED_SCHEMA_VERSION",
    "SCHED_BASELINE_KIND",
    "POLICY_NAMES",
    "JOB_FIELDS",
    "RESULT_FIELDS",
    "SchedJob",
    "JobRecord",
]

#: Schema version stamped on every sched result the layer emits
#: (store entries, ``benchmarks/sched`` baseline artifacts, ``--json``
#: output).  Bump on any incompatible layout change.
SCHED_SCHEMA_VERSION: int = 1

#: Record discriminator of a committed baseline artifact, mirroring the
#: bench/service convention.
SCHED_BASELINE_KIND: str = "pckpt-sched-baseline"

#: Placement policies the dispatcher understands, in documentation
#: order: ``fcfs`` (strict arrival order, head-blocking), ``easy``
#: (FCFS + EASY backfill behind a shadow-time reservation for the head
#: job) and ``fair`` (weighted round-robin across tenants, head-blocking
#: within the WRR order — the service queue's discipline applied to
#: batch jobs).
POLICY_NAMES: Tuple[str, ...] = ("fcfs", "easy", "fair")

#: Per-job result fields: ``{name: (type, nullable)}`` — the shape of
#: every entry of a sched result's ``per_job`` list (store entries,
#: baseline artifacts, ``pckpt sched run --json``).
JOB_FIELDS: Dict[str, tuple] = {
    "id": (int, False),
    "name": (str, False),
    "app": (str, False),
    "model": (str, False),
    "user": (str, False),
    "nodes": (int, False),
    "submit_s": (float, False),
    "wait_s": (float, False),
    "run_s": (float, False),
    "checkpoints": (float, False),
    "drains": (float, False),
    "failures": (int, False),
    "mitigated": (int, False),
    "ft_ratio": (float, False),
}

#: Top-level fields of a sched result payload (the committed
#: ``SCHED_*.json`` baseline shape; ``git_sha`` and ``python`` are
#: stamped by the bench writer only).
RESULT_FIELDS: Dict[str, tuple] = {
    "kind": (str, False),
    "schema_version": (int, False),
    "git_sha": (str, True),
    "python": (str, True),
    "policy": (str, False),
    "seed": (int, False),
    "replications": (int, False),
    "jobs": (int, False),
    "starved": (int, False),
    "makespan_seconds": (float, False),
    "utilization": (float, False),
    "wait_mean_seconds": (float, False),
    "wait_p95_seconds": (float, False),
    "wait_max_seconds": (float, False),
    "failures": (int, False),
    "mitigated": (int, False),
    "ft_ratio": (float, False),
    "per_job": (list, False),
}


@dataclass(frozen=True)
class SchedJob:
    """One submitted job: the workload-side description.

    Attributes
    ----------
    id:
        Dense 0-based submission index (ties in arrival time dispatch in
        id order — the deterministic tiebreak).
    app:
        Table-I application name (:data:`repro.workloads.applications.APPLICATIONS`).
    model:
        C/R model protecting this job, resolved through
        :func:`repro.models.registry.get_model`.
    user:
        Owning tenant (the ``fair`` policy's round-robin key).
    arrival:
        Submission time in simulated seconds.
    nodes:
        Nodes requested (defaults to the application's Table-I width).
    compute_seconds:
        Useful compute demand — the application's Table-I hours, scaled
        by the workload's ``hours_scale``.
    """

    id: int
    app: str
    model: str
    user: str
    arrival: float
    nodes: int
    compute_seconds: float

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError("job id must be >= 0")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")
        if self.compute_seconds <= 0:
            raise ValueError("compute_seconds must be positive")

    @property
    def name(self) -> str:
        """Stable display name (``<APP>#<id>``)."""
        return f"{self.app}#{self.id}"


@dataclass
class JobRecord:
    """One job's observed lifecycle in one replication.

    ``start``/``end`` are ``None`` for a job the policy never placed
    (starvation — the no-starvation oracle flags any such record).
    ``intervals`` are the half-open node-id ranges the placement
    assigned; the no-overlap oracle checks them against every
    concurrently running job.
    """

    job: SchedJob
    start: float = None
    end: float = None
    checkpoints: int = 0
    drains: int = 0
    ft: object = None  # FTStats; assigned by the engine
    intervals: tuple = ()

    @property
    def wait_seconds(self) -> float:
        """Queue wait (start − submit); 0.0 while unplaced."""
        if self.start is None:
            return 0.0
        return self.start - self.job.arrival

    @property
    def run_seconds(self) -> float:
        """Wall time on the machine; 0.0 while unfinished."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start
