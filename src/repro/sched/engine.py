"""The batch-queue simulation engine: placement + per-job C/R over DES.

:class:`SchedSimulation` runs one workload (a tuple of
:class:`~repro.sched.jobs.SchedJob`) on one machine under one placement
policy.  Three cooperating process families drive it:

* one **arrival** process admits jobs to the policy's wait queue at their
  submission times;
* one **job** process per placed job runs the periodic
  checkpoint/failure/recovery loop with that job's C/R model — the same
  Young/σ-OCI physics as :class:`~repro.models.base.CRSimulation`,
  restated at job granularity so thousands of concurrent jobs stay
  cheap;
* **drain** processes bleed completed BB checkpoints to the PFS through
  the machine-wide :class:`~repro.sched.contention.SharedStorage`, so
  every running job's checkpoint traffic competes for the same lanes.

Determinism contract: per-job randomness is keyed by the job's *id*
(``seed_seq.spawn(len(workload))[job.id]``), never by dispatch order, so
the same workload under the same seed produces bit-identical per-job
metrics for any policy interleaving the kernel resolves identically —
and the kernel's (time, priority, seq) order is itself deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.metrics import FTStats
from ..analysis.young import sigma_adjusted_oci, young_oci
from ..des import Environment
from ..des.metrics import MetricsRegistry
from ..des.monitor import Trace
from ..failures.leadtime import PAPER_LEAD_TIME_MODEL, LeadTimeModel
from ..failures.predictor import DEFAULT_PREDICTOR, PredictorSpec
from ..failures.weibull import TITAN_WEIBULL, WeibullParams
from ..models.registry import get_model
from ..platform.system import SUMMIT, PlatformSpec
from ..workloads.applications import APPLICATIONS
from .contention import SharedStorage
from .jobs import JobRecord, SchedJob
from .policy import (
    ESTIMATE_FACTOR,
    PendingJob,
    RunningJob,
    SchedulingPolicy,
    make_policy,
)

__all__ = [
    "SchedSimulation",
    "SchedRunOutput",
    "SchedResult",
    "run_sched_once",
    "aggregate_sched",
]


class _NodePool:
    """The machine's nodes as half-open ``[lo, hi)`` id intervals.

    ``take`` always hands out the lowest-numbered free intervals, so the
    placement of a given dispatch sequence is unique — which is what lets
    the no-overlap oracle check node ids instead of mere counting.
    """

    def __init__(self, total: int) -> None:
        self.total = total
        self._free: List[Tuple[int, int]] = [(0, total)]

    @property
    def free(self) -> int:
        return sum(hi - lo for lo, hi in self._free)

    def take(self, n: int) -> Tuple[Tuple[int, int], ...]:
        if n > self.free:
            raise RuntimeError(f"take({n}) with only {self.free} free")
        got: List[Tuple[int, int]] = []
        need = n
        while need:
            lo, hi = self._free[0]
            span = min(hi - lo, need)
            got.append((lo, lo + span))
            need -= span
            if lo + span == hi:
                self._free.pop(0)
            else:
                self._free[0] = (lo + span, hi)
        return tuple(got)

    def release(self, intervals: Tuple[Tuple[int, int], ...]) -> None:
        self._free.extend(intervals)
        self._free.sort()
        # Coalesce adjacent spans so fragmentation never accretes.
        merged: List[Tuple[int, int]] = []
        for lo, hi in self._free:
            if merged and merged[-1][1] == lo:
                merged[-1] = (merged[-1][0], hi)
            else:
                merged.append((lo, hi))
        self._free = merged


@dataclass
class _JobState:
    """Mutable C/R bookkeeping shared between a job and its drains."""

    progress: float = 0.0        # useful compute completed
    pfs_progress: float = 0.0    # progress safe on the PFS
    drain_epoch: int = 0         # bumped on rollback; stale drains no-op


@dataclass
class SchedRunOutput:
    """One replication's observed schedule."""

    records: Tuple[JobRecord, ...]
    makespan_seconds: float
    utilization: float
    starved: Tuple[str, ...]
    metrics: Optional[MetricsRegistry] = None


@dataclass
class SchedResult:
    """Aggregated outcome of one (workload, policy) cell.

    Scalar fields are means over replications; ``ft`` pools event counts
    (ratios on pooled counts, matching ``SimulationResult``); the wait
    statistics pool every job of every replication.  ``per_job`` holds
    one dict per submitted job (``repro.sched.jobs.JOB_FIELDS`` shape)
    with means over replications and pooled FT counts.
    """

    policy: str
    jobs: int
    replications: int
    makespan_seconds: float
    utilization: float
    wait_mean_seconds: float
    wait_p95_seconds: float
    wait_max_seconds: float
    starved: int
    ft: FTStats
    per_job: Tuple[Dict, ...] = field(default_factory=tuple)

    @property
    def ft_ratio(self) -> float:
        """Pooled FT ratio across replications."""
        return self.ft.ft_ratio


class SchedSimulation:
    """One batch-queue run: workload × policy × machine.

    Parameters
    ----------
    workload:
        Jobs to run (see :mod:`repro.sched.workload`).
    policy:
        Placement policy name (``fcfs`` | ``easy`` | ``fair``).
    platform / weibull / lead_model / predictor:
        The machine and failure physics, shared by every job.
    seed_seq:
        Seed for the replication; per-job streams are spawned from it by
        job id.
    drain_lanes / background_load:
        Shared-storage contention knobs (see ``SharedStorage``).
    delay_grid:
        Optional kernel calendar-queue grid (heap backend when ``None``);
        the schedule is bit-identical either way.
    """

    def __init__(
        self,
        workload: Sequence[SchedJob],
        policy: str = "fcfs",
        platform: PlatformSpec = SUMMIT,
        weibull: WeibullParams = TITAN_WEIBULL,
        lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
        predictor: PredictorSpec = DEFAULT_PREDICTOR,
        seed_seq: Optional[np.random.SeedSequence] = None,
        drain_lanes: int = 2,
        background_load: float = 0.0,
        delay_grid: Optional[float] = None,
        trace: Optional[Trace] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not workload:
            raise ValueError("workload cannot be empty")
        ids = [j.id for j in workload]
        if sorted(ids) != list(range(len(workload))):
            raise ValueError("job ids must be dense 0..n-1")
        for job in workload:
            if job.nodes > platform.total_nodes:
                raise ValueError(
                    f"{job.name}: requests {job.nodes} nodes, machine has "
                    f"{platform.total_nodes}"
                )
        self.workload = tuple(workload)
        self.platform = platform
        self.weibull = weibull
        self.lead_model = lead_model
        self.predictor = predictor
        self.env = Environment(delay_grid=delay_grid)
        self.trace = trace
        if trace is not None:
            trace.env = self.env
        self.metrics = metrics
        if metrics is not None:
            self.env.attach_metrics(metrics)
        if isinstance(policy, SchedulingPolicy):
            # Pre-built instance: lets the validation layer (and its
            # mutation tests) inject instrumented or deliberately broken
            # policies without registering them.
            self.policy = policy
        else:
            self.policy = make_policy(policy)
        self.storage = SharedStorage(
            self.env, platform.pfs, drain_lanes=drain_lanes,
            background_load=background_load, metrics=metrics,
        )
        self._pool = _NodePool(platform.total_nodes)
        if seed_seq is None:
            seed_seq = np.random.SeedSequence(0)
        streams = seed_seq.spawn(len(self.workload))
        self._rngs = {
            job.id: np.random.default_rng(streams[job.id])
            for job in self.workload
        }
        self.records: Dict[int, JobRecord] = {
            job.id: JobRecord(job=job) for job in self.workload
        }
        #: job id -> (nodes, estimated_end) while on the machine.
        self._running: Dict[int, RunningJob] = {}

    # -- processes ---------------------------------------------------------
    def _arrivals(self):
        for job in sorted(self.workload, key=lambda j: (j.arrival, j.id)):
            if job.arrival > self.env.now:
                yield self.env.timeout(job.arrival - self.env.now)
            self.policy.admit(
                PendingJob(job, job.compute_seconds * ESTIMATE_FACTOR)
            )
            if self.trace is not None:
                self.trace.emit("sched", "sched.submit", job.name)
            self._dispatch()

    def _dispatch(self) -> None:
        """Ask the policy what starts now; place and launch it."""
        started = self.policy.select(
            self._pool.free, list(self._running.values()), self.env.now
        )
        for pj in started:
            rec = self.records[pj.job.id]
            rec.start = self.env.now
            rec.intervals = self._pool.take(pj.job.nodes)
            self._running[pj.job.id] = RunningJob(
                nodes=pj.job.nodes,
                estimated_end=self.env.now + pj.estimate_seconds,
            )
            if self.metrics is not None:
                self.metrics.histogram("sched.wait_seconds").observe(
                    rec.wait_seconds
                )
            self.env.process(self._job_proc(rec), name=pj.job.name)

    def _drain_proc(self, rec: JobRecord, state: _JobState,
                    per_node: float, epoch: int, progress: float):
        yield from self.storage.drain(rec.job.nodes, per_node)
        if state.drain_epoch == epoch:
            state.pfs_progress = max(state.pfs_progress, progress)
            rec.drains += 1
            if self.trace is not None:
                self.trace.emit("sched", "sched.drain", rec.job.name)

    def _job_proc(self, rec: JobRecord):
        job = rec.job
        env = self.env
        rng = self._rngs[job.id]
        rec.ft = FTStats()
        per_node = APPLICATIONS[job.app].checkpoint_bytes_per_node
        model = get_model(job.model)
        bb = self.platform.node.burst_buffer
        t_bb = bb.write_time(per_node)
        theta = self.platform.lm_transfer_time(per_node, model.lm_alpha)
        rate = self.weibull.per_node_rate()
        if model.use_sigma_oci:
            sigma = min(
                self.predictor.recall * float(self.lead_model.survival(theta)),
                1.0 - 1e-9,
            )
            oci = sigma_adjusted_oci(t_bb, rate, job.nodes, sigma)
        else:
            oci = young_oci(t_bb, rate, job.nodes)
        scaled = self.weibull.scaled_to(job.nodes)
        state = _JobState()
        sid = 0
        if self.trace is not None:
            sid = self.trace.span_begin("sched", "sched.job", job.name)

        remaining = job.compute_seconds
        next_failure = env.now + scaled.sample_interarrival_seconds(rng)
        while remaining > 0:
            segment = min(oci, remaining)
            if next_failure <= env.now + segment:
                did = max(0.0, next_failure - env.now)
                if did:
                    yield env.timeout(did)
                remaining -= did
                state.progress += did
                remaining = yield from self._handle_failure(
                    rec, state, model, per_node, theta, t_bb, remaining, rng
                )
                next_failure = env.now + scaled.sample_interarrival_seconds(rng)
                continue
            yield env.timeout(segment)
            remaining -= segment
            state.progress += segment
            if remaining > 0:
                # Blocking BB commit, then an asynchronous machine-wide
                # drain of this checkpoint toward the PFS.
                yield env.timeout(t_bb)
                rec.checkpoints += 1
                env.process(self._drain_proc(
                    rec, state, per_node, state.drain_epoch, state.progress
                ))

        rec.end = env.now
        if sid:
            self.trace.span_end(sid)
        if self.metrics is not None:
            self.metrics.counter("sched.jobs.completed").inc()
        self._pool.release(rec.intervals)
        del self._running[job.id]
        self._dispatch()

    def _handle_failure(self, rec: JobRecord, state: _JobState, model,
                        per_node: float, theta: float, t_bb: float,
                        remaining: float, rng):
        """One failure hit: predict, mitigate or roll back.  Returns the
        updated remaining-compute figure."""
        ft: FTStats = rec.ft
        ft.failures += 1
        if self.trace is not None:
            self.trace.emit("sched", "sched.failure", rec.job.name)
        _, lead = self.lead_model.sample(rng)
        predicted = bool(model.use_prediction and self.predictor.predicts(rng))
        if predicted:
            ft.predicted += 1
            lead = self.predictor.effective_lead(lead)
        env = self.env
        if predicted and model.supports_lm and lead >= theta:
            # Live migration vacates the node before the failure lands:
            # no lost work, only the slowdown while the transfer flies.
            ft.mitigated_lm += 1
            yield env.timeout(theta * self.platform.lm_slowdown)
            return remaining
        if predicted and model.supports_pckpt \
                and lead >= self.storage.priority_write_seconds(per_node):
            # p-ckpt: the vulnerable node's prioritized commit lands
            # before the failure; restart resumes from *current* state.
            yield from self.storage.priority_write(per_node)
            ft.mitigated_pckpt += 1
            yield env.timeout(
                self.platform.restart_delay
                + self.storage.restore_seconds(rec.job.nodes, per_node)
            )
            return remaining
        if predicted and model.supports_safeguard \
                and lead >= self.storage.safeguard_seconds(
                    rec.job.nodes, per_node):
            # Full safeguard checkpoint: all nodes commit proactively.
            yield from self.storage.safeguard_write(rec.job.nodes, per_node)
            ft.mitigated_safeguard += 1
            yield env.timeout(
                self.platform.restart_delay
                + self.storage.restore_seconds(rec.job.nodes, per_node)
            )
            return remaining
        # Unmitigated: roll back to the last PFS-resident checkpoint.
        lost = state.progress - state.pfs_progress
        state.progress = state.pfs_progress
        state.drain_epoch += 1  # cancel in-flight drains of lost ckpts
        yield env.timeout(
            self.platform.restart_delay
            + self.storage.restore_seconds(rec.job.nodes, per_node)
        )
        return remaining + lost

    # -- driver ------------------------------------------------------------
    def run(self) -> SchedRunOutput:
        """Run to completion and summarize the schedule."""
        self.env.process(self._arrivals(), name="sched-arrivals")
        self.env.run()
        records = tuple(self.records[i] for i in range(len(self.workload)))
        starved = tuple(r.job.name for r in records if r.start is None)
        makespan = max((r.end for r in records if r.end is not None),
                       default=0.0)
        busy = sum(r.job.nodes * r.run_seconds for r in records)
        util = (busy / (self.platform.total_nodes * makespan)
                if makespan > 0 else 0.0)
        for r in records:
            if r.ft is None:
                r.ft = FTStats()
            r.ft.validate()
        return SchedRunOutput(
            records=records,
            makespan_seconds=makespan,
            utilization=util,
            starved=starved,
            metrics=self.metrics,
        )


def run_sched_once(
    workload: Sequence[SchedJob],
    policy: str,
    platform: PlatformSpec,
    weibull: WeibullParams,
    lead_model: LeadTimeModel,
    predictor: PredictorSpec,
    seed_seq,
    drain_lanes: int = 2,
    background_load: float = 0.0,
    delay_grid: Optional[float] = None,
    collect_metrics: bool = False,
) -> SchedRunOutput:
    """Worker: one replication (top-level for pickling)."""
    if not isinstance(seed_seq, np.random.SeedSequence):
        seed_seq = np.random.SeedSequence(seed_seq)
    sim = SchedSimulation(
        workload,
        policy=policy,
        platform=platform,
        weibull=weibull,
        lead_model=lead_model,
        predictor=predictor,
        seed_seq=seed_seq,
        drain_lanes=drain_lanes,
        background_load=background_load,
        delay_grid=delay_grid,
        metrics=MetricsRegistry() if collect_metrics else None,
    )
    return sim.run()


def aggregate_sched(policy: str, outputs: Sequence[SchedRunOutput]) -> SchedResult:
    """Pool replications into one :class:`SchedResult`.

    Must be called with outputs in replication order; every statistic is
    either a replication mean or a pooled count, so the result is
    bit-identical for any worker count.
    """
    if not outputs:
        raise ValueError("no outputs to aggregate")
    n_jobs = len(outputs[0].records)
    reps = len(outputs)
    ft = FTStats()
    waits: List[float] = []
    starved = 0
    per_job: List[Dict] = []
    for j in range(n_jobs):
        job = outputs[0].records[j].job
        jf = FTStats()
        wait = run = ckpts = drains = 0.0
        for out in outputs:
            r = out.records[j]
            wait += r.wait_seconds
            run += r.run_seconds
            ckpts += r.checkpoints
            drains += r.drains
            for fname in ("failures", "predicted", "mitigated_lm",
                          "mitigated_pckpt", "mitigated_safeguard",
                          "false_alarms", "lm_aborts"):
                setattr(jf, fname, getattr(jf, fname) + getattr(r.ft, fname))
        per_job.append({
            "id": job.id,
            "name": job.name,
            "app": job.app,
            "model": job.model,
            "user": job.user,
            "nodes": job.nodes,
            "submit_s": job.arrival,
            "wait_s": wait / reps,
            "run_s": run / reps,
            "checkpoints": ckpts / reps,
            "drains": drains / reps,
            "failures": jf.failures,
            "mitigated": jf.mitigated,
            "ft_ratio": jf.ft_ratio,
        })
        for fname in ("failures", "predicted", "mitigated_lm",
                      "mitigated_pckpt", "mitigated_safeguard",
                      "false_alarms", "lm_aborts"):
            setattr(ft, fname, getattr(ft, fname) + getattr(jf, fname))
    for out in outputs:
        starved += len(out.starved)
        waits.extend(r.wait_seconds for r in out.records
                     if r.start is not None)
    wait_arr = np.asarray(waits if waits else [0.0], dtype=float)
    return SchedResult(
        policy=policy,
        jobs=n_jobs,
        replications=reps,
        makespan_seconds=float(
            sum(o.makespan_seconds for o in outputs) / reps
        ),
        utilization=float(sum(o.utilization for o in outputs) / reps),
        wait_mean_seconds=float(wait_arr.mean()),
        wait_p95_seconds=float(np.percentile(wait_arr, 95.0)),
        wait_max_seconds=float(wait_arr.max()),
        starved=starved,
        ft=ft,
        per_job=tuple(per_job),
    )
