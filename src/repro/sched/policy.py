"""Pluggable placement policies: FCFS, EASY backfill, fair share.

A policy owns the wait queue: the engine calls :meth:`~SchedulingPolicy.admit`
when a job arrives and :meth:`~SchedulingPolicy.select` whenever capacity
changes (an arrival or a completion); ``select`` removes and returns the
jobs to start *now*.  Policies see only scheduler-facing views —
:class:`PendingJob` (the job plus its advisory walltime estimate) and
:class:`RunningJob` (width plus estimated end) — never engine internals,
so a new policy is one small class, not an engine change.

Walltime estimates are **advisory**: they derive deterministically from
the job's compute demand (:data:`ESTIMATE_FACTOR` headroom for C/R
overhead) and a job whose failures push it past its estimate simply
overruns.  Estimate inaccuracy degrades backfill *quality* (a reserved
head job may start later than its shadow time promised), never
*correctness* — the no-starvation oracle holds regardless, because on a
finite workload the machine eventually drains and the blocked head
always fits an empty machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from .jobs import POLICY_NAMES, SchedJob
from .queue import WeightedRoundRobinOrder

__all__ = [
    "ESTIMATE_FACTOR",
    "PendingJob",
    "RunningJob",
    "SchedulingPolicy",
    "FCFSPolicy",
    "EasyBackfillPolicy",
    "FairSharePolicy",
    "POLICIES",
    "make_policy",
]

#: Headroom multiplier turning compute demand into a walltime estimate
#: (checkpoints, recomputation and recovery inflate the real runtime).
ESTIMATE_FACTOR = 1.5


@dataclass(frozen=True)
class PendingJob:
    """A waiting job as the policy sees it."""

    job: SchedJob
    estimate_seconds: float


@dataclass(frozen=True)
class RunningJob:
    """A placed job as the policy sees it: width and estimated end."""

    nodes: int
    estimated_end: float


class SchedulingPolicy:
    """Base: a FIFO wait queue with greedy head-blocking placement."""

    name = "base"

    def __init__(self) -> None:
        self._pending: List[PendingJob] = []

    def admit(self, pending: PendingJob) -> None:
        """Add an arriving job to the wait queue."""
        self._pending.append(pending)

    @property
    def waiting(self) -> List[PendingJob]:
        """Jobs still queued, in the policy's dispatch order."""
        return list(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def select(self, free_nodes: int, running: Sequence[RunningJob],
               now: float) -> List[PendingJob]:
        """Remove and return the jobs to start now (head-blocking FCFS)."""
        started: List[PendingJob] = []
        free = free_nodes
        while self._pending and self._pending[0].job.nodes <= free:
            pj = self._pending.pop(0)
            free -= pj.job.nodes
            started.append(pj)
        return started


class FCFSPolicy(SchedulingPolicy):
    """Strict arrival order; the head job blocks everything behind it."""

    name = "fcfs"


class EasyBackfillPolicy(SchedulingPolicy):
    """FCFS + EASY backfill (Feitelson's aggressive variant).

    When the head job does not fit, it gets a **reservation**: the
    shadow time at which enough nodes free up (assuming running jobs end
    at their estimates) plus the ``extra`` nodes left over at that
    moment.  Later jobs may jump the queue only if they fit now and
    either finish before the shadow time or use no more than the extra
    nodes — so backfilling never delays the head job's reservation
    (under truthful estimates).
    """

    name = "easy"

    def select(self, free_nodes: int, running: Sequence[RunningJob],
               now: float) -> List[PendingJob]:
        started: List[PendingJob] = []
        free = free_nodes
        occupied = [(r.estimated_end, r.nodes) for r in running]
        while self._pending and self._pending[0].job.nodes <= free:
            pj = self._pending.pop(0)
            free -= pj.job.nodes
            occupied.append((now + pj.estimate_seconds, pj.job.nodes))
            started.append(pj)
        if not self._pending:
            return started

        # Reservation for the blocked head: walk releases in estimate
        # order until it fits.
        head = self._pending[0]
        shadow = math.inf
        extra = free
        avail = free
        for end, nodes in sorted(occupied):
            avail += nodes
            if avail >= head.job.nodes:
                shadow = end
                extra = avail - head.job.nodes
                break

        i = 1
        while i < len(self._pending):
            pj = self._pending[i]
            fits_now = pj.job.nodes <= free
            ends_before_shadow = now + pj.estimate_seconds <= shadow
            within_extra = pj.job.nodes <= extra
            if fits_now and (ends_before_shadow or within_extra):
                del self._pending[i]
                free -= pj.job.nodes
                if not ends_before_shadow:
                    # Runs past the shadow time: it must keep fitting
                    # beside the head, so it consumes the extra nodes.
                    extra -= pj.job.nodes
                started.append(pj)
                continue
            i += 1
        return started


class FairSharePolicy(SchedulingPolicy):
    """Weighted round-robin across tenants, head-blocking within it.

    Dispatch order is exactly the service queue's discipline
    (:class:`~repro.sched.queue.WeightedRoundRobinOrder`): tenants in
    first-seen order, ``weight`` consecutive grants per visit, FIFO
    within a tenant.  Placement is head-blocking on the WRR head, which
    keeps the policy starvation-free on finite workloads.
    """

    name = "fair"

    def __init__(self) -> None:
        super().__init__()
        self._order = WeightedRoundRobinOrder()

    def admit(self, pending: PendingJob) -> None:
        self._order.push(pending.job.user, pending)

    def set_weight(self, tenant: str, weight: int) -> None:
        """Grant *tenant* up to *weight* consecutive placements per round."""
        self._order.set_weight(tenant, weight)

    @property
    def waiting(self) -> List[PendingJob]:
        return self._order.items()

    def __len__(self) -> int:
        return len(self._order)

    def select(self, free_nodes: int, running: Sequence[RunningJob],
               now: float) -> List[PendingJob]:
        started: List[PendingJob] = []
        free = free_nodes
        while len(self._order):
            pj = self._order.peek()
            if pj.job.nodes > free:
                break
            self._order.pop()
            free -= pj.job.nodes
            started.append(pj)
        return started


#: Policy registry: name -> zero-argument factory.
POLICIES: Dict[str, Callable[[], SchedulingPolicy]] = {
    "fcfs": FCFSPolicy,
    "easy": EasyBackfillPolicy,
    "fair": FairSharePolicy,
}

assert tuple(POLICIES) == POLICY_NAMES, "POLICIES drifted from POLICY_NAMES"


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r} (expected one of {list(POLICIES)})"
        ) from None
    return factory()
