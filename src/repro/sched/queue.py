"""Weighted round-robin dispatch order for the batch queue.

:class:`WeightedRoundRobinOrder` is the synchronous twin of the service
layer's :class:`repro.service.queue.FairShareQueue`: per-tenant FIFO
lanes visited in first-seen order, each granted up to ``weight``
consecutive dispatches per visit, with a drained lane yielding its
remaining credit.  The two implementations are property-tested against
one shared model (``tests/test_queue_properties.py``), so the fairness
discipline a tenant sees from ``pckpt submit`` is exactly the one the
``fair`` placement policy applies to batch jobs.

Unlike the service queue this one is a pure data structure — no
admission bound, no asyncio, no close/drain lifecycle — because the
scheduler engine owns the surrounding control flow.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

__all__ = ["WeightedRoundRobinOrder"]


class WeightedRoundRobinOrder:
    """Per-tenant FIFO lanes + weighted round-robin, synchronous.

    ``push``/``pop`` mirror the service queue's admission and
    ``_pop_now`` dispatch exactly; :meth:`peek` previews the next
    dispatch without consuming cursor credit, which is what the ``fair``
    policy's head-blocking placement loop needs.
    """

    def __init__(self) -> None:
        self._lanes: "OrderedDict[str, Deque[object]]" = OrderedDict()
        self._weights: Dict[str, int] = {}
        self._cursor: Optional[str] = None
        self._credit = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def items(self) -> list:
        """Every queued item, lanes in first-seen order (for inspection)."""
        return [item for lane in self._lanes.values() for item in lane]

    def set_weight(self, tenant: str, weight: int) -> None:
        """Grant *tenant* up to *weight* consecutive dispatches per round."""
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self._weights[tenant] = int(weight)

    def push(self, tenant: str, item: object) -> int:
        """Append *item* to *tenant*'s lane; returns its lane position."""
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = self._lanes[tenant] = deque()
            self._weights.setdefault(tenant, 1)
        lane.append(item)
        self._size += 1
        return len(lane) - 1

    def _next_cursor(self) -> str:
        """The tenant the next pop will serve (pure — no state change)."""
        assert self._size, "peek/pop on empty order"
        if self._cursor is not None and self._credit > 0 \
                and self._lanes.get(self._cursor):
            return self._cursor
        order = list(self._lanes)
        if self._cursor in order:
            start = order.index(self._cursor) + (
                1 if self._credit <= 0 else 0
            )
        else:
            start = 0
        for i in range(len(order)):
            candidate = order[(start + i) % len(order)]
            if self._lanes[candidate]:
                return candidate
        raise AssertionError("unreachable: size > 0 but no non-empty lane")

    def peek(self) -> object:
        """The item the next :meth:`pop` will return, without consuming."""
        return self._lanes[self._next_cursor()][0]

    def pop(self) -> object:
        """Next item under WRR (same discipline as ``FairShareQueue``)."""
        tenant = self._next_cursor()
        if tenant != self._cursor or self._credit <= 0:
            self._cursor = tenant
            self._credit = self._weights.get(tenant, 1)
        item = self._lanes[tenant].popleft()
        self._size -= 1
        self._credit -= 1
        if not self._lanes[tenant]:
            # Lane drained: yield remaining credit, matching the service
            # queue's round-reset behaviour.
            self._credit = 0
        return item
