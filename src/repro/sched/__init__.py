"""Cluster-scheduler workload layer: a batch queue over the C/R physics.

The paper's experiments give one application the whole machine; this
package runs a *queue* of Table-I applications instead — Poisson or
trace-driven arrivals, node-count placement under a pluggable policy
(FCFS, EASY backfill, fair share), a per-job C/R model, and
machine-wide storage contention where every running job's checkpoint
drains compete for the same PFS lanes.  See ``docs/SCHEDULER.md``.
"""

from .contention import SharedStorage
from .engine import (
    SchedResult,
    SchedRunOutput,
    SchedSimulation,
    aggregate_sched,
    run_sched_once,
)
from .jobs import (
    JOB_FIELDS,
    POLICY_NAMES,
    RESULT_FIELDS,
    SCHED_BASELINE_KIND,
    SCHED_SCHEMA_VERSION,
    JobRecord,
    SchedJob,
)
from .policy import (
    ESTIMATE_FACTOR,
    POLICIES,
    EasyBackfillPolicy,
    FairSharePolicy,
    FCFSPolicy,
    PendingJob,
    RunningJob,
    SchedulingPolicy,
    make_policy,
)
from .queue import WeightedRoundRobinOrder
from .workload import poisson_workload, trace_workload

__all__ = [
    "SCHED_SCHEMA_VERSION",
    "SCHED_BASELINE_KIND",
    "POLICY_NAMES",
    "JOB_FIELDS",
    "RESULT_FIELDS",
    "SchedJob",
    "JobRecord",
    "WeightedRoundRobinOrder",
    "ESTIMATE_FACTOR",
    "PendingJob",
    "RunningJob",
    "SchedulingPolicy",
    "FCFSPolicy",
    "EasyBackfillPolicy",
    "FairSharePolicy",
    "POLICIES",
    "make_policy",
    "SharedStorage",
    "SchedSimulation",
    "SchedRunOutput",
    "SchedResult",
    "run_sched_once",
    "aggregate_sched",
    "poisson_workload",
    "trace_workload",
]
