"""Stdlib HTTP client for the campaign service.

Thin, dependency-free wrapper over :mod:`http.client` used by the
``pckpt submit`` / ``pckpt jobs`` / ``pckpt watch`` subcommands, the
service tests, and the load generator.  One request per connection
(the server speaks ``Connection: close``), JSON in / JSON out, NDJSON
event streaming via a generator.

Error mapping:

* ``429`` → :class:`ServiceBusy` (carries ``retry_after``; callers may
  pass ``retries=`` to :meth:`ServiceClient.submit` to back off and
  retry instead);
* ``400`` with spec problems → :class:`SpecRejected` (``problems`` is
  the same collected list a local ``pckpt run --spec`` prints);
* any other non-2xx → :class:`ServiceError` with the decoded body.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ServiceError",
    "ServiceBusy",
    "SpecRejected",
    "ServiceClient",
]


class ServiceError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: Any) -> None:
        self.status = status
        self.payload = payload
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"service returned {status}: {detail}")


class ServiceBusy(ServiceError):
    """429: the admission queue is full — back off ``retry_after`` s."""

    def __init__(self, status: int, payload: Any,
                 retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class SpecRejected(ServiceError):
    """400: the submitted spec failed validation.

    ``problems`` holds every collected
    :class:`~repro.spec.loader.SpecError` problem, exactly as the local
    loader would report them.
    """

    def __init__(self, status: int, payload: Any,
                 problems: List[str]) -> None:
        super().__init__(status, payload)
        self.problems = problems


class ServiceClient:
    """Client for one ``pckpt serve`` endpoint.

    Parameters
    ----------
    host, port:
        Where the service listens.
    token:
        Optional bearer token.  In the server's open mode the token
        *is* the tenant name; in closed mode it must appear in the
        server's tokens file.
    timeout:
        Per-request socket timeout in seconds (streaming requests use
        a longer read timeout internally).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 token: Optional[str] = None, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.token = token
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------
    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None,
                 extra_headers: Optional[Dict[str, str]] = None
                 ) -> Tuple[int, Dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            payload = None
            headers = self._headers()
            if extra_headers:
                headers.update(extra_headers)
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            resp_headers = {k.lower(): v for k, v in response.getheaders()}
            return response.status, resp_headers, data
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              extra_headers: Optional[Dict[str, str]] = None) -> Any:
        status, headers, data = self._request(method, path, body,
                                              extra_headers=extra_headers)
        try:
            payload = json.loads(data.decode("utf-8")) if data else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = data.decode("utf-8", "replace")
        if 200 <= status < 300:
            return payload
        if status == 429:
            retry_after = float(
                (payload or {}).get("retry_after")
                or headers.get("retry-after") or 1.0
            )
            raise ServiceBusy(status, payload, retry_after)
        if status == 400 and isinstance(payload, dict) \
                and "problems" in payload:
            raise SpecRejected(status, payload, payload["problems"])
        raise ServiceError(status, payload)

    # -- readiness -----------------------------------------------------------
    def wait_ready(self, timeout: float = 10.0, interval: float = 0.1) -> None:
        """Block until the service answers ``/v1/status`` (startup race)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.status()
                return
            except (ConnectionRefusedError, ConnectionResetError,
                    socket.timeout, OSError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"service at {self.host}:{self.port} not ready "
                        f"after {timeout:g}s"
                    )
                time.sleep(interval)

    # -- API -----------------------------------------------------------------
    def submit(self, spec: Dict[str, Any], retries: int = 0,
               trace: Optional[str] = None) -> Dict[str, Any]:
        """``POST /v1/jobs`` — submit a spec document (a plain dict).

        Returns the response envelope ``{"job": record, "deduped":
        bool}``.  With ``retries > 0``, a 429 sleeps the advertised
        ``Retry-After`` and resubmits (up to *retries* times) before
        letting :class:`ServiceBusy` propagate.  *trace* (an
        ``X-Pckpt-Trace`` value: ``<trace_id>[-<span_id>]``, lowercase
        hex) propagates the caller's trace context; the job record's
        ``trace_id`` reports the context the service adopted.
        """
        extra = {"X-Pckpt-Trace": trace} if trace else None
        attempt = 0
        while True:
            try:
                return self._json("POST", "/v1/jobs", {"spec": spec},
                                  extra_headers=extra)
            except ServiceBusy as busy:
                if attempt >= retries:
                    raise
                attempt += 1
                time.sleep(busy.retry_after)

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>`` — one job record."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /v1/jobs`` — every job record, submit order."""
        return self._json("GET", "/v1/jobs")["jobs"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/result`` — per-cell results (done jobs)."""
        return self._json("GET", f"/v1/jobs/{job_id}/result")

    def status(self) -> Dict[str, Any]:
        """``GET /v1/status`` — service + campaign-store status."""
        return self._json("GET", "/v1/status")

    def metrics_text(self) -> str:
        """``GET /metrics`` — raw OpenMetrics exposition."""
        status, _, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, data.decode("utf-8", "replace"))
        return data.decode("utf-8")

    def shutdown(self) -> Dict[str, Any]:
        """``POST /v1/shutdown`` — ask the service to drain and exit."""
        return self._json("POST", "/v1/shutdown")

    def events(self, job_id: str,
               timeout: float = 600.0) -> Iterator[Dict[str, Any]]:
        """``GET /v1/jobs/<id>/events`` — yield NDJSON events as dicts.

        Streams live: the generator blocks on the socket while the job
        runs and finishes after the terminal event.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events",
                         headers=self._headers())
            response = conn.getresponse()
            if response.status != 200:
                data = response.read()
                try:
                    payload = json.loads(data.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    payload = data.decode("utf-8", "replace")
                raise ServiceError(response.status, payload)
            buffer = b""
            while True:
                chunk = response.read1(65536) if hasattr(response, "read1") \
                    else response.read(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
            if buffer.strip():
                yield json.loads(buffer.decode("utf-8"))
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 600.0,
             interval: float = 0.2) -> Dict[str, Any]:
        """Poll ``GET /v1/jobs/<id>`` until terminal; returns the record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:g}s"
                )
            time.sleep(interval)
