"""Closed-loop load generator for the campaign service.

Drives a running (or self-hosted) service with N concurrent client
threads submitting waves of distinct quick specs, and measures what the
service promises: bounded submit latency, coalescing/dedup behaviour,
and warm-wave cache hits.  The committed benchmark
``benchmarks/test_service_load.py`` asserts on the resulting payload;
``python -m repro.service.loadgen --quick`` is the CI smoke entry.

The workload is two (or more) **waves** over the same K distinct
single-cell specs: wave 1 is cold (every replication simulated), later
waves re-submit the same documents — new jobs, but every cell is served
from the shared store, so their ``replications_executed`` is 0.  Each
client thread is closed-loop (submit → wait done → next), and 429
backpressure is handled by honouring ``Retry-After``.

Results are written schema-versioned (``SERVICE_LOAD_<git-sha>.json``
under ``benchmarks/service/``) following the ``BENCH_*.json``
convention; ``tools/check_service_schema.py --load`` validates committed
files in CI.
"""

from __future__ import annotations

import json
import platform as _platform
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .client import ServiceClient
from .jobs import SERVICE_SCHEMA_VERSION

__all__ = [
    "LOAD_KIND",
    "quick_specs",
    "run_load",
    "validate_load_payload",
    "write_load_payload",
    "load_filename",
    "format_load_payload",
]

#: Marker distinguishing service-load payloads from other artifacts.
LOAD_KIND = "pckpt-service-load"

#: Latency summary keys every ``*_latency`` block must carry.
LATENCY_KEYS = ("p50", "p99", "mean", "max")


def quick_specs(n: int, replications: int = 1) -> List[Dict[str, Any]]:
    """*n* distinct single-cell spec documents (seed-varied).

    Each is the smallest useful campaign — one XGC × P2 cell, no
    baseline — so a load run measures the service, not the simulator.
    Distinct seeds give distinct ``spec_hash``es *and* distinct store
    keys, so wave 1 genuinely computes ``n`` cells.
    """
    return [
        {
            "schema_version": 1,
            "name": f"loadgen-{i}",
            "apps": ["XGC"],
            "models": ["P2"],
            "include_base": False,
            "replications": replications,
            "seed": 90_000 + i,
        }
        for i in range(n)
    ]


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of *values*."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[int(rank)]


def _latency_summary(values: Sequence[float]) -> Dict[str, float]:
    return {
        "p50": _percentile(values, 50.0),
        "p99": _percentile(values, 99.0),
        "mean": (sum(values) / len(values)) if values else 0.0,
        "max": max(values) if values else 0.0,
    }


class _ClientWorker(threading.Thread):
    """One closed-loop client: submit → wait terminal → next spec."""

    def __init__(self, host: str, port: int, token: str,
                 specs: Sequence[Dict[str, Any]], timeout: float) -> None:
        super().__init__(name=f"loadgen-{token}", daemon=True)
        self.client = ServiceClient(host, port, token=token)
        self.specs = specs
        self.timeout = timeout
        self.submit_latencies: List[float] = []
        self.completion_latencies: List[float] = []
        self.job_ids: List[str] = []
        self.deduped = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            for spec in self.specs:
                start = time.perf_counter()
                envelope = self.client.submit(spec, retries=50)
                self.submit_latencies.append(time.perf_counter() - start)
                if envelope["deduped"]:
                    self.deduped += 1
                job_id = envelope["job"]["id"]
                self.job_ids.append(job_id)
                self.client.wait(job_id, timeout=self.timeout)
                self.completion_latencies.append(
                    time.perf_counter() - start
                )
        except BaseException as exc:
            self.error = exc


def run_load(host: str, port: int, clients: int = 8, specs: int = 6,
             waves: int = 2, replications: int = 1,
             timeout: float = 600.0, quick: bool = False,
             progress: Optional[Any] = None) -> Dict[str, Any]:
    """Run the load workload against the service at ``host:port``.

    Each wave submits every one of the *specs* distinct documents once,
    the submissions spread round-robin over *clients* concurrent client
    threads (each its own tenant).  Waves are separated by a barrier, so
    wave ≥ 2 is guaranteed warm: same documents, fully cached cells.

    Returns the schema-versioned payload (not yet written to disk).
    """
    if clients < 1 or specs < 1 or waves < 1:
        raise ValueError("clients, specs and waves must all be >= 1")
    documents = quick_specs(specs, replications)
    probe = ServiceClient(host, port, token="loadgen-probe")
    probe.wait_ready(timeout=30.0)

    submit_latencies: List[float] = []
    completion_latencies: List[float] = []
    all_job_ids: List[str] = []
    deduped = 0
    started = time.perf_counter()
    for wave in range(waves):
        if progress is not None:
            progress(f"wave {wave + 1}/{waves}: {specs} specs over "
                     f"{clients} clients")
        shares: List[List[Dict[str, Any]]] = [[] for _ in range(clients)]
        for i, document in enumerate(documents):
            shares[i % clients].append(document)
        workers = [
            _ClientWorker(host, port, f"tenant-{i}", share, timeout)
            for i, share in enumerate(shares)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        for worker in workers:
            if worker.error is not None:
                raise RuntimeError(
                    f"load client {worker.name} failed"
                ) from worker.error
            submit_latencies.extend(worker.submit_latencies)
            completion_latencies.extend(worker.completion_latencies)
            all_job_ids.extend(worker.job_ids)
            deduped += worker.deduped
    wall = time.perf_counter() - started

    # Totals come from the job records themselves (the service's own
    # accounting), keyed by the unique job ids the clients collected.
    executed = 0
    total = 0
    warm_executed = 0
    warm_jobs = 0
    records = {jid: probe.job(jid) for jid in set(all_job_ids)}
    wave_size = specs  # job ids per wave, pre-dedup
    warm_ids = set(all_job_ids[wave_size:])  # waves >= 2
    cold_ids = set(all_job_ids[:wave_size])
    for jid, record in records.items():
        executed += record["replications_executed"] or 0
        total += record["replications"]
        if jid in warm_ids and jid not in cold_ids:
            warm_jobs += 1
            warm_executed += record["replications_executed"] or 0

    from ..bench import git_sha

    sha, dirty = git_sha()
    return {
        "kind": LOAD_KIND,
        "schema_version": SERVICE_SCHEMA_VERSION,
        "git_sha": sha,
        "dirty": dirty,
        "quick": quick,
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "clients": clients,
        "specs": specs,
        "waves": waves,
        "replications_per_cell": replications,
        "submissions": len(all_job_ids),
        "jobs": len(records),
        "deduped": deduped,
        "wall_seconds": wall,
        "submit_latency": _latency_summary(submit_latencies),
        "completion_latency": _latency_summary(completion_latencies),
        "replications_total": total,
        "replications_executed": executed,
        "cache_hit_rate": (
            (total - executed) / total if total else 0.0
        ),
        "warm_jobs": warm_jobs,
        "warm_replications_executed": warm_executed,
    }


def validate_load_payload(payload: Dict[str, Any]) -> List[str]:
    """Every schema violation in *payload* (empty = valid).

    Mirrored dependency-free by ``tools/check_service_schema.py
    --load`` so CI validates committed artifacts without importing this
    package.
    """
    problems: List[str] = []
    if payload.get("kind") != LOAD_KIND:
        problems.append(f"kind is {payload.get('kind')!r}, not {LOAD_KIND!r}")
    if payload.get("schema_version") != SERVICE_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {payload.get('schema_version')!r}, "
            f"code declares {SERVICE_SCHEMA_VERSION}"
        )
    for key in ("git_sha", "python"):
        if not isinstance(payload.get(key), str):
            problems.append(f"{key} must be a string")
    for key in ("clients", "specs", "waves", "submissions", "jobs",
                "deduped", "replications_total", "replications_executed",
                "warm_jobs", "warm_replications_executed"):
        value = payload.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{key} must be a non-negative integer")
    for key in ("wall_seconds", "cache_hit_rate"):
        value = payload.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value < 0:
            problems.append(f"{key} must be a non-negative number")
    for block in ("submit_latency", "completion_latency"):
        summary = payload.get(block)
        if not isinstance(summary, dict):
            problems.append(f"{block} must be an object")
            continue
        for key in LATENCY_KEYS:
            value = summary.get(key)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value < 0:
                problems.append(
                    f"{block}.{key} must be a non-negative number"
                )
    return problems


def load_filename(sha: str) -> str:
    """Canonical artifact name for a given (short) git sha."""
    return f"SERVICE_LOAD_{sha}.json"


def write_load_payload(payload: Dict[str, Any], directory: Path) -> Path:
    """Write ``SERVICE_LOAD_<sha>.json`` under *directory* (validated)."""
    problems = validate_load_payload(payload)
    if problems:
        raise ValueError("refusing to write invalid payload: "
                         + "; ".join(problems))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / load_filename(payload["git_sha"])
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def format_load_payload(payload: Dict[str, Any]) -> str:
    """Human summary of a load payload (printed by the CLI entry)."""
    submit = payload["submit_latency"]
    completion = payload["completion_latency"]
    return "\n".join([
        f"service load @ {payload['git_sha']}"
        + ("+dirty" if payload.get("dirty") else "")
        + (" (quick)" if payload.get("quick") else ""),
        f"  {payload['clients']} clients x {payload['waves']} waves over "
        f"{payload['specs']} specs -> {payload['submissions']} submissions, "
        f"{payload['jobs']} jobs, {payload['deduped']} deduped "
        f"({payload['wall_seconds']:.2f}s)",
        f"  submit latency     p50 {submit['p50'] * 1e3:8.1f} ms   "
        f"p99 {submit['p99'] * 1e3:8.1f} ms",
        f"  completion latency p50 {completion['p50']:8.3f} s    "
        f"p99 {completion['p99']:8.3f} s",
        f"  cache hit rate {payload['cache_hit_rate']:.1%} "
        f"({payload['replications_executed']}/"
        f"{payload['replications_total']} replications executed; "
        f"warm waves executed {payload['warm_replications_executed']})",
    ])


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.service.loadgen`` — self-hosted load smoke.

    Without ``--host``/``--port`` a throwaway service (temp store) is
    started in-process, loaded, and shut down.  ``--out DIR`` writes the
    schema-versioned artifact.
    """
    import argparse
    import sys
    import tempfile

    parser = argparse.ArgumentParser(
        prog="repro.service.loadgen",
        description="drive a pckpt service with concurrent load clients",
    )
    parser.add_argument("--host", default=None,
                        help="attach to a running service (default: "
                        "self-host a throwaway one)")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--specs", type=int, default=6)
    parser.add_argument("--waves", type=int, default=2)
    parser.add_argument("--replications", type=int, default=1,
                        help="replications per generated spec")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker width for the self-hosted service")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale (4 clients, 3 specs)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write SERVICE_LOAD_<sha>.json under DIR")
    args = parser.parse_args(argv)

    clients, specs = args.clients, args.specs
    if args.quick:
        clients, specs = min(clients, 4), min(specs, 3)

    def _run_against(host: str, port: int) -> Dict[str, Any]:
        return run_load(
            host, port, clients=clients, specs=specs, waves=args.waves,
            replications=args.replications, quick=args.quick,
            progress=lambda line: print(f"loadgen: {line}",
                                        file=sys.stderr),
        )

    if args.host is not None:
        payload = _run_against(args.host, args.port or 8787)
    else:
        from .server import ServiceThread

        with tempfile.TemporaryDirectory(prefix="pckpt-loadgen-") as tmp:
            with ServiceThread(Path(tmp) / "store", jobs=args.jobs) as svc:
                payload = _run_against(svc.host, svc.port)

    print(format_load_payload(payload))
    if args.out:
        path = write_load_payload(payload, Path(args.out))
        print(f"loadgen: wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
