"""Job model for the campaign service: states, events, records.

One **job** is one submitted :class:`~repro.spec.schema.ExperimentSpec`
document, identified by its :func:`~repro.spec.loader.spec_hash`.  The
state machine is deliberately small::

    queued ──> running ──> done
                     └───> failed

``queued``
    Admitted and waiting in the fair-share queue.
``running``
    Executing on the shared worker pool (one campaign, ``workers=1``
    inside the job — jobs are the unit of parallelism, which keeps
    every job bit-identical to a serial ``pckpt run --spec``).
``done`` / ``failed``
    Terminal.  ``done`` jobs serve their result set from
    ``GET /v1/jobs/<id>/result``; ``failed`` jobs carry ``error``.

Every observable change appends one **event** to the job's history —
the NDJSON records ``GET /v1/jobs/<id>/events`` streams.  Event kinds:
the four state entries plus ``telemetry`` (one per campaign-progress
snapshot, bridged live from the job's ``telemetry.jsonl``).

The declarative tables below (:data:`JOB_STATES`,
:data:`JOB_TRANSITIONS`, :data:`EVENT_KINDS`, :data:`JOB_FIELDS`,
:data:`EVENT_FIELDS`) are the single source of truth shared with
``docs/SERVICE.md`` and ``tools/check_service_schema.py``, following
the ``SNAPSHOT_FIELDS``/``check_obs_schema`` convention.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SERVICE_SCHEMA_VERSION",
    "JOB_KIND",
    "JOB_EVENT_KIND",
    "JOB_RESULT_KIND",
    "SERVICE_STATUS_KIND",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JOB_TRANSITIONS",
    "EVENT_KINDS",
    "JOB_FIELDS",
    "EVENT_FIELDS",
    "Job",
]

#: Schema version stamped on every record the service emits (job
#: records, NDJSON events, result payloads, status).  Bump on any
#: incompatible layout change.  Version 2 added the nullable
#: ``trace_id`` request-correlation field to job records and events.
SERVICE_SCHEMA_VERSION: int = 2

#: Record discriminators, mirroring the bench/telemetry convention.
JOB_KIND: str = "pckpt-job"
JOB_EVENT_KIND: str = "pckpt-job-event"
JOB_RESULT_KIND: str = "pckpt-job-result"
SERVICE_STATUS_KIND: str = "pckpt-service-status"

#: Every state a job can be in, in lifecycle order.
JOB_STATES: Tuple[str, ...] = ("queued", "running", "done", "failed")

#: States with no outgoing transition.
TERMINAL_STATES: Tuple[str, ...] = ("done", "failed")

#: The legal state machine: state -> admissible successor states.
JOB_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "queued": ("running",),
    "running": ("done", "failed"),
}

#: Event kinds on the NDJSON stream: one per state entry, plus a
#: ``telemetry`` event per bridged campaign-progress snapshot.
EVENT_KINDS: Tuple[str, ...] = (
    "queued", "running", "telemetry", "done", "failed",
)

#: Job-record fields: ``{name: (type, nullable)}`` — the shape of
#: ``GET /v1/jobs/<id>`` and of every entry in ``GET /v1/jobs``.
JOB_FIELDS: Dict[str, tuple] = {
    "kind": (str, False),
    "schema_version": (int, False),
    "id": (str, False),
    "tenant": (str, False),
    "state": (str, False),
    "trace_id": (str, True),
    "spec_hash": (str, False),
    "spec_name": (str, True),
    "cells": (int, False),
    "replications": (int, False),
    "submitted_at": (float, False),
    "started_at": (float, True),
    "finished_at": (float, True),
    "error": (str, True),
    "replications_executed": (int, True),
    "cache_hit_rate": (float, True),
    "events": (int, False),
}

#: NDJSON event fields: ``{name: (type, nullable)}``.  ``data`` carries
#: the event payload: the full telemetry snapshot for ``telemetry``
#: events, the completion summary for ``done``, the error for
#: ``failed``, null otherwise.
EVENT_FIELDS: Dict[str, tuple] = {
    "kind": (str, False),
    "schema_version": (int, False),
    "job_id": (str, False),
    "trace_id": (str, True),
    "seq": (int, False),
    "ts": (float, False),
    "event": (str, False),
    "state": (str, False),
    "data": (dict, True),
}


class Job:
    """In-memory job: spec + state + event history.

    All mutation happens on the server's event loop thread (worker
    threads bridge through ``call_soon_threadsafe``), so no lock is
    needed; streaming readers wake on :attr:`turnstile`, an
    ``asyncio.Event`` rotated on every append.
    """

    def __init__(self, job_id: str, tenant: str, spec,
                 spec_hash: str, cells: int,
                 submitted_at: Optional[float] = None,
                 trace=None) -> None:
        self.id = job_id
        self.tenant = tenant
        self.spec = spec                      # validated ExperimentSpec
        self.spec_hash = spec_hash
        self.cells = int(cells)
        #: :class:`~repro.obs.context.TraceContext` naming the request
        #: that created this job (``None`` only for legacy callers; the
        #: server always mints one when no header is supplied).
        self.trace = trace
        self.state = "queued"
        self.submitted_at = (time.time() if submitted_at is None
                             else float(submitted_at))
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        self.replications_executed: Optional[int] = None
        self.cache_hit_rate: Optional[float] = None
        #: ``{(model, column) -> SimulationResult}`` once done.
        self.results: Optional[Dict[tuple, Any]] = None
        #: Store keys aligned with ``results`` (grid order).
        self.store_keys: Optional[List[str]] = None
        self.events: List[Dict[str, Any]] = []
        #: NDJSON file mirroring :attr:`events` on disk (set by the
        #: server after registration; ``None`` keeps events in-memory
        #: only, the pre-v2 behaviour).
        self.events_path: Optional[Any] = None
        self._events_written = 0
        self.turnstile: Any = None            # asyncio.Event, set by server
        self.record_event("queued")

    # -- identity ------------------------------------------------------------
    @property
    def trace_id(self) -> Optional[str]:
        return self.trace.trace_id if self.trace is not None else None

    # -- state machine -------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: str,
                   data: Optional[Dict[str, Any]] = None) -> None:
        """Move to *state* (validated against :data:`JOB_TRANSITIONS`)."""
        allowed = JOB_TRANSITIONS.get(self.state, ())
        if state not in allowed:
            raise ValueError(
                f"job {self.id}: illegal transition "
                f"{self.state!r} -> {state!r} (allowed: {list(allowed)})"
            )
        self.state = state
        now = time.time()
        if state == "running":
            self.started_at = now
        if state in TERMINAL_STATES:
            self.finished_at = now
        self.record_event(state, data)

    def record_event(self, event: str,
                     data: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Append one event record and wake streaming readers."""
        if event not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {event!r}")
        record = {
            "kind": JOB_EVENT_KIND,
            "schema_version": SERVICE_SCHEMA_VERSION,
            "job_id": self.id,
            "trace_id": self.trace_id,
            "seq": len(self.events),
            "ts": time.time(),
            "event": event,
            "state": self.state,
            "data": data,
        }
        self.events.append(record)
        self.persist_events()
        turnstile = self.turnstile
        if turnstile is not None:
            # Rotate: wake everyone blocked on the old event, give new
            # waiters a fresh one.
            import asyncio

            self.turnstile = asyncio.Event()
            turnstile.set()
        return record

    def persist_events(self) -> None:
        """Append any events not yet on disk to :attr:`events_path`.

        No-op when no path is set.  Called after every append (and once
        by the server right after it assigns the path, to flush the
        ``queued`` event recorded during construction).  Append + flush
        per event keeps the on-disk stream live for ``pckpt obs
        stitch`` even if the service later dies uncleanly.
        """
        if self.events_path is None:
            return
        if self._events_written >= len(self.events):
            return
        import json
        import os

        path = os.fspath(self.events_path)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "a", encoding="utf-8") as fp:
            for record in self.events[self._events_written:]:
                fp.write(json.dumps(record, sort_keys=True) + "\n")
        self._events_written = len(self.events)

    # -- serialization -------------------------------------------------------
    def to_record(self) -> Dict[str, Any]:
        """The job as a :data:`JOB_FIELDS`-shaped JSON-ready dict."""
        return {
            "kind": JOB_KIND,
            "schema_version": SERVICE_SCHEMA_VERSION,
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "trace_id": self.trace_id,
            "spec_hash": self.spec_hash,
            "spec_name": self.spec.name,
            "cells": self.cells,
            "replications": self.cells * self.spec.replications,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "replications_executed": self.replications_executed,
            "cache_hit_rate": self.cache_hit_rate,
            "events": len(self.events),
        }

    def result_payload(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/<id>/result`` body (job must be done)."""
        from ..campaign.store import result_to_dict

        if self.state != "done" or self.results is None:
            raise ValueError(f"job {self.id} is {self.state}, not done")
        keys = self.store_keys or [None] * len(self.results)
        return {
            "kind": JOB_RESULT_KIND,
            "schema_version": SERVICE_SCHEMA_VERSION,
            "job_id": self.id,
            "spec_hash": self.spec_hash,
            "cells": [
                {
                    "key": list(cell_key),
                    "store_key": store_key,
                    "result": result_to_dict(result),
                }
                for (cell_key, result), store_key
                in zip(self.results.items(), keys)
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Job {self.id} tenant={self.tenant} state={self.state} "
                f"hash={self.spec_hash[:12]}>")
