"""Bounded multi-tenant job queue with weighted-round-robin dispatch.

The service admits jobs into per-tenant FIFO lanes and dispatches them
**fairly**, not in arrival order: the dispatcher cycles tenants in
first-seen order, granting each up to ``weight`` consecutive jobs per
visit before moving on.  A tenant that floods the queue therefore only
delays its own later jobs — with one worker, the dispatch order for

    A: a1 a2 a3   then   B: b1        (equal weights)

is ``a1 b1 a2 a3``, never ``a1 a2 a3 b1``.

Admission is bounded: :meth:`FairShareQueue.push` raises
:class:`QueueFull` once ``limit`` jobs are waiting, which the HTTP
layer maps to ``429 Too Many Requests`` + ``Retry-After`` —
backpressure, not unbounded memory.

All methods run on the server's event loop thread.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from .jobs import Job

__all__ = ["QueueFull", "FairShareQueue"]


class QueueFull(RuntimeError):
    """Admission refused: the queue already holds ``limit`` jobs."""

    def __init__(self, limit: int, retry_after: float) -> None:
        self.limit = limit
        #: Suggested client back-off (seconds) for the Retry-After header.
        self.retry_after = retry_after
        super().__init__(f"queue full ({limit} jobs waiting)")


class FairShareQueue:
    """Per-tenant lanes + weighted round-robin, behind one awaitable pop.

    Parameters
    ----------
    limit:
        Maximum jobs waiting across all tenants (admission bound).
    retry_after:
        Back-off hint carried by :class:`QueueFull`.
    """

    def __init__(self, limit: int = 64, retry_after: float = 2.0) -> None:
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        self.limit = limit
        self.retry_after = retry_after
        # Tenant lanes in first-seen order — the WRR visiting order.
        self._lanes: "OrderedDict[str, Deque[Job]]" = OrderedDict()
        self._weights: Dict[str, int] = {}
        self._cursor: Optional[str] = None    # tenant currently being served
        self._credit = 0                      # remaining grants at cursor
        self._size = 0
        self._closed = False
        self._wakeup = asyncio.Event()

    def __len__(self) -> int:
        return self._size

    @property
    def closed(self) -> bool:
        return self._closed

    def depth_by_tenant(self) -> Dict[str, int]:
        """Waiting jobs per tenant (empty lanes omitted)."""
        return {t: len(lane) for t, lane in self._lanes.items() if lane}

    def set_weight(self, tenant: str, weight: int) -> None:
        """Grant *tenant* up to *weight* consecutive dispatches per round."""
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self._weights[tenant] = int(weight)

    def push(self, job: Job) -> int:
        """Admit *job*; returns its position in the tenant's lane (0-based).

        Raises
        ------
        QueueFull
            When ``limit`` jobs are already waiting.
        RuntimeError
            When the queue is closed (service shutting down).
        """
        if self._closed:
            raise RuntimeError("queue is closed")
        if self._size >= self.limit:
            raise QueueFull(self.limit, self.retry_after)
        lane = self._lanes.get(job.tenant)
        if lane is None:
            lane = self._lanes[job.tenant] = deque()
            self._weights.setdefault(job.tenant, 1)
        lane.append(job)
        self._size += 1
        self._wakeup.set()
        return len(lane) - 1

    async def pop(self) -> Optional[Job]:
        """Next job under WRR, or ``None`` once closed and drained."""
        while True:
            if self._size:
                return self._pop_now()
            if self._closed:
                return None
            self._wakeup.clear()
            await self._wakeup.wait()

    def _pop_now(self) -> Job:
        tenants = [t for t, lane in self._lanes.items() if lane]
        assert tenants, "pop on empty queue"
        if self._cursor not in tenants or self._credit <= 0:
            # Advance to the next non-empty tenant after the cursor, in
            # first-seen order, wrapping; refill its credit.
            order = list(self._lanes)
            if self._cursor in order:
                start = order.index(self._cursor) + (
                    1 if self._credit <= 0 else 0
                )
            else:
                start = 0
            for i in range(len(order)):
                candidate = order[(start + i) % len(order)]
                if self._lanes[candidate]:
                    self._cursor = candidate
                    self._credit = self._weights.get(candidate, 1)
                    break
        assert self._cursor is not None
        job = self._lanes[self._cursor].popleft()
        self._size -= 1
        self._credit -= 1
        if not self._lanes[self._cursor]:
            # Lane drained: the cursor yields its remaining credit so
            # the next tenant starts fresh.
            self._credit = 0
        return job

    def drain(self) -> list:
        """Remove and return every waiting job (persist-on-shutdown)."""
        out = []
        for lane in self._lanes.values():
            out.extend(lane)
            lane.clear()
        self._size = 0
        return out

    def close(self) -> None:
        """Stop admissions; blocked ``pop``s return ``None`` when empty."""
        self._closed = True
        self._wakeup.set()
