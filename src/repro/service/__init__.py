"""``repro.service`` — campaign-as-a-service over the spec + campaign engines.

The declarative :mod:`repro.spec` documents and the content-addressed
:mod:`repro.campaign` store already make every experiment nameable and
every result reusable; this package adds the missing operational layer:
a long-running, multi-tenant **job service** (``pckpt serve``) that many
clients share instead of each running their own campaigns.

* :mod:`repro.service.server` — the asyncio HTTP server: admission
  (validation, auth-lite tenancy, in-flight dedup by spec hash, bounded
  queue with 429 backpressure), fair-share scheduling onto a shared
  worker pool, live NDJSON event streaming, OpenMetrics, graceful
  drain + queue persistence;
* :mod:`repro.service.queue` — the bounded weighted-round-robin
  fair-share queue;
* :mod:`repro.service.jobs` — the job state machine and the
  schema-versioned record/event tables (``tools/check_service_schema.py``
  keeps ``docs/SERVICE.md`` and committed artifacts in sync with them);
* :mod:`repro.service.client` — the stdlib HTTP client behind
  ``pckpt submit`` / ``pckpt jobs`` / ``pckpt watch``;
* :mod:`repro.service.loadgen` — the concurrent load generator behind
  ``benchmarks/test_service_load.py`` and the committed
  ``SERVICE_LOAD_*.json`` artifacts.

Everything is stdlib-only, and every job executes through the exact
local code path (``run_spec`` with in-process workers), so a result
fetched from the service is bit-identical to ``pckpt run --spec`` of
the same document.  User-facing reference: ``docs/SERVICE.md``.
"""

from .client import ServiceBusy, ServiceClient, ServiceError, SpecRejected
from .jobs import (
    EVENT_FIELDS,
    EVENT_KINDS,
    JOB_EVENT_KIND,
    JOB_FIELDS,
    JOB_KIND,
    JOB_RESULT_KIND,
    JOB_STATES,
    JOB_TRANSITIONS,
    SERVICE_SCHEMA_VERSION,
    SERVICE_STATUS_KIND,
    TERMINAL_STATES,
    Job,
)
from .queue import FairShareQueue, QueueFull
from .server import DEFAULT_PORT, PckptService, ServiceThread, load_tokens, serve

__all__ = [
    "SERVICE_SCHEMA_VERSION",
    "JOB_KIND",
    "JOB_EVENT_KIND",
    "JOB_RESULT_KIND",
    "SERVICE_STATUS_KIND",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JOB_TRANSITIONS",
    "EVENT_KINDS",
    "JOB_FIELDS",
    "EVENT_FIELDS",
    "Job",
    "FairShareQueue",
    "QueueFull",
    "DEFAULT_PORT",
    "PckptService",
    "ServiceThread",
    "load_tokens",
    "serve",
    "ServiceClient",
    "ServiceError",
    "ServiceBusy",
    "SpecRejected",
]
