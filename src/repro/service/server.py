"""The campaign service: an asyncio HTTP job-queue server.

``pckpt serve --store DIR --jobs N --port P`` turns the campaign engine
into a shared, multi-tenant facility.  One process owns one
content-addressed :class:`~repro.campaign.store.ResultStore`; many
clients submit canonical :class:`~repro.spec.schema.ExperimentSpec`
documents over HTTP and stream progress back.  Identical work is never
done twice:

* **in-flight dedup** — a submission whose
  :func:`~repro.spec.loader.spec_hash` matches a queued or running job
  coalesces onto it (any tenant; the response carries
  ``"deduped": true`` and the original job's record);
* **completed-work dedup** — every job runs the campaign scheduler
  with ``resume=True`` against the shared store, so cells another job
  (or a local ``pckpt run --store``) already computed are served from
  cache by :func:`~repro.campaign.plan.content_key` and execute zero
  replications.

Scheduling is **fair-share**, not FIFO: admitted jobs wait in
per-tenant lanes and a weighted round-robin dispatcher feeds the shared
worker pool (:mod:`repro.service.queue`).  Admission is bounded —
``429`` + ``Retry-After`` once ``queue_limit`` jobs wait.  Each job
executes its campaign with ``workers=1`` (jobs are the unit of
parallelism), so every result set is **bit-identical** to a local
``pckpt run --spec`` of the same document.

Transport is deliberately minimal: HTTP/1.1 over ``asyncio`` streams,
``Connection: close``, JSON bodies, NDJSON event streaming — stdlib
only.  Endpoints (full reference in ``docs/SERVICE.md``)::

    POST /v1/jobs                submit a spec          -> job record
    GET  /v1/jobs                list jobs
    GET  /v1/jobs/<id>           one job record
    GET  /v1/jobs/<id>/events    NDJSON event stream (live until terminal)
    GET  /v1/jobs/<id>/result    per-cell SimulationResults (done jobs)
    GET  /v1/status              service + campaign-store status
    GET  /metrics                OpenMetrics exposition
    POST /v1/shutdown            graceful drain + exit

Graceful shutdown (signal or ``/v1/shutdown``) drains running jobs,
persists the waiting queue to ``<store>/service/queue.json``, and a
restarted ``pckpt serve`` re-enqueues it — combined with store-level
resume, an interrupted service loses no completed cell.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..campaign.plan import content_key
from ..campaign.progress import CampaignProgress
from ..campaign.scheduler import run_campaign
from ..campaign.store import ResultStore, status_payload
from ..des.metrics import MetricsRegistry
from ..obs.context import (SpanWriter, TraceContext, activate,
                           mint_context, parse_trace_header,
                           trace_fragment_dir)
from ..obs.slo import (DEFAULT_WINDOW_SECONDS, SLOObjectives, compute_slo,
                       render_slo_metrics)
from ..obs.telemetry import OPENMETRICS_CONTENT_TYPE, CampaignTelemetry
from ..spec import SpecError, build_cells, spec_from_dict, spec_hash
from .jobs import (
    JOB_STATES,
    SERVICE_SCHEMA_VERSION,
    SERVICE_STATUS_KIND,
    Job,
)
from .queue import FairShareQueue, QueueFull

__all__ = [
    "DEFAULT_PORT",
    "PckptService",
    "ServiceThread",
    "load_tokens",
    "serve",
]

#: Default TCP port for ``pckpt serve`` / the client.
DEFAULT_PORT: int = 8787

#: Directory (under the store root) holding service state.
SERVICE_DIRNAME: str = "service"

#: Persisted-queue file name inside the service directory.
QUEUE_FILENAME: str = "queue.json"

_MAX_BODY = 8 * 1024 * 1024  # spec documents are small; 8 MiB is generous

_STATUS_TEXT = {
    200: "OK", 201: "Created", 400: "Bad Request", 401: "Unauthorized",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _write_atomic(path: Path, payload: Dict[str, Any]) -> None:
    """Temp-file + ``os.replace`` write (same discipline as the store)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_tokens(path: Union[str, Path]) -> Dict[str, Tuple[str, int]]:
    """Parse a tokens file into ``{token: (tenant, weight)}``.

    The file maps each bearer token to either a tenant name or an
    object ``{"tenant": ..., "weight": N}`` (weight defaults to 1)::

        {"tok-alice": "alice",
         "tok-batch": {"tenant": "batch", "weight": 4}}
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"tokens file {path} must hold a JSON object")
    out: Dict[str, Tuple[str, int]] = {}
    for token, entry in data.items():
        if isinstance(entry, str):
            out[token] = (entry, 1)
        elif isinstance(entry, dict) and isinstance(entry.get("tenant"), str):
            weight = entry.get("weight", 1)
            if not isinstance(weight, int) or weight < 1:
                raise ValueError(
                    f"tokens file {path}: weight for {entry['tenant']!r} "
                    f"must be a positive integer, got {weight!r}"
                )
            out[token] = (entry["tenant"], weight)
        else:
            raise ValueError(
                f"tokens file {path}: entry for token {token!r} must be "
                "a tenant name or {'tenant': ..., 'weight': N}"
            )
    return out


class _BridgedTelemetry:
    """Telemetry sink tee: per-job ``telemetry.jsonl`` + live job events.

    Runs in the job's worker thread; event appends hop to the server's
    loop thread via ``call_soon_threadsafe`` so all job mutation stays
    single-threaded.
    """

    def __init__(self, inner: CampaignTelemetry,
                 loop: asyncio.AbstractEventLoop, job: Job) -> None:
        self._inner = inner
        self._loop = loop
        self._job = job

    def write(self, snapshot: Dict[str, object]) -> Dict[str, object]:
        record = self._inner.write(snapshot)
        self._loop.call_soon_threadsafe(
            self._job.record_event, "telemetry", record
        )
        return record

    def close(self) -> None:
        self._inner.close()


class PckptService:
    """The service: store + queue + worker pool + HTTP front end.

    Parameters
    ----------
    store:
        Result-store directory (created if missing); service state lives
        under ``<store>/service/``.
    jobs:
        Worker-pool width — how many jobs execute concurrently.
    queue_limit:
        Maximum jobs waiting for a worker (backpressure bound).
    tokens:
        ``{token: (tenant, weight)}`` for closed-mode auth, or ``None``
        for open mode (the bearer token itself names the tenant;
        unauthenticated requests map to tenant ``"anonymous"``).
    retry_after:
        ``Retry-After`` seconds suggested on 429 responses.
    slo:
        Per-tenant :class:`~repro.obs.slo.SLOObjectives` graded on the
        ``/metrics`` exposition (default: no objectives — indicators
        are exported, burn rates stay null).
    slo_window:
        Rolling window (seconds) for the per-tenant indicators.
    """

    def __init__(self, store: Union[str, Path], jobs: int = 2,
                 queue_limit: int = 64,
                 tokens: Optional[Dict[str, Tuple[str, int]]] = None,
                 retry_after: float = 2.0,
                 slo: Optional[SLOObjectives] = None,
                 slo_window: float = DEFAULT_WINDOW_SECONDS) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.store = ResultStore(store)
        self.service_dir = self.store.root / SERVICE_DIRNAME
        self.jobs_dir = self.service_dir / "jobs"
        self.workers = int(jobs)
        self.tokens = tokens
        self.queue = FairShareQueue(queue_limit, retry_after)
        self.slo = slo or SLOObjectives()
        self.slo_window = float(slo_window)
        self.metrics = MetricsRegistry()
        self.jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}   # spec_hash -> job id
        self._next_seq = 1
        self._started_at = time.time()
        self._closing = False
        self._stopped = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_tasks: List[asyncio.Task] = []
        self._pool = None                     # ThreadPoolExecutor
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = DEFAULT_PORT) -> None:
        """Bind the listener, restore the persisted queue, start workers."""
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="pckpt-job"
        )
        self._restore_queue()
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self._worker_tasks = [
            asyncio.ensure_future(self._worker()) for _ in range(self.workers)
        ]

    async def run(self, host: str = "127.0.0.1",
                  port: int = DEFAULT_PORT) -> None:
        """Start and serve until :meth:`shutdown` completes."""
        await self.start(host, port)
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: finish running jobs, persist the waiting queue.

        New submissions are refused (503) immediately; jobs already on a
        worker run to completion (their cells persist to the store
        either way); jobs still waiting stay ``queued`` on disk and a
        restarted service re-enqueues them.
        """
        if self._closing:
            return
        self._closing = True
        pending = self.queue.drain()
        self.queue.close()
        self._persist_queue(pending)
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    # -- queue persistence ---------------------------------------------------
    def _queue_path(self) -> Path:
        return self.service_dir / QUEUE_FILENAME

    def _persist_queue(self, pending: Optional[List[Job]] = None) -> None:
        """Write the waiting jobs (submit order) + id counter to disk."""
        from ..spec import spec_to_dict

        if pending is None:
            pending = [
                job for job in self.jobs.values() if job.state == "queued"
            ]
        pending = sorted(pending, key=lambda j: j.submitted_at)
        _write_atomic(self._queue_path(), {
            "kind": "pckpt-service-queue",
            "schema_version": SERVICE_SCHEMA_VERSION,
            "next_seq": self._next_seq,
            "pending": [
                {
                    "id": job.id,
                    "tenant": job.tenant,
                    "submitted_at": job.submitted_at,
                    "trace": (None if job.trace is None else {
                        "trace_id": job.trace.trace_id,
                        "span_id": job.trace.span_id,
                        "parent_id": job.trace.parent_id,
                    }),
                    "spec": spec_to_dict(job.spec),
                }
                for job in pending
            ],
        })

    def _restore_queue(self) -> None:
        """Re-enqueue jobs persisted by a previous (interrupted) serve."""
        path = self._queue_path()
        if not path.exists():
            return
        data = json.loads(path.read_text(encoding="utf-8"))
        self._next_seq = int(data.get("next_seq", 1))
        for entry in data.get("pending", []):
            spec = spec_from_dict(entry["spec"])
            persisted = entry.get("trace")
            trace = None
            if isinstance(persisted, dict):
                try:
                    trace = TraceContext(
                        persisted["trace_id"], persisted["span_id"],
                        persisted.get("parent_id"),
                    )
                except (KeyError, TypeError, ValueError):
                    trace = None  # pre-v2 or mangled entry: mint fresh
            job = self._register_job(
                spec, entry["tenant"], submitted_at=entry["submitted_at"],
                job_id=entry["id"], trace=trace,
            )
            self.queue.push(job)
        if data.get("pending"):
            self._persist_queue()

    # -- job admission -------------------------------------------------------
    def _register_job(self, spec, tenant: str,
                      submitted_at: Optional[float] = None,
                      job_id: Optional[str] = None,
                      trace: Optional[TraceContext] = None) -> Job:
        digest = spec_hash(spec)
        if job_id is None:
            job_id = f"j{self._next_seq:05d}-{digest[:8]}"
            self._next_seq += 1
        job = Job(job_id, tenant, spec, digest,
                  cells=len(build_cells(spec)), submitted_at=submitted_at,
                  trace=trace or mint_context())
        job.turnstile = asyncio.Event()
        # Mirror the in-memory event stream to disk: one NDJSON file per
        # job lifetime (truncated on re-registration after a restart so
        # seq stays strictly increasing within the file).
        events_path = self.jobs_dir / job.id / "events.ndjson"
        if events_path.exists():
            events_path.unlink()
        job.events_path = events_path
        job.persist_events()
        self.jobs[job.id] = job
        self._inflight[digest] = job.id
        return job

    def submit(self, spec, tenant: str, weight: int = 1,
               trace: Optional[TraceContext] = None) -> Tuple[Job, bool]:
        """Admit *spec* for *tenant*; returns ``(job, deduped)``.

        *trace* is the request's trace context (minted when ``None``).
        A deduped submission keeps the original job's context — the
        response record names the trace that actually ran the work.

        Raises :class:`~repro.service.queue.QueueFull` on backpressure
        and ``RuntimeError`` once the service is shutting down.
        """
        if self._closing:
            raise RuntimeError("service is shutting down")
        digest = spec_hash(spec)
        existing = self._inflight.get(digest)
        if existing is not None and not self.jobs[existing].terminal:
            self.metrics.counter("service.jobs.deduped").inc()
            return self.jobs[existing], True
        if weight > 1:
            self.queue.set_weight(tenant, weight)
        job = self._register_job(spec, tenant, trace=trace)
        try:
            self.queue.push(job)
        except QueueFull:
            del self.jobs[job.id]
            self._inflight.pop(digest, None)
            if job.events_path is not None and job.events_path.exists():
                job.events_path.unlink()  # admission failed: no stream
            self.metrics.counter("service.jobs.rejected").inc()
            raise
        self.metrics.counter("service.jobs.submitted").inc()
        self.metrics.counter(f"service.tenant.{tenant}.submitted").inc()
        self._persist_queue()
        return job, False

    # -- execution -----------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            job = await self.queue.pop()
            if job is None:
                return
            job.transition("running")
            self._persist_queue()
            self._persist_job(job)
            try:
                summary = await self._loop.run_in_executor(
                    self._pool, self._execute, job
                )
                job.replications_executed = summary["replications_executed"]
                job.cache_hit_rate = summary["cache_hit_rate"]
                job.transition("done", summary)
                self.metrics.counter("service.jobs.completed").inc()
            except Exception as exc:
                job.error = f"{type(exc).__name__}: {exc}"
                job.transition("failed", {"error": job.error})
                self.metrics.counter("service.jobs.failed").inc()
            finally:
                if self._inflight.get(job.spec_hash) == job.id:
                    del self._inflight[job.spec_hash]
                self._persist_job(job)
                self._write_request_fragment(job)

    def _persist_job(self, job: Job) -> None:
        """Snapshot the job record to ``<jobs>/<id>/job.json``.

        The on-disk record is what ``pckpt obs slo`` / ``pckpt obs
        stitch`` analyze after the service exits.
        """
        _write_atomic(self.jobs_dir / job.id / "job.json", job.to_record())

    def _write_request_fragment(self, job: Job) -> None:
        """Span fragment for the service's side of one finished job.

        The ``request`` span (admission → terminal state) roots the
        stitched trace; ``queue.wait`` and ``execute`` children split
        it at dispatch time.
        """
        if job.trace is None or job.finished_at is None:
            return
        writer = SpanWriter(
            trace_fragment_dir(self.store.root, job.trace.trace_id)
            / f"service-{job.id}.jsonl",
            job.trace.trace_id, f"service/{job.id}",
        )
        try:
            writer.span(
                "request", job.submitted_at, job.finished_at,
                span_id=job.trace.span_id, parent_id=job.trace.parent_id,
                args={"job_id": job.id, "tenant": job.tenant,
                      "state": job.state, "spec_hash": job.spec_hash},
            )
            if job.started_at is not None:
                writer.span("queue.wait", job.submitted_at, job.started_at,
                            parent_id=job.trace.span_id)
                writer.span("execute", job.started_at, job.finished_at,
                            parent_id=job.trace.span_id,
                            args={"state": job.state})
        finally:
            writer.close()

    def _execute(self, job: Job) -> Dict[str, Any]:
        """Worker thread: run the job's campaign against the shared store."""
        job_dir = self.jobs_dir / job.id
        job_dir.mkdir(parents=True, exist_ok=True)
        telemetry = _BridgedTelemetry(
            CampaignTelemetry(job_dir / "telemetry.jsonl",
                              trace_id=job.trace_id),
            self._loop, job,
        )
        progress = CampaignProgress(telemetry=telemetry)
        # build_cells resolves on the fly and routes sched specs to
        # build_sched_cells (a resolved experiment has no sched block).
        cells = build_cells(job.spec)
        # workers=1: the job IS the unit of parallelism; in-process
        # execution is bit-identical to `pckpt run --spec` by the
        # campaign scheduler's determinism contract — the trace context
        # activated here only adds wall-clock span records on the side.
        with activate(job.trace):
            results = run_campaign(cells, store=self.store, workers=1,
                                   progress=progress, resume=True)
        job.results = results
        job.store_keys = [content_key(c) for c in cells]
        executed = int(
            progress.metrics.counter("campaign.replications.executed").value
        )
        cached = int(
            progress.metrics.counter("campaign.replications.cached").value
        )
        total = executed + cached
        return {
            "cells": len(cells),
            "replications_executed": executed,
            "replications_cached": cached,
            "cache_hit_rate": (cached / total) if total else 0.0,
        }

    # -- status / metrics ----------------------------------------------------
    def status(self) -> Dict[str, Any]:
        states = {state: 0 for state in JOB_STATES}
        tenants: Dict[str, Dict[str, Any]] = {}
        for job in self.jobs.values():
            states[job.state] += 1
            per = tenants.setdefault(job.tenant, {"jobs": 0})
            per["jobs"] += 1
        payload = status_payload(self.store)
        return {
            "kind": SERVICE_STATUS_KIND,
            "schema_version": SERVICE_SCHEMA_VERSION,
            "uptime_seconds": time.time() - self._started_at,
            "workers": self.workers,
            "closing": self._closing,
            "queue": {
                "depth": len(self.queue),
                "limit": self.queue.limit,
                "by_tenant": self.queue.depth_by_tenant(),
            },
            "jobs": dict(states, total=len(self.jobs)),
            "tenants": tenants,
            "store": payload["store"],
            "store_telemetry": payload["telemetry"],
        }

    def render_metrics(self) -> str:
        """Service-level OpenMetrics exposition (``GET /metrics``).

        Includes the per-tenant SLO series (``pckpt_tenant_*``, labeled
        by tenant) computed over the in-memory job records; see
        :mod:`repro.obs.slo`.
        """
        states = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            states[job.state] += 1
        lines = [
            "# TYPE pckpt_service_info gauge",
            f'pckpt_service_info{{schema_version="{SERVICE_SCHEMA_VERSION}"}}'
            " 1",
            "# TYPE pckpt_service_jobs gauge",
        ]
        for state in JOB_STATES:
            lines.append(
                f'pckpt_service_jobs{{state="{state}"}} {states[state]}'
            )
        for name in ("submitted", "deduped", "rejected", "completed",
                     "failed"):
            # OpenMetrics: a counter family is declared WITHOUT the
            # `_total` suffix; only the sample carries it.
            metric = f"pckpt_service_jobs_{name}"
            value = self.metrics.counter(f"service.jobs.{name}").value
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}_total {value:g}")
        for metric, value in (
            ("pckpt_service_queue_depth", len(self.queue)),
            ("pckpt_service_queue_limit", self.queue.limit),
            ("pckpt_service_workers", self.workers),
            ("pckpt_service_store_cells", len(self.store)),
            ("pckpt_service_uptime_seconds",
             time.time() - self._started_at),
        ):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {float(value):g}")
        rows = compute_slo(
            [job.to_record() for job in self.jobs.values()],
            window_seconds=self.slo_window, objectives=self.slo,
            now=time.time(),
        )
        lines.extend(render_slo_metrics(rows))
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    # -- HTTP front end ------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            await self._route(method, path, headers, body, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response
        except Exception as exc:  # defensive: one bad request != one crash
            try:
                await self._send_json(
                    writer, 500,
                    {"error": f"internal error: {type(exc).__name__}: {exc}"},
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            if length > _MAX_BODY:
                raise ValueError("request body too large")
            body = await reader.readexactly(length)
        return method, target, headers, body

    def _tenant_for(self, headers: Dict[str, str]
                    ) -> Optional[Tuple[str, int]]:
        """``(tenant, weight)`` for the request, or ``None`` (401)."""
        auth = headers.get("authorization", "")
        token = auth[7:].strip() if auth.lower().startswith("bearer ") else ""
        if self.tokens is not None:
            return self.tokens.get(token)
        return (token, 1) if token else ("anonymous", 1)

    async def _route(self, method: str, path: str, headers: Dict[str, str],
                     body: bytes, writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0]
        if path == "/metrics" and method == "GET":
            await self._send_text(
                writer, 200, self.render_metrics(),
                content_type=OPENMETRICS_CONTENT_TYPE,
            )
            return
        if path == "/v1/status" and method == "GET":
            await self._send_json(writer, 200, self.status())
            return
        if path == "/v1/shutdown" and method == "POST":
            await self._send_json(writer, 200, {"state": "draining"})
            asyncio.ensure_future(self.shutdown())
            return
        if path == "/v1/jobs" and method == "POST":
            await self._post_job(headers, body, writer)
            return
        if path == "/v1/jobs" and method == "GET":
            jobs = sorted(self.jobs.values(), key=lambda j: j.submitted_at)
            await self._send_json(
                writer, 200, {"jobs": [j.to_record() for j in jobs]}
            )
            return
        if path.startswith("/v1/jobs/"):
            await self._job_route(method, path, writer)
            return
        await self._send_json(writer, 404, {"error": f"no such path {path}"})

    async def _post_job(self, headers: Dict[str, str], body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        identity = self._tenant_for(headers)
        if identity is None:
            await self._send_json(
                writer, 401, {"error": "unknown or missing bearer token"}
            )
            return
        if self._closing:
            await self._send_json(
                writer, 503, {"error": "service is shutting down"}
            )
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._send_json(
                writer, 400, {"error": f"request body is not JSON: {exc}"}
            )
            return
        document = payload.get("spec", payload) \
            if isinstance(payload, dict) else payload
        trace_header = headers.get("x-pckpt-trace")
        trace: Optional[TraceContext] = None
        if trace_header:
            try:
                trace = parse_trace_header(trace_header)
            except ValueError as exc:
                await self._send_json(writer, 400, {"error": str(exc)})
                return
        try:
            spec = spec_from_dict(document)
        except SpecError as exc:
            await self._send_json(
                writer, 400,
                {"error": "invalid spec", "problems": exc.problems},
            )
            return
        tenant, weight = identity
        try:
            job, deduped = self.submit(spec, tenant, weight, trace=trace)
        except QueueFull as exc:
            await self._send_json(
                writer, 429,
                {"error": str(exc), "retry_after": exc.retry_after},
                extra_headers={
                    "Retry-After": str(int(max(exc.retry_after, 1)))
                },
            )
            return
        except RuntimeError as exc:
            await self._send_json(writer, 503, {"error": str(exc)})
            return
        await self._send_json(
            writer, 200 if deduped else 201,
            {"job": job.to_record(), "deduped": deduped},
        )

    async def _job_route(self, method: str, path: str,
                         writer: asyncio.StreamWriter) -> None:
        parts = path.strip("/").split("/")   # v1 jobs <id> [sub]
        job = self.jobs.get(parts[2]) if len(parts) >= 3 else None
        if job is None:
            await self._send_json(writer, 404, {"error": "no such job"})
            return
        sub = parts[3] if len(parts) == 4 else None
        if method != "GET" or len(parts) > 4:
            await self._send_json(writer, 405, {"error": "method not allowed"})
            return
        if sub is None:
            await self._send_json(writer, 200, job.to_record())
        elif sub == "events":
            await self._stream_events(job, writer)
        elif sub == "result":
            if job.state == "done":
                await self._send_json(writer, 200, job.result_payload())
            elif job.state == "failed":
                await self._send_json(
                    writer, 409,
                    {"error": f"job failed: {job.error}", "state": job.state},
                )
            else:
                await self._send_json(
                    writer, 409,
                    {"error": "job not finished", "state": job.state},
                )
        else:
            await self._send_json(writer, 404, {"error": f"no such view {sub}"})

    async def _stream_events(self, job: Job,
                             writer: asyncio.StreamWriter) -> None:
        """NDJSON: replay history, then follow live until terminal."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\nConnection: close\r\n\r\n"
        )
        sent = 0
        while True:
            while sent < len(job.events):
                line = json.dumps(job.events[sent], sort_keys=True)
                writer.write(line.encode("utf-8") + b"\n")
                sent += 1
            await writer.drain()
            if job.terminal and sent == len(job.events):
                return
            turnstile = job.turnstile
            await turnstile.wait()

    # -- response helpers ----------------------------------------------------
    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: Dict[str, Any],
                         extra_headers: Optional[Dict[str, str]] = None
                         ) -> None:
        await self._send_text(
            writer, status, json.dumps(payload, sort_keys=True) + "\n",
            content_type="application/json", extra_headers=extra_headers,
        )

    async def _send_text(self, writer: asyncio.StreamWriter, status: int,
                         text: str, content_type: str = "text/plain",
                         extra_headers: Optional[Dict[str, str]] = None
                         ) -> None:
        body = text.encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()


class ServiceThread:
    """A service on a background thread — tests and the load generator.

    Usage::

        with ServiceThread(store_dir, jobs=4) as svc:
            client = ServiceClient(port=svc.port)
            ...

    The context manager waits for the socket to bind on entry (an
    ephemeral port by default) and performs a full graceful shutdown on
    exit.
    """

    def __init__(self, store: Union[str, Path], host: str = "127.0.0.1",
                 port: int = 0, **kwargs: Any) -> None:
        import threading

        self.service = PckptService(store, **kwargs)
        self._host = host
        self._port = port
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="pckpt-serve", daemon=True
        )

    @property
    def host(self) -> str:
        return self.service.host or self._host

    @property
    def port(self) -> int:
        assert self.service.port is not None, "service not started"
        return self.service.port

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures to start()
            self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        await self.service.start(self._host, self._port)
        self._ready.set()
        await self.service._stopped.wait()

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait(30)
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        if self.service.port is None:
            raise RuntimeError("service did not bind within 30s")
        return self

    def stop(self, timeout: float = 120.0) -> None:
        loop = self.service._loop
        if loop is not None and not self.service._stopped.is_set():
            try:
                loop.call_soon_threadsafe(
                    lambda: asyncio.ensure_future(self.service.shutdown())
                )
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)
        if self._error is not None:
            raise RuntimeError("service thread crashed") from self._error

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve(store: Union[str, Path], host: str = "127.0.0.1",
          port: int = DEFAULT_PORT, jobs: int = 2, queue_limit: int = 64,
          tokens: Optional[Dict[str, Tuple[str, int]]] = None,
          retry_after: float = 2.0,
          slo: Optional[SLOObjectives] = None,
          slo_window: float = DEFAULT_WINDOW_SECONDS,
          ready: Optional[Any] = None) -> PckptService:
    """Run a service until SIGINT/SIGTERM or ``POST /v1/shutdown``.

    Blocking, single-command entry point behind ``pckpt serve``.
    *ready*, if given, is called with the service once the socket is
    bound (tests use it to learn the ephemeral port).  Returns the
    (stopped) service.
    """
    import signal

    service = PckptService(store, jobs=jobs, queue_limit=queue_limit,
                           tokens=tokens, retry_after=retry_after,
                           slo=slo, slo_window=slo_window)

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(service.shutdown())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread / platform without signal support
        await service.start(host, port)
        if ready is not None:
            ready(service)
        await service._stopped.wait()

    asyncio.run(_main())
    return service
