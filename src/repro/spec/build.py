"""From spec to cells: resolution, grid construction, execution.

This module is the **single place** the (application × model ×
sweep-axis) grid is turned into :class:`repro.campaign.plan.CellSpec`
objects.  Both consumers converge here:

* the declarative path — an :class:`~repro.spec.schema.ExperimentSpec`
  is :func:`resolve`-d into concrete simulation objects and then
  :func:`build_cells` lays out the grid;
* the programmatic path — the sweep engines in
  :mod:`repro.experiments.sweep` construct a :class:`ResolvedExperiment`
  directly from their kwargs (which may carry arbitrary objects a JSON
  document could not name) and call the same :func:`build_cells`.

Because both paths produce identical ``CellSpec`` objects, the
content-addressed cache keys
(:func:`repro.campaign.plan.content_key`) are identical too: a campaign
launched from a spec file hits exactly the store entries a kwargs-driven
invocation wrote, and vice versa.  That is the compatibility path that
keeps every pre-spec store reachable — the parity test in
``tests/test_spec.py`` pins it down.

Grid layout (matching the historical sweep engines exactly):

* no sweep axis — cells keyed ``(model_name, app_name)``; apps outer,
  models inner;
* a sweep axis — one app; cells keyed ``(model_name, value)``; values
  outer, models inner; each value derives a per-column predictor from
  the reference predictor (``with_lead_change`` /
  ``with_false_negative_rate``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..failures.leadtime import (
    PAPER_LEAD_TIME_MODEL,
    FailureSequenceSpec,
    LeadTimeModel,
)
from ..failures.predictor import PredictorSpec
from ..failures.weibull import FAILURE_DISTRIBUTIONS, WeibullParams
from ..models.base import ModelConfig
from ..models.registry import get_model
from ..platform.system import SUMMIT, PlatformSpec
from ..workloads.applications import APPLICATIONS, ApplicationSpec
from .schema import ExperimentSpec, SweepAxis

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..campaign.plan import CellSpec
    from ..campaign.progress import CampaignProgress
    from ..campaign.store import ResultStore
    from ..experiments.runner import SimulationResult

__all__ = [
    "ResolvedExperiment",
    "resolve",
    "build_cells",
    "build_oci_cells",
    "build_breakeven_cells",
    "build_sched_cells",
    "cell_keys",
    "run_spec",
    "run_resolved",
]


@dataclass(frozen=True)
class ResolvedExperiment:
    """An experiment grid with every reference resolved to real objects.

    The object-level twin of :class:`~repro.spec.schema.ExperimentSpec`:
    what :func:`build_cells` consumes.  Sweep engines construct it
    directly when their kwargs carry objects a JSON document could not
    express (a custom :class:`PlatformSpec`, an ad-hoc
    :class:`ModelConfig`); :func:`resolve` constructs it from a spec.
    """

    apps: Tuple[ApplicationSpec, ...]
    models: Tuple[ModelConfig, ...]
    platform: PlatformSpec
    weibull: WeibullParams
    lead_model: LeadTimeModel
    predictor: PredictorSpec
    sweep: Optional[SweepAxis] = None
    replications: int = 30
    seed: int = 2022
    collect_metrics: bool = False


def _with_base(models: Sequence[Union[str, ModelConfig]],
               include_base: bool) -> List[Union[str, ModelConfig]]:
    """Prepend the baseline model "B" when missing (and requested)."""
    names = [m if isinstance(m, str) else m.name for m in models]
    work: List[Union[str, ModelConfig]] = list(models)
    if include_base and "B" not in names:
        work.insert(0, "B")
    return work


def _resolve_models(models: Sequence[Union[str, ModelConfig]],
                    include_base: bool) -> Tuple[ModelConfig, ...]:
    return tuple(
        get_model(m) if isinstance(m, str) else m
        for m in _with_base(models, include_base)
    )


def resolve(spec: ExperimentSpec) -> ResolvedExperiment:
    """Resolve every named reference of *spec* into simulation objects.

    The spec is assumed valid (the loader guarantees it); resolution is
    purely mechanical — names → catalogue objects, overrides applied,
    the base model prepended per ``include_base``.
    """
    import dataclasses as _dc

    apps = tuple(APPLICATIONS[a] for a in spec.apps)
    models = _resolve_models(spec.models, spec.include_base)

    platform = SUMMIT
    overrides = {
        k: v
        for k, v in (("total_nodes", spec.platform.total_nodes),
                     ("restart_delay", spec.platform.restart_delay),
                     ("lm_slowdown", spec.platform.lm_slowdown))
        if v is not None
    }
    if overrides:
        platform = _dc.replace(platform, **overrides)

    if spec.failures.base is not None:
        weibull = FAILURE_DISTRIBUTIONS[spec.failures.base]
    else:
        weibull = WeibullParams(
            name=spec.failures.name,
            shape=spec.failures.shape,
            scale_hours=spec.failures.scale_hours,
            system_nodes=spec.failures.system_nodes,
        )

    predictor = PredictorSpec(
        recall=spec.predictor.recall,
        false_positive_rate=spec.predictor.false_positive_rate,
        detection_latency=spec.predictor.detection_latency,
        lead_scale=spec.predictor.lead_scale,
    )

    if isinstance(spec.lead_model, str):
        lead_model = PAPER_LEAD_TIME_MODEL
    else:
        lead_model = LeadTimeModel(tuple(
            FailureSequenceSpec(
                sequence_id=s.sequence_id,
                occurrences=s.occurrences,
                mean_lead=s.mean_lead,
                sd_lead=s.sd_lead,
            )
            for s in spec.lead_model
        ))

    return ResolvedExperiment(
        apps=apps,
        models=models,
        platform=platform,
        weibull=weibull,
        lead_model=lead_model,
        predictor=predictor,
        sweep=spec.sweep,
        replications=spec.replications,
        seed=spec.seed,
        collect_metrics=spec.collect_metrics,
    )


def _axis_predictor(axis: str, value: float,
                    reference: PredictorSpec) -> PredictorSpec:
    """The per-column predictor a sweep-axis value derives."""
    if axis == "lead-change-percent":
        return reference.with_lead_change(value)
    if axis == "fn-rate":
        return reference.with_false_negative_rate(value)
    raise ValueError(f"unknown sweep axis {axis!r}")


def build_cells(experiment: Union[ExperimentSpec, ResolvedExperiment],
                ) -> "List[CellSpec]":
    """Lay the grid out as campaign cells, in presentation order.

    Accepts a validated spec (resolved on the fly) or an already
    resolved experiment.  Cell keys are ``(model_name, column)`` where
    the column is the app name (no sweep) or the axis value (sweep).
    """
    from ..campaign.plan import CellSpec  # deferred: campaign ⇄ experiments

    if isinstance(experiment, ExperimentSpec):
        if experiment.sched is not None:
            return build_sched_cells(experiment)
        experiment = resolve(experiment)

    grid: List[tuple] = []
    if experiment.sweep is None:
        for app in experiment.apps:
            for model in experiment.models:
                grid.append((app.name, app, model, experiment.predictor))
    else:
        if len(experiment.apps) != 1:
            raise ValueError(
                f"a swept experiment needs exactly one app, "
                f"got {len(experiment.apps)}"
            )
        app = experiment.apps[0]
        for value in experiment.sweep.values:
            predictor = _axis_predictor(
                experiment.sweep.axis, value, experiment.predictor
            )
            for model in experiment.models:
                grid.append((value, app, model, predictor))

    return [
        CellSpec(
            key=(model.name, column),
            app=app,
            model=model,
            platform=experiment.platform,
            weibull=experiment.weibull,
            lead_model=experiment.lead_model,
            predictor=predictor,
            seed=experiment.seed,
            replications=experiment.replications,
            collect_metrics=experiment.collect_metrics,
        )
        for column, app, model, predictor in grid
    ]


def build_oci_cells(experiment: Union[ExperimentSpec, ResolvedExperiment],
                    ) -> "List":
    """Closed-form OCI cells for every application of *experiment*.

    One analytical cell per app, keyed ``("young-oci", app_name)``, with
    the Eq. (1) inputs derived exactly as the simulator derives them
    (BB write time of the app's per-node checkpoint, per-node failure
    rate of the experiment's distribution).  Evaluated via the campaign
    scheduler these run zero DES replications — the vectorized fast
    path of :mod:`repro.analysis.sweeps`.
    """
    from ..campaign.plan import AnalyticalCellSpec

    if isinstance(experiment, ExperimentSpec):
        experiment = resolve(experiment)
    bb = experiment.platform.node.burst_buffer
    rate = experiment.weibull.per_node_rate()
    return [
        AnalyticalCellSpec(
            key=("young-oci", app.name),
            kind="young-oci",
            params={
                "t_ckpt_bb": bb.write_time(app.checkpoint_bytes_per_node),
                "per_node_rate": rate,
                "nodes": float(app.nodes),
            },
        )
        for app in experiment.apps
    ]


def build_sched_cells(spec: ExperimentSpec) -> "List":
    """Batch-queue cells for a sched spec, keyed ``("sched", policy)``.

    The workload is synthesized **once** — every policy cell schedules
    the identical job tuple, so differences between cells are purely the
    placement discipline.  A ``sched-policy`` sweep yields one cell per
    policy value; without a sweep the single cell runs ``sched.policy``.
    """
    from ..campaign.plan import SchedCellSpec
    from ..sched.workload import poisson_workload, trace_workload

    if spec.sched is None:
        raise ValueError("build_sched_cells needs a spec with a sched block")
    resolved = resolve(spec)
    model_names = tuple(m.name for m in resolved.models)
    sched = spec.sched
    if isinstance(sched.arrival, str):
        workload = poisson_workload(
            spec.apps, model_names, sched.jobs, seed=spec.seed,
            interarrival_seconds=sched.interarrival_seconds,
            users=sched.users, hours_scale=sched.hours_scale,
            max_nodes=resolved.platform.total_nodes,
        )
    else:
        entries = []
        for e in sched.arrival:
            entry = {"app": e.app, "at": e.at}
            if e.model is not None:
                entry["model"] = e.model
            if e.user is not None:
                entry["user"] = e.user
            if e.nodes is not None:
                entry["nodes"] = e.nodes
            entries.append(entry)
        workload = trace_workload(
            entries, model_names, users=sched.users,
            hours_scale=sched.hours_scale,
            max_nodes=resolved.platform.total_nodes,
        )
    policies = (
        tuple(spec.sweep.values) if spec.sweep is not None
        else (sched.policy,)
    )
    return [
        SchedCellSpec(
            key=("sched", policy),
            workload=workload,
            policy=policy,
            platform=resolved.platform,
            weibull=resolved.weibull,
            lead_model=resolved.lead_model,
            predictor=resolved.predictor,
            seed=spec.seed,
            replications=spec.replications,
            drain_lanes=sched.drain_lanes,
            background_load=sched.background_load,
            collect_metrics=spec.collect_metrics,
        )
        for policy in policies
    ]


def build_breakeven_cells(sigmas: Sequence[float]) -> "List":
    """Break-even cells for a σ sweep, keyed ``("breakeven", σ)``.

    Each cell evaluates the published Eq. (8) bound and its exact
    counterpart for one σ; the campaign scheduler computes the whole
    sweep in a single vectorized pass (Fig. 8's analytical companion).
    """
    from ..campaign.plan import AnalyticalCellSpec

    return [
        AnalyticalCellSpec(
            key=("breakeven", float(sigma)),
            kind="breakeven",
            params={"sigma": float(sigma)},
        )
        for sigma in sigmas
    ]


def cell_keys(experiment: Union[ExperimentSpec, ResolvedExperiment],
              ) -> List[str]:
    """The content-addressed store key of every cell, in grid order.

    These are exactly the keys a kwargs-driven campaign produces for the
    equivalent configuration — the explicit compatibility path that
    keeps pre-spec store entries reachable.
    """
    from ..campaign.plan import content_key

    return [content_key(cell) for cell in build_cells(experiment)]


def run_resolved(
    experiment: ResolvedExperiment,
    store: "Optional[ResultStore]" = None,
    workers: Optional[int] = None,
    progress: "Optional[CampaignProgress]" = None,
    resume: bool = True,
) -> "Dict[tuple, SimulationResult]":
    """Execute a resolved experiment through the campaign scheduler.

    Returns ``{(model_name, column): SimulationResult}`` in grid order —
    the same shape every sweep engine has always returned.
    """
    from ..campaign.scheduler import run_campaign  # deferred: import cycle

    return run_campaign(build_cells(experiment), store=store,
                        workers=workers, progress=progress, resume=resume)


def run_spec(
    spec: ExperimentSpec,
    store: "Optional[ResultStore]" = None,
    workers: Optional[int] = None,
    progress: "Optional[CampaignProgress]" = None,
    resume: bool = True,
) -> "Dict[tuple, SimulationResult]":
    """Execute a validated spec end to end (resolve → cells → campaign).

    A spec with a ``sched`` block builds batch-queue cells
    (:func:`build_sched_cells`) instead of the (app × model) grid; the
    campaign machinery — store, workers, resume — is identical.
    """
    if spec.sched is not None:
        from ..campaign.scheduler import run_campaign  # deferred cycle

        return run_campaign(build_sched_cells(spec), store=store,
                            workers=workers, progress=progress,
                            resume=resume)
    return run_resolved(resolve(spec), store=store, workers=workers,
                        progress=progress, resume=resume)
