"""Validating loader and canonical serialization for ``ExperimentSpec``.

The loader follows the package's validate-all-then-apply convention
(:meth:`repro.des.metrics.MetricsRegistry.merge` sets the style): every
problem in a document — unknown fields, missing required fields, type
mismatches, unresolvable names, illegal values — is collected and
reported in **one** :class:`SpecError`, so a user fixes a broken spec
file in one round trip instead of one error at a time.  Nothing is
constructed until the document is fully clean.

Canonical form
--------------
:func:`spec_from_dict` expands every shorthand (``"apps": "all"``,
``"platform": "summit"``, ``"failures": "titan"``) and materializes
every default; :func:`spec_to_dict` renders that canonical form back as
plain JSON data.  The round trip is idempotent::

    spec_from_dict(spec_to_dict(spec)) == spec

and :func:`spec_hash` — the SHA-256 of the compact canonical JSON — is
therefore stable across loads, machines and processes.  The spec hash
identifies the *document*; the per-cell cache keys derived by
:func:`repro.spec.build.build_cells` identify the *computations* (see
``docs/EXPERIMENT_SPEC.md``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..failures.weibull import FAILURE_DISTRIBUTIONS
from ..models.registry import get_model
from ..workloads.applications import APPLICATION_ORDER, APPLICATIONS
from .schema import (
    FAILURES_FIELDS,
    PLATFORM_FIELDS,
    PREDICTOR_FIELDS,
    SCHED_FIELDS,
    SCHED_JOB_FIELDS,
    SEQUENCE_FIELDS,
    SPEC_FIELDS,
    SPEC_SCHEMA_VERSION,
    SWEEP_AXES,
    SWEEP_FIELDS,
    ExperimentSpec,
    FailureRef,
    PlatformRef,
    PredictorRef,
    SchedJobRef,
    SchedRef,
    SequenceRef,
    SweepAxis,
)

__all__ = [
    "SpecError",
    "spec_from_dict",
    "spec_to_dict",
    "load_spec",
    "loads_spec",
    "dump_spec",
    "canonical_spec_json",
    "spec_hash",
]

#: Named platforms a ``PlatformRef.base`` may reference.
_PLATFORM_BASES = ("summit",)


class SpecError(ValueError):
    """A spec document failed validation.

    Attributes
    ----------
    problems:
        Every violation found, in document order — the loader validates
        the whole document before rejecting it, mirroring the
        ``MetricsRegistry.merge`` validate-all-then-apply convention.
    """

    def __init__(self, problems: List[str]) -> None:
        self.problems = list(problems)
        super().__init__(
            "invalid experiment spec: " + "; ".join(self.problems)
        )


def _type_ok(tag: str, value: Any) -> bool:
    """Whether *value* matches a ``*_FIELDS`` type tag."""
    if tag == "str":
        return isinstance(value, str)
    if tag == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if tag == "float":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if tag == "bool":
        return isinstance(value, bool)
    if tag == "list":
        return isinstance(value, list)
    if tag == "object":
        return isinstance(value, dict)
    if tag == "list_or_str":
        return isinstance(value, (list, str))
    if tag == "str_or_object":
        return isinstance(value, (str, dict))
    if tag == "str_or_list":
        return isinstance(value, (str, list))
    if tag == "object_or_null":
        return value is None or isinstance(value, dict)
    raise AssertionError(f"unknown type tag {tag!r}")


def _check_fields(data: Dict[str, Any], fields: Dict[str, Tuple[str, bool]],
                  where: str, problems: List[str]) -> bool:
    """Structural pass: unknown keys, missing required keys, type tags.

    Returns True when the structure is clean enough for the value-level
    pass to proceed on this (sub-)object.
    """
    ok = True
    for key in sorted(set(data) - set(fields)):
        problems.append(f"{where}: unknown field {key!r}")
        ok = False
    for key, (tag, required) in fields.items():
        if key not in data:
            if required:
                problems.append(f"{where}: missing required field {key!r}")
                ok = False
            continue
        if not _type_ok(tag, data[key]):
            problems.append(
                f"{where}: field {key!r} must be {tag}, "
                f"got {type(data[key]).__name__}"
            )
            ok = False
    return ok


def _parse_platform(value: Any, problems: List[str]) -> PlatformRef:
    if isinstance(value, str):
        value = {"base": value}
    if not _check_fields(value, PLATFORM_FIELDS, "platform", problems):
        return PlatformRef()
    base = value["base"]
    if base not in _PLATFORM_BASES:
        problems.append(
            f"platform: unknown base {base!r} "
            f"(expected one of {sorted(_PLATFORM_BASES)})"
        )
    for key in ("restart_delay", "lm_slowdown"):
        v = value.get(key)
        if v is not None and v < 0:
            problems.append(f"platform: {key} must be non-negative, got {v}")
    lm = value.get("lm_slowdown")
    if lm is not None and lm >= 1.0:
        problems.append(f"platform: lm_slowdown must be < 1, got {lm}")
    nodes = value.get("total_nodes")
    if nodes is not None and (isinstance(nodes, bool) or nodes < 1):
        problems.append(f"platform: total_nodes must be >= 1, got {nodes}")
    return PlatformRef(
        base=base,
        total_nodes=None if nodes is None else int(nodes),
        restart_delay=_as_float(value.get("restart_delay")),
        lm_slowdown=_as_float(value.get("lm_slowdown")),
    )


def _parse_failures(value: Any, problems: List[str]) -> FailureRef:
    if isinstance(value, str):
        value = {"base": value}
    if not _check_fields(value, FAILURES_FIELDS, "failures", problems):
        return FailureRef(base="titan")
    inline_keys = ("name", "shape", "scale_hours", "system_nodes")
    has_inline = [k for k in inline_keys if value.get(k) is not None]
    if value.get("base") is not None:
        if has_inline:
            problems.append(
                "failures: give either a named 'base' or a full inline "
                f"fit, not both (inline keys present: {has_inline})"
            )
        base = value["base"]
        if base not in FAILURE_DISTRIBUTIONS:
            problems.append(
                f"failures: unknown distribution {base!r} "
                f"(expected one of {sorted(FAILURE_DISTRIBUTIONS)})"
            )
        return FailureRef(base=base)
    missing = [k for k in inline_keys if value.get(k) is None]
    if missing:
        problems.append(
            "failures: an inline fit needs every one of "
            f"{list(inline_keys)} (missing: {missing})"
        )
        return FailureRef(base="titan")
    if value["shape"] <= 0:
        problems.append("failures: shape must be positive")
    if value["scale_hours"] <= 0:
        problems.append("failures: scale_hours must be positive")
    if value["system_nodes"] < 1:
        problems.append("failures: system_nodes must be >= 1")
    return FailureRef(
        name=value["name"],
        shape=_as_float(value["shape"]),
        scale_hours=_as_float(value["scale_hours"]),
        system_nodes=value["system_nodes"],
    )


def _parse_predictor(value: Dict[str, Any],
                     problems: List[str]) -> PredictorRef:
    if not _check_fields(value, PREDICTOR_FIELDS, "predictor", problems):
        return PredictorRef()
    defaults = PredictorRef()
    recall = _as_float(value.get("recall", defaults.recall))
    fp = _as_float(value.get("false_positive_rate",
                             defaults.false_positive_rate))
    latency = _as_float(value.get("detection_latency",
                                  defaults.detection_latency))
    lead_scale = _as_float(value.get("lead_scale", defaults.lead_scale))
    if not (0.0 <= recall <= 1.0):
        problems.append(f"predictor: recall must be in [0, 1], got {recall}")
    if not (0.0 <= fp < 1.0):
        problems.append(
            f"predictor: false_positive_rate must be in [0, 1), got {fp}"
        )
    if latency < 0:
        problems.append("predictor: detection_latency must be non-negative")
    if lead_scale <= 0:
        problems.append("predictor: lead_scale must be positive")
    return PredictorRef(recall=recall, false_positive_rate=fp,
                        detection_latency=latency, lead_scale=lead_scale)


def _parse_lead_model(value: Any, problems: List[str]):
    if isinstance(value, str):
        if value != "paper":
            problems.append(
                f"lead_model: unknown named model {value!r} "
                "(expected 'paper' or an inline sequence list)"
            )
        return "paper"
    sequences: List[SequenceRef] = []
    if not value:
        problems.append("lead_model: an inline sequence list cannot be empty")
        return "paper"
    for i, entry in enumerate(value):
        where = f"lead_model[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: must be an object")
            continue
        if not _check_fields(entry, SEQUENCE_FIELDS, where, problems):
            continue
        if entry["occurrences"] < 1:
            problems.append(f"{where}: occurrences must be >= 1")
        if entry["mean_lead"] <= 0:
            problems.append(f"{where}: mean_lead must be positive")
        if entry["sd_lead"] <= 0:
            problems.append(f"{where}: sd_lead must be positive")
        sequences.append(SequenceRef(
            sequence_id=entry["sequence_id"],
            occurrences=entry["occurrences"],
            mean_lead=_as_float(entry["mean_lead"]),
            sd_lead=_as_float(entry["sd_lead"]),
        ))
    return tuple(sequences)


def _parse_sched(value: Optional[Dict[str, Any]],
                 problems: List[str]) -> Optional[SchedRef]:
    if value is None:
        return None
    if not _check_fields(value, SCHED_FIELDS, "sched", problems):
        return SchedRef()
    from ..sched.jobs import POLICY_NAMES

    defaults = SchedRef()
    policy = value.get("policy", defaults.policy)
    if policy not in POLICY_NAMES:
        problems.append(
            f"sched: unknown policy {policy!r} "
            f"(expected one of {list(POLICY_NAMES)})"
        )
    jobs = value.get("jobs", defaults.jobs)
    if isinstance(jobs, int) and jobs < 1:
        problems.append(f"sched: jobs must be >= 1, got {jobs}")
    interarrival = _as_float(value.get("interarrival_seconds",
                                       defaults.interarrival_seconds))
    if interarrival is not None and interarrival <= 0:
        problems.append("sched: interarrival_seconds must be positive")
    users = value.get("users", defaults.users)
    if isinstance(users, int) and users < 1:
        problems.append(f"sched: users must be >= 1, got {users}")
    hours_scale = _as_float(value.get("hours_scale", defaults.hours_scale))
    if hours_scale is not None and hours_scale <= 0:
        problems.append("sched: hours_scale must be positive")
    lanes = value.get("drain_lanes", defaults.drain_lanes)
    if isinstance(lanes, int) and lanes < 1:
        problems.append(f"sched: drain_lanes must be >= 1, got {lanes}")
    load = _as_float(value.get("background_load", defaults.background_load))
    if load is not None and not (0.0 <= load < 1.0):
        problems.append(
            f"sched: background_load must be in [0, 1), got {load}"
        )

    arrival_raw = value.get("arrival", "poisson")
    arrival: object = "poisson"
    if isinstance(arrival_raw, str):
        if arrival_raw != "poisson":
            problems.append(
                f"sched: unknown arrival {arrival_raw!r} (expected "
                "'poisson' or an inline trace list)"
            )
    elif isinstance(arrival_raw, list):
        if not arrival_raw:
            problems.append("sched: an inline arrival trace cannot be empty")
        entries: List[SchedJobRef] = []
        for i, entry in enumerate(arrival_raw):
            where = f"sched.arrival[{i}]"
            if not isinstance(entry, dict):
                problems.append(f"{where}: must be an object")
                continue
            if not _check_fields(entry, SCHED_JOB_FIELDS, where, problems):
                continue
            app = str(entry["app"]).upper()
            if app not in APPLICATIONS:
                problems.append(
                    f"{where}: unknown application {entry['app']!r}"
                )
            if entry["at"] < 0:
                problems.append(f"{where}: at must be non-negative")
            nodes = entry.get("nodes")
            if nodes is not None and nodes < 1:
                problems.append(f"{where}: nodes must be >= 1")
            model = entry.get("model")
            if model is not None:
                try:
                    get_model(model)
                except KeyError as exc:
                    problems.append(f"{where}: {exc.args[0]}")
            entries.append(SchedJobRef(
                app=app,
                at=_as_float(entry["at"]),
                model=model,
                user=entry.get("user"),
                nodes=nodes,
            ))
        arrival = tuple(entries)
    return SchedRef(
        policy=policy,
        jobs=jobs,
        arrival=arrival,
        interarrival_seconds=interarrival,
        users=users,
        hours_scale=hours_scale,
        drain_lanes=lanes,
        background_load=load,
    )


def _parse_sweep(value: Optional[Dict[str, Any]], n_apps: int,
                 problems: List[str],
                 has_sched: bool = False) -> Optional[SweepAxis]:
    if value is None:
        return None
    if not _check_fields(value, SWEEP_FIELDS, "sweep", problems):
        return None
    axis = value["axis"]
    if axis not in SWEEP_AXES:
        problems.append(
            f"sweep: unknown axis {axis!r} (expected one of {list(SWEEP_AXES)})"
        )
    values = value["values"]
    if not values:
        problems.append("sweep: values cannot be empty")
    if axis == "sched-policy":
        from ..sched.jobs import POLICY_NAMES

        if not has_sched:
            problems.append(
                "sweep: the sched-policy axis requires a 'sched' block"
            )
        bad = [v for v in values
               if not isinstance(v, str) or v not in POLICY_NAMES]
        if bad:
            problems.append(
                f"sweep: sched-policy values must be policy names "
                f"({list(POLICY_NAMES)}), got {bad}"
            )
        if len(set(values)) != len(values):
            problems.append("sweep: sched-policy values must be distinct")
        return SweepAxis(axis=axis, values=tuple(
            v for v in values if isinstance(v, str)
        ))
    if has_sched:
        problems.append(
            f"sweep: a sched spec can only sweep sched-policy, got {axis!r}"
        )
    bad = [v for v in values
           if not isinstance(v, (int, float)) or isinstance(v, bool)]
    if bad:
        problems.append(f"sweep: values must be numbers, got {bad}")
        values = [v for v in values if v not in bad]
    if axis == "fn-rate":
        out_of_range = [v for v in values
                        if isinstance(v, (int, float))
                        and not isinstance(v, bool)
                        and not (0.0 <= v <= 1.0)]
        if out_of_range:
            problems.append(
                f"sweep: fn-rate values must be in [0, 1], got {out_of_range}"
            )
    if axis == "lead-change-percent":
        too_low = [v for v in values
                   if isinstance(v, (int, float))
                   and not isinstance(v, bool) and v <= -100]
        if too_low:
            problems.append(
                "sweep: lead-change-percent values must be > -100 "
                f"(the scale must stay positive), got {too_low}"
            )
    if n_apps != 1:
        problems.append(
            f"sweep: a swept spec needs exactly one app, got {n_apps}"
        )
    return SweepAxis(axis=axis, values=tuple(_as_float(v) for v in values
                                             if isinstance(v, (int, float))
                                             and not isinstance(v, bool)))


def _as_float(value):
    """JSON ints standing in for floats become floats (None passes)."""
    return None if value is None else float(value)


def spec_from_dict(data: Dict[str, Any]) -> ExperimentSpec:
    """Validate *data* and build the canonical :class:`ExperimentSpec`.

    Raises
    ------
    SpecError
        Carrying **every** problem found — unknown fields, missing
        required fields, type mismatches, unresolvable names, and
        illegal values are all collected before anything is rejected.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        raise SpecError([f"spec must be a JSON object, got "
                         f"{type(data).__name__}"])
    _check_fields(data, SPEC_FIELDS, "spec", problems)

    version = data.get("schema_version")
    if isinstance(version, int) and version != SPEC_SCHEMA_VERSION:
        problems.append(
            f"spec: schema_version is {version}, this code reads "
            f"{SPEC_SCHEMA_VERSION}"
        )

    # -- apps --------------------------------------------------------------
    apps_raw = data.get("apps")
    apps: Tuple[str, ...] = ()
    if isinstance(apps_raw, str):
        if apps_raw == "all":
            apps = APPLICATION_ORDER
        else:
            problems.append(
                f"apps: unknown shorthand {apps_raw!r} (only 'all' is "
                "a legal string value)"
            )
    elif isinstance(apps_raw, list):
        if not apps_raw:
            problems.append("apps: cannot be empty")
        for a in apps_raw:
            if not isinstance(a, str):
                problems.append(f"apps: entries must be strings, got {a!r}")
            elif a.upper() not in APPLICATIONS:
                problems.append(
                    f"apps: unknown application {a!r} "
                    f"(expected one of {list(APPLICATION_ORDER)})"
                )
        apps = tuple(a.upper() for a in apps_raw if isinstance(a, str))

    # -- models ------------------------------------------------------------
    models_raw = data.get("models")
    models: Tuple[str, ...] = ()
    if isinstance(models_raw, list):
        if not models_raw:
            problems.append("models: cannot be empty")
        for m in models_raw:
            if not isinstance(m, str):
                problems.append(f"models: entries must be strings, got {m!r}")
                continue
            try:
                get_model(m)
            except KeyError as exc:
                problems.append(f"models: {exc.args[0]}")
        models = tuple(m for m in models_raw if isinstance(m, str))

    # -- scalar fields -----------------------------------------------------
    name = data.get("name")
    include_base = data.get("include_base", True)
    replications = data.get("replications", 30)
    seed = data.get("seed", 2022)
    collect_metrics = data.get("collect_metrics", False)
    if isinstance(replications, int) and not isinstance(replications, bool) \
            and replications < 1:
        problems.append(f"replications: must be >= 1, got {replications}")

    # -- sub-objects -------------------------------------------------------
    platform = _parse_platform(data.get("platform", "summit"), problems)
    failures = _parse_failures(data.get("failures", "titan"), problems)
    predictor = _parse_predictor(data.get("predictor", {}), problems)
    lead_model = _parse_lead_model(data.get("lead_model", "paper"), problems)
    sched = _parse_sched(data.get("sched"), problems)
    sweep = _parse_sweep(data.get("sweep"), len(apps), problems,
                         has_sched=sched is not None)

    if problems:
        raise SpecError(problems)
    return ExperimentSpec(
        schema_version=SPEC_SCHEMA_VERSION,
        name=name,
        apps=apps,
        models=models,
        include_base=bool(include_base),
        platform=platform,
        failures=failures,
        predictor=predictor,
        lead_model=lead_model,
        sweep=sweep,
        sched=sched,
        replications=replications,
        seed=seed,
        collect_metrics=bool(collect_metrics),
    )


def _ref_to_dict(ref) -> Dict[str, Any]:
    """Dataclass reference → plain dict, dropping ``None`` overrides."""
    out = {}
    for f in dataclasses.fields(ref):
        value = getattr(ref, f.name)
        if value is not None:
            out[f.name] = value
    return out


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, Any]:
    """The spec's canonical JSON-ready form (defaults materialized).

    ``spec_from_dict(spec_to_dict(spec)) == spec`` for every valid spec —
    the idempotence the round-trip tests pin down.
    """
    data: Dict[str, Any] = {
        "schema_version": spec.schema_version,
        "apps": list(spec.apps),
        "models": list(spec.models),
        "include_base": spec.include_base,
        "platform": _ref_to_dict(spec.platform),
        "failures": _ref_to_dict(spec.failures),
        "predictor": _ref_to_dict(spec.predictor),
        "lead_model": (
            spec.lead_model if isinstance(spec.lead_model, str)
            else [_ref_to_dict(s) for s in spec.lead_model]
        ),
        "sweep": (
            None if spec.sweep is None
            else {"axis": spec.sweep.axis, "values": list(spec.sweep.values)}
        ),
        "replications": spec.replications,
        "seed": spec.seed,
        "collect_metrics": spec.collect_metrics,
    }
    if spec.name is not None:
        data["name"] = spec.name
    if spec.sched is not None:
        # Emitted only when present so pre-sched documents (and their
        # spec hashes) are byte-identical to what version 1 always
        # produced.
        data["sched"] = {
            "policy": spec.sched.policy,
            "jobs": spec.sched.jobs,
            "arrival": (
                spec.sched.arrival
                if isinstance(spec.sched.arrival, str)
                else [_ref_to_dict(e) for e in spec.sched.arrival]
            ),
            "interarrival_seconds": spec.sched.interarrival_seconds,
            "users": spec.sched.users,
            "hours_scale": spec.sched.hours_scale,
            "drain_lanes": spec.sched.drain_lanes,
            "background_load": spec.sched.background_load,
        }
    return data


def canonical_spec_json(spec: ExperimentSpec) -> str:
    """Pretty canonical rendering — what ``--dump-spec`` and the
    committed ``examples/specs/*.json`` files contain."""
    return json.dumps(spec_to_dict(spec), indent=2, sort_keys=True) + "\n"


def spec_hash(spec: ExperimentSpec) -> str:
    """SHA-256 of the compact canonical JSON (64 hex chars).

    Identifies the *document* (stable across load/dump cycles); the
    per-cell store keys are derived separately by
    :func:`repro.spec.build.build_cells`.
    """
    blob = json.dumps(spec_to_dict(spec), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def loads_spec(text: str) -> ExperimentSpec:
    """Parse and validate a spec from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError([f"not valid JSON: {exc}"]) from exc
    return spec_from_dict(data)


def load_spec(path: Union[str, Path]) -> ExperimentSpec:
    """Load and validate a spec file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SpecError([f"cannot read {path}: {exc}"]) from exc
    return loads_spec(text)


def dump_spec(spec: ExperimentSpec, path: Union[str, Path]) -> None:
    """Write the canonical rendering of *spec* to *path*."""
    Path(path).write_text(canonical_spec_json(spec), encoding="utf-8")
