"""``repro.spec`` — one declarative experiment spec for every entry point.

The paper's evaluation grid — (application, platform, failure model,
C/R model, sweep axis, replications, seed) — used to be assembled three
divergent ways: ad-hoc CLI kwargs, ``CellSpec`` construction inside the
sweep engines, and the declarative scenario programs of
``repro.validate``.  This package promotes the proven declarative
pattern into the single source of truth:

* :mod:`repro.spec.schema` — the schema-versioned
  :class:`~repro.spec.schema.ExperimentSpec` document and its field
  tables (``tools/check_spec_schema.py`` keeps code, docs and examples
  in sync);
* :mod:`repro.spec.loader` — validating loader (every problem reported
  at once), canonical serialization, and the stable
  :func:`~repro.spec.loader.spec_hash`;
* :mod:`repro.spec.build` — resolution to simulation objects and the
  **single** grid constructor both the spec path and the sweep engines
  use, so spec-launched campaigns hit exactly the store keys
  kwargs-driven ones always produced;
* :mod:`repro.spec.engine` — the :class:`~repro.spec.engine.SimEngine`
  facade (build-from-spec / run / step / pause / reset / subscribe)
  that gives the future service layer live control over one replication.

User-facing reference: ``docs/EXPERIMENT_SPEC.md``.  Example documents:
``examples/specs/``.  CLI: ``pckpt run --spec FILE`` and
``pckpt campaign run --spec FILE``.
"""

from .build import (
    ResolvedExperiment,
    build_cells,
    cell_keys,
    resolve,
    run_resolved,
    run_spec,
)
from .engine import SimEngine
from .loader import (
    SpecError,
    canonical_spec_json,
    dump_spec,
    load_spec,
    loads_spec,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
)
from .schema import (
    SPEC_SCHEMA_VERSION,
    SWEEP_AXES,
    ExperimentSpec,
    FailureRef,
    PlatformRef,
    PredictorRef,
    SequenceRef,
    SweepAxis,
)

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "SWEEP_AXES",
    "ExperimentSpec",
    "PlatformRef",
    "FailureRef",
    "PredictorRef",
    "SequenceRef",
    "SweepAxis",
    "SpecError",
    "spec_from_dict",
    "spec_to_dict",
    "load_spec",
    "loads_spec",
    "dump_spec",
    "canonical_spec_json",
    "spec_hash",
    "ResolvedExperiment",
    "resolve",
    "build_cells",
    "cell_keys",
    "run_spec",
    "run_resolved",
    "SimEngine",
]
