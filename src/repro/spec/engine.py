"""``SimEngine`` — the engine-facing facade over one spec cell.

The service and scheduler layers (ROADMAP items 1 and 4) need more than
"run a spec to completion": they need to *build* a simulation from a
declarative spec, *step* it under external control, *pause* it from a
callback, and *subscribe* to its event stream while it runs.  This
module provides that contract — the ``ISimEngine`` shape
(build-from-spec / run / step / pause / reset / subscribe) — as a thin
facade over the existing pieces:

* **build** resolves an :class:`~repro.spec.schema.ExperimentSpec` cell
  into a :class:`~repro.models.base.CRSimulation` (same seed-spawn
  discipline as the Monte-Carlo runner, so replication *i* of the
  engine is bit-identical to replication *i* of a campaign);
* **subscribe** feeds handlers from the existing monitor stream — every
  :class:`~repro.des.monitor.TraceRecord` the simulation emits is
  delivered live via :meth:`Trace.add_listener`, not from a private
  side channel;
* **run/step/pause** drive :meth:`Environment.step` directly, so a
  subscriber can pause the engine mid-run (live control) and a later
  ``run()`` resumes deterministically — pausing never changes results.

The facade is deliberately single-replication: Monte-Carlo aggregation
stays the campaign scheduler's job.  ``SimEngine`` is what a service
worker wraps around one live, observable, controllable replication.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

import numpy as np

from ..des import Trace
from ..des.exceptions import EmptySchedule
from ..des.monitor import TraceRecord
from ..models.base import CRSimulation, RunOutput
from .build import ResolvedExperiment, build_cells
from .schema import ExperimentSpec

__all__ = ["SimEngine"]

#: Engine lifecycle states (see :attr:`SimEngine.state`).
_IDLE, _BUILT, _PAUSED, _DONE = "idle", "built", "paused", "done"


class SimEngine:
    """Build-from-spec / run / step / pause / reset / subscribe.

    Drives **one replication of one cell** of an experiment spec under
    external control.  Determinism matches the campaign path exactly:
    replication *i* runs from ``SeedSequence(seed, spawn_key=(i,))``, so
    an engine run is one of the runs the Monte-Carlo aggregate already
    contains, and pausing/resuming never changes the outcome.
    """

    def __init__(self) -> None:
        self._spec: Optional[Union[ExperimentSpec, ResolvedExperiment]] = None
        self._cell_index = 0
        self._replication = 0
        self._sim: Optional[CRSimulation] = None
        self._app_proc = None
        self._handlers: List[Callable[[TraceRecord], None]] = []
        self._paused = False
        self.state: str = _IDLE
        #: The finished replication's :class:`RunOutput` (None until done).
        self.result: Optional[RunOutput] = None

    # -- contract ----------------------------------------------------------
    def build(self, spec: Union[ExperimentSpec, ResolvedExperiment],
              cell_index: int = 0, replication: int = 0) -> None:
        """Build runtime state for one cell of *spec*.

        Parameters
        ----------
        spec:
            A validated spec (or an already resolved experiment).
        cell_index:
            Which grid cell to instantiate (grid order; see
            :func:`repro.spec.build.build_cells`).
        replication:
            Which Monte-Carlo replication to run — selects the
            ``SeedSequence`` child, exactly as the campaign scheduler
            would.
        """
        cells = build_cells(spec)
        if not 0 <= cell_index < len(cells):
            raise IndexError(
                f"cell_index {cell_index} out of range "
                f"(spec has {len(cells)} cells)"
            )
        cell = cells[cell_index]
        if not 0 <= replication < cell.replications:
            raise IndexError(
                f"replication {replication} out of range "
                f"(cell has {cell.replications})"
            )
        self._spec = spec
        self._cell_index = cell_index
        self._replication = replication

        child = np.random.SeedSequence(
            entropy=cell.seed, spawn_key=(replication,)
        )
        trace = Trace(env=None)  # adopted by the simulation's environment
        for handler in self._handlers:
            trace.add_listener(handler)
        self._sim = CRSimulation(
            cell.app,
            cell.model,
            platform=cell.platform,
            weibull=cell.weibull,
            lead_model=cell.lead_model,
            predictor=cell.predictor,
            rng=np.random.default_rng(child),
            trace=trace,
        )
        self._app_proc = self._sim.start()
        self._paused = False
        self.result = None
        self.state = _BUILT

    def run(self, until: Optional[float] = None) -> Optional[RunOutput]:
        """Run until completion, the *until* horizon, or a pause.

        Returns the :class:`RunOutput` once the replication completes
        (also kept on :attr:`result`); returns ``None`` when stopped
        early by the horizon or by :meth:`pause`.
        """
        sim = self._require_built()
        if self.state == _DONE:
            return self.result
        env, proc = sim.env, self._app_proc
        self._paused = False
        while not proc.triggered:
            if until is not None and env.peek() > until:
                break
            try:
                env.step()
            except EmptySchedule:  # pragma: no cover - drivers never drain
                break
            if self._paused:
                self.state = _PAUSED
                break
        return self._maybe_finish()

    def step(self, delta: Optional[float] = None) -> Optional[RunOutput]:
        """Process one event (``delta=None``) or run ``delta`` seconds."""
        sim = self._require_built()
        if self.state == _DONE:
            return self.result
        if delta is not None:
            return self.run(until=sim.env.now + delta)
        if not self._app_proc.triggered:
            sim.env.step()
        return self._maybe_finish()

    def pause(self) -> None:
        """Stop the :meth:`run` loop after the current event.

        Safe to call from a subscribed handler (live control): the loop
        checks the flag between events.  A subsequent :meth:`run`
        resumes exactly where the simulation stopped.
        """
        self._paused = True
        if self.state == _BUILT:
            self.state = _PAUSED

    def reset(self) -> None:
        """Rebuild the same cell/replication from scratch (same seed)."""
        self._require_built()
        self.build(self._spec, self._cell_index, self._replication)

    def subscribe(self, handler: Callable[[TraceRecord], None]) -> None:
        """Stream every emitted :class:`TraceRecord` to *handler*.

        Fed from the simulation's own monitor stream
        (:meth:`Trace.add_listener`) — the same records ``--trace``
        exports.  Subscribing before :meth:`build` is allowed; handlers
        survive :meth:`reset`.
        """
        self._handlers.append(handler)
        if self._sim is not None and self._sim.trace is not None:
            self._sim.trace.add_listener(handler)

    # -- introspection -----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time of the built cell (0.0 when idle)."""
        return 0.0 if self._sim is None else self._sim.env.now

    @property
    def trace(self) -> Optional[Trace]:
        """The built simulation's trace (records + span accounting)."""
        return None if self._sim is None else self._sim.trace

    # -- internals ---------------------------------------------------------
    def _require_built(self) -> CRSimulation:
        if self._sim is None:
            raise RuntimeError("SimEngine: call build(spec) first")
        return self._sim

    def _maybe_finish(self) -> Optional[RunOutput]:
        if self._app_proc.triggered and self.result is None:
            self.result = self._sim.finish()
            self.state = _DONE
        return self.result
