"""The declarative ``ExperimentSpec`` schema (version, fields, dataclasses).

One JSON document describes one experiment grid — the (application ×
model × sweep-axis) cells the paper's evaluation is made of — and every
entry point (``pckpt run``, ``pckpt campaign run``, the sweep engines in
:mod:`repro.experiments.sweep`, the future service layer) consumes the
same document instead of its own ad-hoc kwargs.  The schema is:

* **JSON-serializable** — a spec file round-trips through
  :func:`repro.spec.loader.spec_to_dict` / ``spec_from_dict`` exactly;
* **schema-versioned** — :data:`SPEC_SCHEMA_VERSION` is carried in every
  document and rejected on mismatch, so a stale spec can never be
  silently misread;
* **canonical** — loading materializes every default and expands every
  shorthand (``"apps": "all"``, ``"platform": "summit"``), so
  load → canonicalize → dump is idempotent and
  :func:`repro.spec.loader.spec_hash` is stable;
* **the source of cache keys** — :func:`repro.spec.build.build_cells`
  derives :class:`repro.campaign.plan.CellSpec` objects from the spec,
  and their :func:`~repro.campaign.plan.content_key` hashes are exactly
  the ones the kwargs-driven path has always produced, so existing
  content-addressed store entries remain reachable.

The field inventory lives in the ``*_FIELDS`` tables below;
``tools/check_spec_schema.py`` parses them from source (dependency-free)
and fails CI when ``docs/EXPERIMENT_SPEC.md``, the docstrings in this
module, or the committed ``examples/specs/*.json`` files drift from
them.  See ``docs/EXPERIMENT_SPEC.md`` for the user-facing reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..failures.predictor import DEFAULT_PREDICTOR

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "SPEC_FIELDS",
    "SWEEP_FIELDS",
    "PREDICTOR_FIELDS",
    "PLATFORM_FIELDS",
    "FAILURES_FIELDS",
    "SEQUENCE_FIELDS",
    "SCHED_FIELDS",
    "SCHED_JOB_FIELDS",
    "SWEEP_AXES",
    "PlatformRef",
    "FailureRef",
    "PredictorRef",
    "SequenceRef",
    "SchedJobRef",
    "SchedRef",
    "SweepAxis",
    "ExperimentSpec",
]

#: Version carried in every spec document.  Bump on any change to the
#: field tables below; the loader rejects documents with another version.
SPEC_SCHEMA_VERSION: int = 1

#: Top-level spec fields: name -> (type tag, required).  Type tags are
#: what ``tools/check_spec_schema.py`` validates example files against:
#: ``str`` / ``int`` / ``float`` / ``bool`` are JSON scalars (``float``
#: accepts ints, never booleans), ``list`` a JSON array, ``object`` a
#: JSON object; ``X_or_Y`` accepts either form (shorthands the loader
#: expands into the canonical form).
SPEC_FIELDS: Dict[str, Tuple[str, bool]] = {
    "schema_version": ("int", True),
    "name": ("str", False),
    "apps": ("list_or_str", True),
    "models": ("list", True),
    "include_base": ("bool", False),
    "platform": ("str_or_object", False),
    "failures": ("str_or_object", False),
    "predictor": ("object", False),
    "lead_model": ("str_or_list", False),
    "sweep": ("object_or_null", False),
    "sched": ("object_or_null", False),
    "replications": ("int", False),
    "seed": ("int", False),
    "collect_metrics": ("bool", False),
}

#: ``sweep`` sub-object fields.
SWEEP_FIELDS: Dict[str, Tuple[str, bool]] = {
    "axis": ("str", True),
    "values": ("list", True),
}

#: ``predictor`` sub-object fields (all optional; defaults mirror
#: :data:`repro.failures.predictor.DEFAULT_PREDICTOR`).
PREDICTOR_FIELDS: Dict[str, Tuple[str, bool]] = {
    "recall": ("float", False),
    "false_positive_rate": ("float", False),
    "detection_latency": ("float", False),
    "lead_scale": ("float", False),
}

#: ``platform`` sub-object fields (``"summit"`` is shorthand for
#: ``{"base": "summit"}``; overrides replace the named base's values).
PLATFORM_FIELDS: Dict[str, Tuple[str, bool]] = {
    "base": ("str", True),
    "total_nodes": ("int", False),
    "restart_delay": ("float", False),
    "lm_slowdown": ("float", False),
}

#: ``failures`` sub-object fields.  Either a named distribution
#: (``{"base": "titan"}``, shorthand ``"titan"``) or a fully inline
#: Weibull fit (``name`` + ``shape`` + ``scale_hours`` + ``system_nodes``,
#: no ``base``).
FAILURES_FIELDS: Dict[str, Tuple[str, bool]] = {
    "base": ("str", False),
    "name": ("str", False),
    "shape": ("float", False),
    "scale_hours": ("float", False),
    "system_nodes": ("int", False),
}

#: One entry of an inline ``lead_model`` list (``"paper"`` is the named
#: shorthand for the reverse-engineered Fig 2a mixture).
SEQUENCE_FIELDS: Dict[str, Tuple[str, bool]] = {
    "sequence_id": ("int", True),
    "occurrences": ("int", True),
    "mean_lead": ("float", True),
    "sd_lead": ("float", True),
}

#: ``sched`` sub-object fields (batch-queue experiments; all optional —
#: a bare ``"sched": {}`` runs the default Poisson workload).
SCHED_FIELDS: Dict[str, Tuple[str, bool]] = {
    "policy": ("str", False),
    "jobs": ("int", False),
    "arrival": ("str_or_list", False),
    "interarrival_seconds": ("float", False),
    "users": ("int", False),
    "hours_scale": ("float", False),
    "drain_lanes": ("int", False),
    "background_load": ("float", False),
}

#: One entry of an inline ``sched.arrival`` trace list.
SCHED_JOB_FIELDS: Dict[str, Tuple[str, bool]] = {
    "app": ("str", True),
    "at": ("float", True),
    "model": ("str", False),
    "user": ("str", False),
    "nodes": ("int", False),
}

#: Legal ``sweep.axis`` values and their semantics (documented in
#: docs/EXPERIMENT_SPEC.md):
#: ``lead-change-percent`` — each value is a percent change applied to
#: every prediction lead time (Figs 4/7, Tables II/IV, Fig 8);
#: ``fn-rate`` — each value is a predictor false-negative rate at fixed
#: FP = 18% (Observation 9);
#: ``sched-policy`` — each value is a placement-policy name
#: (``repro.sched.jobs.POLICY_NAMES``); requires a ``sched`` block and
#: is the only axis legal with one.
SWEEP_AXES: Tuple[str, ...] = ("lead-change-percent", "fn-rate", "sched-policy")


@dataclass(frozen=True)
class PlatformRef:
    """Reference to a platform, optionally with scalar overrides.

    Attributes
    ----------
    base:
        Named platform the reference starts from (currently only
        ``"summit"``, the paper's Summit-like machine).
    total_nodes:
        Override of the machine's node count — the knob batch-queue
        (``sched``) experiments use to provoke queueing contention
        (``None`` keeps the base platform's size).
    restart_delay:
        Override of the fixed job-restart latency in seconds
        (``None`` keeps the base platform's value).
    lm_slowdown:
        Override of the fractional application slowdown while a live
        migration is in flight (``None`` keeps the base value).
    """

    base: str = "summit"
    total_nodes: Optional[int] = None
    restart_delay: Optional[float] = None
    lm_slowdown: Optional[float] = None


@dataclass(frozen=True)
class FailureRef:
    """Reference to a Weibull failure-arrival distribution.

    Exactly one of the two forms is populated:

    * **named** — ``base`` is a key of
      :data:`repro.failures.weibull.FAILURE_DISTRIBUTIONS`
      (``"titan"``, ``"lanl-system8"``, ``"lanl-system18"``);
    * **inline** — ``name`` plus the full fit: ``shape`` (Weibull k),
      ``scale_hours`` (λ for the whole reference system) and
      ``system_nodes`` (the reference system's node count).
    """

    base: Optional[str] = None
    name: Optional[str] = None
    shape: Optional[float] = None
    scale_hours: Optional[float] = None
    system_nodes: Optional[int] = None


@dataclass(frozen=True)
class PredictorRef:
    """Failure-predictor statistics (defaults = the paper's predictor).

    Attributes
    ----------
    recall:
        P(a real failure is predicted); 1 − false-negative rate.
    false_positive_rate:
        Fraction of emitted predictions that are false alarms.
    detection_latency:
        Seconds between chain onset and the prediction being available.
    lead_scale:
        Multiplier on every lead time (1.0 = reference).
    """

    recall: float = DEFAULT_PREDICTOR.recall
    false_positive_rate: float = DEFAULT_PREDICTOR.false_positive_rate
    detection_latency: float = DEFAULT_PREDICTOR.detection_latency
    lead_scale: float = DEFAULT_PREDICTOR.lead_scale


@dataclass(frozen=True)
class SequenceRef:
    """One inline lead-time mixture component (one Fig 2a box).

    Attributes
    ----------
    sequence_id:
        1-based id (the paper's x-axis ordering).
    occurrences:
        Occurrence count in the mined logs (mixture weight).
    mean_lead / sd_lead:
        Mean and standard deviation of the lead time in seconds.
    """

    sequence_id: int
    occurrences: int
    mean_lead: float
    sd_lead: float


@dataclass(frozen=True)
class SchedJobRef:
    """One explicit ``sched.arrival`` trace entry.

    Attributes
    ----------
    app:
        Table-I application name.
    at:
        Submission time in simulated seconds.
    model / user / nodes:
        Optional overrides; ``None`` falls back to the workload defaults
        (model-pool cycling, round-robin users, Table-I width).
    """

    app: str
    at: float
    model: Optional[str] = None
    user: Optional[str] = None
    nodes: Optional[int] = None


@dataclass(frozen=True)
class SchedRef:
    """Batch-queue workload parameters (the ``sched`` block).

    Attributes
    ----------
    policy:
        Placement policy (:data:`repro.sched.jobs.POLICY_NAMES`); a
        ``sched-policy`` sweep overrides this per column.
    jobs:
        Workload size for Poisson arrivals (ignored for a trace).
    arrival:
        ``"poisson"`` or an inline tuple of :class:`SchedJobRef` trace
        entries.
    interarrival_seconds:
        Mean of the exponential interarrival gap (Poisson only).
    users:
        Synthetic tenants jobs are assigned to round-robin.
    hours_scale:
        Multiplier on each application's Table-I compute hours (scales
        demand, not the checkpoint physics).
    drain_lanes:
        Concurrent BB→PFS transfers machine-wide (shared by all jobs).
    background_load:
        External PFS utilization in [0, 1); bandwidth derates by 1−load.
    """

    policy: str = "fcfs"
    jobs: int = 16
    arrival: object = "poisson"  # "poisson" | Tuple[SchedJobRef, ...]
    interarrival_seconds: float = 900.0
    users: int = 4
    hours_scale: float = 1.0
    drain_lanes: int = 2
    background_load: float = 0.0


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter axis crossed with the (app × model) grid.

    Attributes
    ----------
    axis:
        One of :data:`SWEEP_AXES` (``"lead-change-percent"``,
        ``"fn-rate"`` or ``"sched-policy"``).
    values:
        The axis points, in presentation order.  Each value produces one
        grid column; cells are keyed ``(model_name, value)`` — numbers
        for the predictor axes, policy-name strings for
        ``sched-policy``.
    """

    axis: str
    values: Tuple[object, ...]


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment grid (the schema's root document).

    Every field maps 1:1 onto a key of the JSON document (see
    :data:`SPEC_FIELDS` and ``docs/EXPERIMENT_SPEC.md``).  Instances are
    canonical: shorthands are already expanded and defaults materialized
    by :func:`repro.spec.loader.spec_from_dict`.

    Attributes
    ----------
    schema_version:
        Must equal :data:`SPEC_SCHEMA_VERSION` (carried in the document
        so stale files are rejected, not misread).
    name:
        Optional human-readable label.  Informational only — it names
        the experiment, not the computation, and never enters any
        config-hash.
    apps:
        Application names (Table I), in presentation order.  The JSON
        shorthand ``"all"`` loads as the full catalogue in paper order.
    models:
        C/R model names resolved through
        :func:`repro.models.registry.get_model` (``"B"``, ``"M1"``,
        ``"M2"``, ``"P1"``, ``"P2"`` and variants like ``"M2-2.5"``,
        ``"P2-fn"``, ``"P1-sync"``).
    include_base:
        Prepend the baseline model ``"B"`` when missing (default true),
        so overhead reductions can always be computed.
    platform:
        :class:`PlatformRef` — the machine the cells run on.
    failures:
        :class:`FailureRef` — the Weibull failure-arrival distribution.
    predictor:
        :class:`PredictorRef` — predictor statistics; sweep axes derive
        per-column predictors from this reference point.
    lead_model:
        ``"paper"`` (the Fig 2a mixture) or an inline tuple of
        :class:`SequenceRef` components.
    sweep:
        Optional :class:`SweepAxis`.  Without one, cells are keyed
        ``(model_name, app_name)``; with one, exactly one app is
        required (except ``sched-policy``, which consumes the whole app
        mix) and cells are keyed ``(model_name, value)``.
    sched:
        Optional :class:`SchedRef`.  When present the spec describes a
        batch-queue experiment: ``apps`` is the workload's application
        mix, ``models`` the C/R pool jobs cycle through, and the only
        legal sweep axis is ``sched-policy``.
    replications:
        Monte-Carlo runs aggregated per cell (the paper used 1000).
    seed:
        Root seed; replication *i* of every cell runs from
        ``SeedSequence(seed)``'s *i*-th spawned child.
    collect_metrics:
        Attach a metrics registry to every replication.
    """

    schema_version: int = SPEC_SCHEMA_VERSION
    name: Optional[str] = None
    apps: Tuple[str, ...] = ()
    models: Tuple[str, ...] = ()
    include_base: bool = True
    platform: PlatformRef = field(default_factory=PlatformRef)
    failures: FailureRef = field(default_factory=lambda: FailureRef(base="titan"))
    predictor: PredictorRef = field(default_factory=PredictorRef)
    lead_model: object = "paper"  # "paper" | Tuple[SequenceRef, ...]
    sweep: Optional[SweepAxis] = None
    sched: Optional[SchedRef] = None
    replications: int = 30
    seed: int = 2022
    collect_metrics: bool = False
