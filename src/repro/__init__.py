"""repro — full reproduction of *P-ckpt: Coordinated Prioritized
Checkpointing* (Behera, Wan, Mueller, Wolf, Klasky — IPDPS 2022).

The package is layered bottom-up:

* :mod:`repro.des` — a from-scratch discrete-event simulation kernel
  (the paper used SimPy; we implement the same semantics).
* :mod:`repro.iomodel` — the Summit-like GPFS I/O performance model
  (single-node task sweep + weak-scaling performance matrix, Fig 2b/2c).
* :mod:`repro.platform` — compute nodes, burst buffers, interconnect, PFS.
* :mod:`repro.failures` — Weibull failure generation (Table III),
  Desh-style failure chains and lead-time distributions (Fig 2a), and the
  Aarohi-like online predictor with FP/FN rates.
* :mod:`repro.cr` — checkpoint plumbing (BB staging, async drain,
  recovery) and the live-migration engine.
* :mod:`repro.core` — the paper's contribution: the coordinated
  prioritized checkpoint (p-ckpt) protocol and its node state machine.
* :mod:`repro.models` — the C/R model zoo: B, M1 (safeguard), M2 (LM),
  P1 (p-ckpt), P2 (hybrid p-ckpt).
* :mod:`repro.analysis` — Young's OCI, the σ-adjusted OCI, and the
  analytical LM-vs-p-ckpt break-even model (Eqs 1–8).
* :mod:`repro.workloads` — the six Table I applications and the
  Titan→Summit checkpoint-size rescaling (Eq 3).
* :mod:`repro.experiments` — Monte-Carlo runner, metric accounting, and
  one driver per table/figure of the paper's evaluation.
* :mod:`repro.campaign` — sweep orchestration: shared-pool scheduling,
  a content-addressed result store, and resumable campaigns.

Top-level names are re-exported lazily (PEP 562) so that importing
``repro`` stays cheap and subpackages can be used in isolation.

Quickstart
----------
>>> from repro import simulate_application, SUMMIT, TITAN_WEIBULL
>>> from repro.workloads import APPLICATIONS
>>> result = simulate_application(
...     APPLICATIONS["POP"], model="P2", platform=SUMMIT,
...     weibull=TITAN_WEIBULL, seed=1)
>>> result.total_overhead_hours >= 0
True
"""

from ._version import __version__

__all__ = [
    "__version__",
    "simulate_application",
    "run_replications",
    "SimulationResult",
    "PlatformSpec",
    "SUMMIT",
    "WeibullParams",
    "TITAN_WEIBULL",
    "LANL_SYSTEM8_WEIBULL",
    "LANL_SYSTEM18_WEIBULL",
    "ApplicationSpec",
    "APPLICATIONS",
    "CRSimulation",
    "ModelConfig",
    "get_model",
    "PAPER_MODELS",
    "run_campaign",
    "CellSpec",
    "ResultStore",
    "CampaignProgress",
]

# name → (module, attribute) for lazy re-export.
_LAZY = {
    "CRSimulation": ("repro.models.base", "CRSimulation"),
    "ModelConfig": ("repro.models.base", "ModelConfig"),
    "get_model": ("repro.models.registry", "get_model"),
    "PAPER_MODELS": ("repro.models.registry", "PAPER_MODELS"),
    "simulate_application": ("repro.experiments.runner", "simulate_application"),
    "run_replications": ("repro.experiments.runner", "run_replications"),
    "SimulationResult": ("repro.experiments.runner", "SimulationResult"),
    "PlatformSpec": ("repro.platform.system", "PlatformSpec"),
    "SUMMIT": ("repro.platform.system", "SUMMIT"),
    "WeibullParams": ("repro.failures.weibull", "WeibullParams"),
    "TITAN_WEIBULL": ("repro.failures.weibull", "TITAN_WEIBULL"),
    "LANL_SYSTEM8_WEIBULL": ("repro.failures.weibull", "LANL_SYSTEM8_WEIBULL"),
    "LANL_SYSTEM18_WEIBULL": ("repro.failures.weibull", "LANL_SYSTEM18_WEIBULL"),
    "ApplicationSpec": ("repro.workloads.applications", "ApplicationSpec"),
    "APPLICATIONS": ("repro.workloads.applications", "APPLICATIONS"),
    "run_campaign": ("repro.campaign.scheduler", "run_campaign"),
    "CellSpec": ("repro.campaign.plan", "CellSpec"),
    "ResultStore": ("repro.campaign.store", "ResultStore"),
    "CampaignProgress": ("repro.campaign.progress", "CampaignProgress"),
}


def __getattr__(name: str):
    """Resolve lazily-exported top-level names (PEP 562)."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
