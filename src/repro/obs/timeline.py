"""Causal failure→action timelines.

Every :class:`~repro.failures.injector.FailureEvent` /
:class:`~repro.failures.injector.FalseAlarmEvent` carries an
injector-assigned ``provenance`` id, and every trace record a
:class:`~repro.models.base.CRSimulation` emits *because of* that event
carries the same id in its detail dict — ``"prov"`` for single-cause
records, ``"provs"`` for protocol records serving several predictions at
once (a p-ckpt run covers every vulnerable node).  This module groups a
trace by those ids into :class:`CausalChain` objects, answering the
question the paper's Figs. 6–9 build on: *which failure caused which
checkpoint action, and what did it cost?*

Chains are reconstructible both from a live :class:`~repro.des.monitor.Trace`
and from its JSONL export (details round-trip through JSON), so the
``pckpt timeline`` CLI works on traces recorded earlier.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from ..des.monitor import BEGIN, END, Trace, TraceRecord

__all__ = [
    "CausalChain",
    "TIMELINE_SCHEMA_VERSION",
    "TIMELINE_KIND",
    "TIMELINE_CHAIN_KINDS",
    "extract_timelines",
    "format_timelines",
    "timelines_to_jsonl",
]

#: Schema version of the JSONL payload written by :func:`timelines_to_jsonl`.
TIMELINE_SCHEMA_VERSION: int = 1

#: Payload discriminator, mirroring the bench harness convention.
TIMELINE_KIND: str = "pckpt-timeline"

#: Trace-record kinds that participate in causal chains (i.e. whose
#: details carry ``prov``/``provs``).  ``tools/check_trace_kinds.py``
#: asserts every name here is documented in ``docs/OBSERVABILITY.md``.
TIMELINE_CHAIN_KINDS = (
    "prediction",
    "struck",
    "avoided-by-lm",
    "started",
    "completed",
    "aborted",
    "overtaken",
    "lm_transfer",
    "start",
    "done",
    "absorbed-lm",
    "vulnerable-committed",
    "safeguard_write",
    "pckpt_protocol",
    "pckpt_phase2",
    "phase2-landed",
    "restore",
    "recovery_restore",
)


def _provs_of(rec: TraceRecord) -> List[int]:
    """Provenance ids a record belongs to (empty for un-annotated records)."""
    detail = rec.detail
    if not isinstance(detail, dict):
        return []
    out: List[int] = []
    prov = detail.get("prov")
    if isinstance(prov, int) and prov >= 0:
        out.append(prov)
    provs = detail.get("provs")
    if isinstance(provs, (list, tuple)):
        for p in provs:
            if isinstance(p, int) and p >= 0 and p not in out:
                out.append(p)
    return out


@dataclass
class CausalChain:
    """All trace records caused by one injected failure / false alarm."""

    provenance: int
    records: List[TraceRecord] = field(default_factory=list)

    @property
    def begin(self) -> float:
        """Time of the chain's first record."""
        return self.records[0].time if self.records else 0.0

    @property
    def end(self) -> float:
        """Time of the chain's last record."""
        return self.records[-1].time if self.records else 0.0

    @property
    def node(self) -> Optional[int]:
        """Node the causing event implicated (from the earliest record)."""
        for rec in self.records:
            if isinstance(rec.detail, dict):
                node = rec.detail.get("node")
                if isinstance(node, int):
                    return node
        return None

    @property
    def action(self) -> Optional[str]:
        """Coordinator decision recorded at prediction time, if any."""
        for rec in self.records:
            if rec.kind == "prediction" and isinstance(rec.detail, dict):
                act = rec.detail.get("action")
                return str(act) if act is not None else None
        return None

    @property
    def struck(self) -> bool:
        """Whether the chain's failure actually hit the application."""
        return any(rec.kind == "struck" for rec in self.records)

    def kinds(self) -> List[str]:
        """Record kinds in chain order (span BEGIN/END collapsed)."""
        out: List[str] = []
        for rec in self.records:
            if rec.ph == END:
                continue
            out.append(rec.kind)
        return out


def extract_timelines(
    trace_or_records: Union[Trace, Iterable[TraceRecord]],
) -> List[CausalChain]:
    """Group a trace into per-provenance causal chains.

    Accepts a live :class:`Trace` or any iterable of
    :class:`TraceRecord` (e.g. ``load_jsonl`` output).  Records carrying
    no provenance annotation (periodic checkpoints, drains, kernel
    records) belong to no chain and are skipped.  Chains come back
    ordered by provenance id; records within a chain keep trace order.
    """
    records: Iterable[TraceRecord] = (
        trace_or_records.records
        if isinstance(trace_or_records, Trace)
        else trace_or_records
    )
    chains: Dict[int, CausalChain] = {}
    for rec in records:
        for prov in _provs_of(rec):
            chain = chains.get(prov)
            if chain is None:
                chain = chains[prov] = CausalChain(prov)
            chain.records.append(rec)
    return [chains[prov] for prov in sorted(chains)]


def format_timelines(
    chains: List[CausalChain], limit: Optional[int] = None
) -> str:
    """Render chains as an indented text view (the ``pckpt timeline`` CLI)."""
    shown = chains if limit is None else chains[:limit]
    lines: List[str] = []
    for chain in shown:
        head = f"prov {chain.provenance}"
        if chain.node is not None:
            head += f" · node {chain.node}"
        if chain.action is not None:
            head += f" · action={chain.action}"
        head += " · struck" if chain.struck else " · avoided/expired"
        head += f" · t={chain.begin:.3f}s..{chain.end:.3f}s"
        lines.append(head)
        marks = {BEGIN: ">", END: "<"}
        for rec in chain.records:
            mark = marks.get(rec.ph, " ")
            lines.append(
                f"  [{rec.time:14.3f}s] {mark} {rec.source:<10s} {rec.kind}"
            )
    if limit is not None and len(chains) > limit:
        lines.append(f"... ({len(chains) - limit} more chains)")
    return "\n".join(lines)


def timelines_to_jsonl(
    chains: List[CausalChain], path_or_fp: Union[str, IO[str]]
) -> int:
    """Write one JSON object per chain; returns the number written.

    Each line is ``{"kind": "pckpt-timeline", "schema_version": 1,
    "prov": ..., "node": ..., "action": ..., "struck": ...,
    "begin": ..., "end": ..., "records": [...]}`` with records in the
    same shape as :meth:`Trace.to_jsonl` lines.
    """
    def _write(fp: IO[str]) -> int:
        n = 0
        for chain in chains:
            fp.write(json.dumps(
                {
                    "kind": TIMELINE_KIND,
                    "schema_version": TIMELINE_SCHEMA_VERSION,
                    "prov": chain.provenance,
                    "node": chain.node,
                    "action": chain.action,
                    "struck": chain.struck,
                    "begin": chain.begin,
                    "end": chain.end,
                    "records": [
                        {"t": rec.time, "source": rec.source,
                         "kind": rec.kind, "ph": rec.ph, "sid": rec.sid,
                         "detail": rec.detail}
                        for rec in chain.records
                    ],
                },
                default=str, separators=(",", ":"),
            ))
            fp.write("\n")
            n += 1
        return n

    if isinstance(path_or_fp, (str, os.PathLike)):
        with open(path_or_fp, "w", encoding="utf-8") as fp:
            return _write(fp)
    return _write(path_or_fp)
