"""Cross-layer trace context: one id from HTTP header to kernel span.

A **trace context** is a ``(trace_id, span_id)`` pair (plus an optional
``parent_id``) naming one logical request as it crosses layers: the
service mints (or adopts, from an ``X-Pckpt-Trace`` header) a context
per job, activates it around the job's campaign, and every layer below
— campaign scheduler, pool workers, telemetry snapshots, job events —
stamps its records with the same ``trace_id``.  ``pckpt obs stitch``
later reassembles the fragments into one Chrome trace.

Design constraints, in order:

* **Zero overhead when disabled.**  Nothing here touches simulation
  state: ids come from :mod:`secrets`, never from an experiment's
  ``SeedSequence``, so activating a trace cannot perturb results, and
  :func:`current` is a thread-local attribute read returning ``None``
  when no context is active.
* **Crash-safe multi-process collection.**  Each process/role appends
  to its **own** fragment file under
  ``<store>/obs/trace/<trace_id>/`` (:func:`trace_fragment_dir`), one
  JSON object per line, flushed per span — no cross-process file
  sharing, no partial-line interleaving, and a killed worker loses at
  most its open spans.

Fragment records follow the declarative-table convention
(:data:`SPAN_FIELDS`, ``SPAN_SCHEMA_VERSION``) shared with
``docs/OBSERVABILITY.md`` and ``tools/check_obs_schema.py``.
"""

from __future__ import annotations

import json
import os
import re
import secrets
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Dict, Iterator, Optional, Union

__all__ = [
    "SPAN_SCHEMA_VERSION",
    "SPAN_KIND",
    "SPAN_FIELDS",
    "TRACE_HEADER",
    "TRACE_DIRNAME",
    "TraceContext",
    "mint_context",
    "parse_trace_header",
    "format_trace_header",
    "activate",
    "current",
    "trace_fragment_dir",
    "SpanWriter",
    "read_spans",
]

#: Schema version stamped on every span-fragment record (bump on any
#: incompatible layout change).
SPAN_SCHEMA_VERSION: int = 1

#: Record discriminator for span-fragment lines.
SPAN_KIND: str = "pckpt-span"

#: HTTP request header carrying an externally minted trace context.
TRACE_HEADER: str = "X-Pckpt-Trace"

#: Directory under a store root holding per-trace fragment directories.
TRACE_DIRNAME: str = os.path.join("obs", "trace")

#: Span-record fields: ``{name: (type, nullable)}`` — the single source
#: of truth shared with ``tools/check_obs_schema.py`` and the docs.
#: ``t0``/``t1`` are wall-clock epoch seconds (the one timebase every
#: process shares); ``t1`` is null for instant events (``ph`` = "i").
SPAN_FIELDS: Dict[str, tuple] = {
    "kind": (str, False),
    "schema_version": (int, False),
    "trace_id": (str, False),
    "span_id": (str, False),
    "parent_id": (str, True),
    "name": (str, False),
    "source": (str, False),
    "ph": (str, False),
    "t0": (float, False),
    "t1": (float, True),
    "args": (dict, True),
}

_ID = re.compile(r"^[0-9a-f]{4,32}$")


class TraceContext:
    """One request's identity: ``trace_id`` / ``span_id`` / ``parent_id``.

    Immutable; derive child contexts with :meth:`child` rather than
    mutating.  ``span_id`` names the span *this* holder is inside of —
    records written under the context use it as their ``parent_id``.
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: Optional[str] = None) -> None:
        for label, value in (("trace_id", trace_id), ("span_id", span_id)):
            if not _ID.match(value):
                raise ValueError(
                    f"{label} must be 4-32 lowercase hex chars, got {value!r}"
                )
        if parent_id is not None and not _ID.match(parent_id):
            raise ValueError(
                f"parent_id must be 4-32 lowercase hex chars, "
                f"got {parent_id!r}"
            )
        object.__setattr__(self, "trace_id", trace_id)
        object.__setattr__(self, "span_id", span_id)
        object.__setattr__(self, "parent_id", parent_id)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TraceContext is immutable")

    def child(self, span_id: Optional[str] = None) -> "TraceContext":
        """A context one level down: same trace, this span as parent."""
        return TraceContext(self.trace_id, span_id or _mint_id(),
                            parent_id=self.span_id)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TraceContext)
                and other.trace_id == self.trace_id
                and other.span_id == self.span_id
                and other.parent_id == self.parent_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceContext(trace_id={self.trace_id!r}, "
                f"span_id={self.span_id!r}, parent_id={self.parent_id!r})")


def _mint_id() -> str:
    return secrets.token_hex(8)


def mint_context() -> TraceContext:
    """A fresh root context (random ids from the OS, never from a
    simulation's ``SeedSequence``)."""
    return TraceContext(_mint_id(), _mint_id())


def parse_trace_header(value: str) -> TraceContext:
    """Parse an ``X-Pckpt-Trace`` header: ``<trace_id>[-<span_id>]``.

    With a caller span id the server's root span becomes its child
    (``parent_id`` = the caller's span); with a bare trace id the
    server's span is the root.  Raises ``ValueError`` on malformed
    input.
    """
    value = value.strip().lower()
    trace_id, sep, caller_span = value.partition("-")
    if not _ID.match(trace_id):
        raise ValueError(
            f"malformed trace header {value!r}: trace_id must be "
            "4-32 lowercase hex chars"
        )
    if sep and not _ID.match(caller_span):
        raise ValueError(
            f"malformed trace header {value!r}: span_id must be "
            "4-32 lowercase hex chars"
        )
    return TraceContext(trace_id, _mint_id(),
                        parent_id=caller_span or None)


def format_trace_header(ctx: TraceContext) -> str:
    """The wire form of *ctx*: ``<trace_id>-<span_id>``."""
    return f"{ctx.trace_id}-{ctx.span_id}"


_active = threading.local()


def current() -> Optional[TraceContext]:
    """The thread's active context, or ``None`` (the common, free case)."""
    return getattr(_active, "ctx", None)


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make *ctx* the thread's active context for the ``with`` body.

    Nests (the previous context is restored on exit); ``activate(None)``
    is a no-op pass-through so callers need not branch.
    """
    if ctx is None:
        yield None
        return
    previous = current()
    _active.ctx = ctx
    try:
        yield ctx
    finally:
        _active.ctx = previous


def trace_fragment_dir(store_root: Union[str, Path],
                       trace_id: str) -> Path:
    """``<store>/obs/trace/<trace_id>`` — where fragments for one trace
    live (not created; writers create it lazily on first span)."""
    return Path(store_root) / TRACE_DIRNAME / trace_id


class SpanWriter:
    """Append-only span-fragment writer for **one** process/role.

    Opens lazily on first span (constructing a writer that never emits
    costs nothing but the object), appends one JSON line per record,
    and flushes per line so a crash loses at most the open span.  One
    file per process/role is the concurrency discipline — never share a
    ``SpanWriter`` path across processes.
    """

    def __init__(self, path: Union[str, os.PathLike], trace_id: str,
                 source: str) -> None:
        self.path = Path(path)
        self.trace_id = trace_id
        self.source = source
        self._fp: Optional[IO[str]] = None

    def _emit(self, record: Dict[str, object]) -> Dict[str, object]:
        if self._fp is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fp = open(self.path, "a", encoding="utf-8")
        self._fp.write(json.dumps(record, separators=(",", ":"),
                                  sort_keys=True))
        self._fp.write("\n")
        self._fp.flush()
        return record

    def span(self, name: str, t0: float, t1: float,
             parent_id: Optional[str] = None,
             span_id: Optional[str] = None,
             args: Optional[Dict[str, object]] = None
             ) -> Dict[str, object]:
        """One complete span: wall-clock ``[t0, t1]`` epoch seconds."""
        return self._emit({
            "kind": SPAN_KIND,
            "schema_version": SPAN_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "span_id": span_id or _mint_id(),
            "parent_id": parent_id,
            "name": name,
            "source": self.source,
            "ph": "X",
            "t0": float(t0),
            "t1": float(t1),
            "args": args,
        })

    def instant(self, name: str, t: float,
                parent_id: Optional[str] = None,
                args: Optional[Dict[str, object]] = None
                ) -> Dict[str, object]:
        """One instant event at wall-clock epoch second *t*."""
        return self._emit({
            "kind": SPAN_KIND,
            "schema_version": SPAN_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "span_id": _mint_id(),
            "parent_id": parent_id,
            "name": name,
            "source": self.source,
            "ph": "i",
            "t0": float(t),
            "t1": None,
            "args": args,
        })

    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "SpanWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_spans(path: Union[str, Path]) -> list:
    """All span records in one fragment file, in append order.

    Tolerates a torn final line (a writer may have died mid-append).
    """
    out = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break
            raise
    return out
