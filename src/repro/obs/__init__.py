"""Deep observability: attribution profiling, causal timelines, telemetry.

Three coordinated layers over the tracing/metrics substrate of
:mod:`repro.des` (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.profiler` — exact per-process / per-event-kind
  accounting of simulated and wall-clock time inside the DES kernel
  (``pckpt profile``);
* :mod:`repro.obs.timeline` — failure→action causal chains stitched
  from provenance-annotated trace records (``pckpt timeline``);
* :mod:`repro.obs.telemetry` — streaming campaign snapshots with an
  OpenMetrics exposition (``pckpt top``).
"""

from .profiler import (PROFILE_KIND, PROFILE_SCHEMA_VERSION, KernelProfiler,
                       ProfileEntry)
from .telemetry import (OBS_SCHEMA_VERSION, TELEMETRY_FILENAME,
                        TELEMETRY_KIND, CampaignTelemetry, format_top,
                        latest_snapshot, read_telemetry, render_openmetrics)
from .timeline import (TIMELINE_CHAIN_KINDS, TIMELINE_KIND,
                       TIMELINE_SCHEMA_VERSION, CausalChain,
                       extract_timelines, format_timelines,
                       timelines_to_jsonl)

__all__ = [
    "KernelProfiler",
    "ProfileEntry",
    "PROFILE_KIND",
    "PROFILE_SCHEMA_VERSION",
    "CausalChain",
    "TIMELINE_CHAIN_KINDS",
    "TIMELINE_KIND",
    "TIMELINE_SCHEMA_VERSION",
    "extract_timelines",
    "format_timelines",
    "timelines_to_jsonl",
    "CampaignTelemetry",
    "OBS_SCHEMA_VERSION",
    "TELEMETRY_FILENAME",
    "TELEMETRY_KIND",
    "format_top",
    "latest_snapshot",
    "read_telemetry",
    "render_openmetrics",
]
