"""Deep observability: profiling, timelines, telemetry, tracing, SLOs.

Coordinated layers over the tracing/metrics substrate of
:mod:`repro.des` (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.profiler` — exact per-process / per-event-kind
  accounting of simulated and wall-clock time inside the DES kernel
  (``pckpt profile``);
* :mod:`repro.obs.timeline` — failure→action causal chains stitched
  from provenance-annotated trace records (``pckpt timeline``);
* :mod:`repro.obs.telemetry` — streaming campaign snapshots with an
  OpenMetrics exposition (``pckpt top``);
* :mod:`repro.obs.context` — cross-layer trace-context propagation
  (``X-Pckpt-Trace`` → job → campaign → kernel spans);
* :mod:`repro.obs.stitch` — multi-process fragments of one trace id
  reassembled into a single Chrome trace (``pckpt obs stitch``);
* :mod:`repro.obs.slo` — per-tenant latency/error/cache SLOs with
  burn-rate grading (``pckpt obs slo``, labeled ``/metrics`` series);
* :mod:`repro.obs.gantt` — schedule Gantt/occupancy exports over the
  batch-queue engine's placement records (``pckpt sched gantt``).

Everything importable here is stdlib-only; numpy-backed layers are
reached lazily (``repro.obs.gantt.run_gantt`` imports the scheduler at
call time), so the observability plane costs nothing when disabled.
"""

from .context import (SPAN_FIELDS, SPAN_KIND, SPAN_SCHEMA_VERSION,
                      TRACE_HEADER, SpanWriter, TraceContext, activate,
                      current, format_trace_header, mint_context,
                      parse_trace_header, trace_fragment_dir)
from .gantt import (GANTT_FIELDS, GANTT_KIND, GANTT_ROW_FIELDS,
                    GANTT_SCHEMA_VERSION, build_gantt, format_gantt,
                    gantt_to_chrome, run_gantt)
from .profiler import (PROFILE_KIND, PROFILE_SCHEMA_VERSION, KernelProfiler,
                       ProfileEntry)
from .slo import (DEFAULT_WINDOW_SECONDS, SLO_FIELDS, SLO_KIND,
                  SLO_SCHEMA_VERSION, SLO_STATUSES, SLOObjectives,
                  compute_slo, format_slo, load_job_records,
                  render_slo_metrics)
from .stitch import collect_trace, list_traces, resolve_job_trace, \
    stitch_chrome
from .telemetry import (OBS_SCHEMA_VERSION, OPENMETRICS_CONTENT_TYPE,
                        TELEMETRY_FILENAME, TELEMETRY_KIND,
                        CampaignTelemetry, format_top, latest_snapshot,
                        read_telemetry, render_openmetrics)
from .timeline import (TIMELINE_CHAIN_KINDS, TIMELINE_KIND,
                       TIMELINE_SCHEMA_VERSION, CausalChain,
                       extract_timelines, format_timelines,
                       timelines_to_jsonl)

__all__ = [
    "KernelProfiler",
    "ProfileEntry",
    "PROFILE_KIND",
    "PROFILE_SCHEMA_VERSION",
    "CausalChain",
    "TIMELINE_CHAIN_KINDS",
    "TIMELINE_KIND",
    "TIMELINE_SCHEMA_VERSION",
    "extract_timelines",
    "format_timelines",
    "timelines_to_jsonl",
    "CampaignTelemetry",
    "OBS_SCHEMA_VERSION",
    "OPENMETRICS_CONTENT_TYPE",
    "TELEMETRY_FILENAME",
    "TELEMETRY_KIND",
    "format_top",
    "latest_snapshot",
    "read_telemetry",
    "render_openmetrics",
    "TraceContext",
    "SPAN_FIELDS",
    "SPAN_KIND",
    "SPAN_SCHEMA_VERSION",
    "TRACE_HEADER",
    "SpanWriter",
    "activate",
    "current",
    "format_trace_header",
    "mint_context",
    "parse_trace_header",
    "trace_fragment_dir",
    "collect_trace",
    "list_traces",
    "resolve_job_trace",
    "stitch_chrome",
    "SLOObjectives",
    "SLO_FIELDS",
    "SLO_KIND",
    "SLO_SCHEMA_VERSION",
    "SLO_STATUSES",
    "DEFAULT_WINDOW_SECONDS",
    "compute_slo",
    "format_slo",
    "load_job_records",
    "render_slo_metrics",
    "GANTT_FIELDS",
    "GANTT_KIND",
    "GANTT_ROW_FIELDS",
    "GANTT_SCHEMA_VERSION",
    "build_gantt",
    "format_gantt",
    "gantt_to_chrome",
    "run_gantt",
]
