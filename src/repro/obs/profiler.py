"""Attribution profiler for the DES kernel.

:class:`KernelProfiler` answers "where did the time go?" with exact
per-process and per-event-kind accounting of both *simulated* time and
*wall-clock* time spent dispatching events.  The kernel hooks live in
:mod:`repro.des.core`: ``Environment.run`` dispatches to an instrumented
twin loop (``_run_profiled``) when a profiler is attached, and
``Environment.step`` records the same attribution per event — so all
three inlined run-loop variants and manual stepping produce identical
attributions for the same schedule.

Attribution model
-----------------
Each dispatched event contributes one sample keyed ``(owner, kind)``:

``owner``
    The :attr:`~repro.des.process.Process.name` of the process whose
    bound resume method is the event's first callback — i.e. the process
    that was *waiting on* the event — or :data:`~repro.des.core.KERNEL_OWNER`
    (``"kernel"``) for condition checks, bare events, and clock idle
    advances.
``kind``
    The event's class name (``Timeout``, ``Initialize``, ``StoreGet``, …),
    plus the synthetic ``idle`` kind for clock advances past the last
    event of a bounded run.

and carries three columns:

``count``   dispatches (sums to ``Environment.events_processed``),
``sim``     clock delta produced by the pop (sums to ``now - initial_time``
            *exactly* — this is the accounting identity the acceptance
            tests pin against :class:`~repro.analysis.metrics.OverheadBreakdown`),
``wall``    perf-counter seconds inside callback dispatch (sums to
            slightly less than ``Environment.wall_seconds``, which also
            covers heap pops and loop bookkeeping).

Determinism: ``count`` and ``sim`` are pure functions of the schedule and
therefore bit-identical across runs and across the four dispatch paths;
``wall`` is measurement and varies.

Exports: :meth:`KernelProfiler.collapsed_stacks` emits Brendan-Gregg
collapsed-stack lines (``owner;kind value``) consumable by any flamegraph
renderer, and :func:`repro.des.monitor.Trace.to_chrome_trace` accepts a
profiler to add per-owner tracks to the Chrome trace.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Optional, Tuple, Union

from ..des.core import KERNEL_OWNER

__all__ = ["KernelProfiler", "ProfileEntry", "PROFILE_SCHEMA_VERSION", "PROFILE_KIND"]

#: Schema version of the JSON payload written by :meth:`KernelProfiler.to_json`.
PROFILE_SCHEMA_VERSION: int = 1

#: Payload discriminator, mirroring the bench harness convention.
PROFILE_KIND: str = "pckpt-profile"


class ProfileEntry:
    """One ``(owner, kind)`` attribution row."""

    __slots__ = ("owner", "kind", "count", "wall_seconds", "sim_seconds")

    def __init__(
        self, owner: str, kind: str, count: int, wall_seconds: float, sim_seconds: float
    ) -> None:
        self.owner = owner
        self.kind = kind
        self.count = count
        self.wall_seconds = wall_seconds
        self.sim_seconds = sim_seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProfileEntry({self.owner!r}, {self.kind!r}, count={self.count}, "
            f"wall={self.wall_seconds:.6f}, sim={self.sim_seconds:.6f})"
        )


class KernelProfiler:
    """Accumulates per-``(owner, kind)`` attribution samples.

    The kernel calls :meth:`record` once per dispatched event; everything
    else here is read-side aggregation and export.  A single profiler may
    be attached to several environments in sequence (attributions
    accumulate) — call :meth:`reset` between measurements instead of
    re-allocating if identity matters to the caller.
    """

    __slots__ = ("_acc",)

    def __init__(self) -> None:
        # (owner, kind) -> [count, wall_seconds, sim_seconds]
        self._acc: Dict[Tuple[str, str], List[float]] = {}

    # -- recording (hot when attached) -----------------------------------
    def record(self, owner: str, kind: str, wall: float, sim: float) -> None:
        """Add one sample.  Called by the kernel per dispatched event."""
        key = (owner, kind)
        entry = self._acc.get(key)
        if entry is None:
            self._acc[key] = [1, wall, sim]
        else:
            entry[0] += 1
            entry[1] += wall
            entry[2] += sim

    def merge(self, other: "KernelProfiler") -> None:
        """Fold *other*'s samples into this profiler (deterministic sums)."""
        for key, (count, wall, sim) in other._acc.items():
            entry = self._acc.get(key)
            if entry is None:
                self._acc[key] = [count, wall, sim]
            else:
                entry[0] += count
                entry[1] += wall
                entry[2] += sim

    def reset(self) -> None:
        """Drop all samples."""
        self._acc.clear()

    # -- aggregation ------------------------------------------------------
    def entries(self) -> List[ProfileEntry]:
        """All rows, sorted by descending wall time then owner/kind."""
        rows = [
            ProfileEntry(owner, kind, int(c), w, s)
            for (owner, kind), (c, w, s) in self._acc.items()
        ]
        rows.sort(key=lambda e: (-e.wall_seconds, e.owner, e.kind))
        return rows

    def by_kind(self) -> Dict[str, ProfileEntry]:
        """Rows aggregated over owners, keyed by event kind."""
        out: Dict[str, ProfileEntry] = {}
        for (owner, kind), (c, w, s) in sorted(self._acc.items()):
            entry = out.get(kind)
            if entry is None:
                out[kind] = ProfileEntry(KERNEL_OWNER, kind, int(c), w, s)
            else:
                entry.count += int(c)
                entry.wall_seconds += w
                entry.sim_seconds += s
        return out

    def by_owner(self) -> Dict[str, ProfileEntry]:
        """Rows aggregated over kinds, keyed by owning process name."""
        out: Dict[str, ProfileEntry] = {}
        for (owner, kind), (c, w, s) in sorted(self._acc.items()):
            entry = out.get(owner)
            if entry is None:
                out[owner] = ProfileEntry(owner, "*", int(c), w, s)
            else:
                entry.count += int(c)
                entry.wall_seconds += w
                entry.sim_seconds += s
        return out

    def total_count(self) -> int:
        """Total dispatched events (== ``Environment.events_processed``),
        excluding synthetic ``idle`` rows which are clock advances, not
        event dispatches."""
        return sum(
            int(c) for (owner, kind), (c, _, _) in self._acc.items() if kind != "idle"
        )

    def total_wall_seconds(self) -> float:
        """Total attributed wall seconds (≤ ``Environment.wall_seconds``)."""
        return sum(w for _, w, _ in self._acc.values())

    def total_sim_seconds(self) -> float:
        """Total attributed simulated seconds (== ``now - initial_time``)."""
        return sum(s for _, _, s in self._acc.values())

    # -- export -----------------------------------------------------------
    def collapsed_stacks(self, weight: str = "wall") -> str:
        """Collapsed-stack text (``owner;kind value`` per line).

        *weight* selects the value column: ``"wall"`` (microseconds of
        wall time), ``"sim"`` (microseconds of simulated time) or
        ``"count"``.  Feed the output to any flamegraph renderer
        (e.g. ``flamegraph.pl`` or speedscope's collapsed importer).
        """
        if weight not in ("wall", "sim", "count"):
            raise ValueError(f"unknown weight {weight!r}; use wall, sim or count")
        lines = []
        for (owner, kind), (c, w, s) in sorted(self._acc.items()):
            if weight == "count":
                value = int(c)
            else:
                value = int(round((w if weight == "wall" else s) * 1e6))
            lines.append(f"{owner};{kind} {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def format_table(self) -> str:
        """Human-readable attribution table, widest wall consumers first."""
        rows = self.entries()
        total_wall = self.total_wall_seconds() or 1.0
        header = (
            f"{'owner':<24} {'kind':<16} {'count':>10} "
            f"{'wall_ms':>12} {'wall_%':>7} {'sim_s':>14}"
        )
        lines = [header, "-" * len(header)]
        for e in rows:
            lines.append(
                f"{e.owner:<24} {e.kind:<16} {e.count:>10d} "
                f"{e.wall_seconds * 1e3:>12.3f} "
                f"{100.0 * e.wall_seconds / total_wall:>6.1f}% "
                f"{e.sim_seconds:>14.6f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<24} {'':<16} {self.total_count():>10d} "
            f"{self.total_wall_seconds() * 1e3:>12.3f} {'100.0%':>7} "
            f"{self.total_sim_seconds():>14.6f}"
        )
        return "\n".join(lines)

    def snapshot(self) -> Dict[str, object]:
        """Picklable/JSON-able payload (schema-versioned like ``BENCH``)."""
        return {
            "kind": PROFILE_KIND,
            "schema_version": PROFILE_SCHEMA_VERSION,
            "entries": [
                {
                    "owner": owner,
                    "event_kind": kind,
                    "count": int(c),
                    "wall_seconds": w,
                    "sim_seconds": s,
                }
                for (owner, kind), (c, w, s) in sorted(self._acc.items())
            ],
            "totals": {
                "count": self.total_count(),
                "wall_seconds": self.total_wall_seconds(),
                "sim_seconds": self.total_sim_seconds(),
            },
        }

    @classmethod
    def from_snapshot(cls, payload: Dict[str, object]) -> "KernelProfiler":
        """Rebuild a profiler from :meth:`snapshot` output."""
        if payload.get("kind") != PROFILE_KIND:
            raise ValueError(f"not a {PROFILE_KIND} payload: kind={payload.get('kind')!r}")
        if payload.get("schema_version") != PROFILE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported profile schema_version {payload.get('schema_version')!r}"
            )
        prof = cls()
        for row in payload["entries"]:  # type: ignore[index]
            prof._acc[(row["owner"], row["event_kind"])] = [
                int(row["count"]),
                float(row["wall_seconds"]),
                float(row["sim_seconds"]),
            ]
        return prof

    def to_json(self, path_or_fp: Union[str, IO[str]]) -> None:
        """Write :meth:`snapshot` as JSON to a path or open text file."""
        payload = self.snapshot()
        if hasattr(path_or_fp, "write"):
            json.dump(payload, path_or_fp, indent=2, sort_keys=True)  # type: ignore[arg-type]
        else:
            with open(path_or_fp, "w", encoding="utf-8") as fp:  # type: ignore[arg-type]
                json.dump(payload, fp, indent=2, sort_keys=True)
