"""Per-tenant SLOs computed from service job records.

The service (PR 7) admits jobs for many tenants; this module turns its
job records into per-tenant service-level indicators over a rolling
window — job latency p50/p99 (submit → finish), queue wait p50/p99
(submit → start), error rate, and mean cache-hit rate — and grades
them against configurable objectives with a **burn rate** per
objective (observed / budget; ≥ 1.0 means the objective is being
violated right now).  Status is the worst objective's grade:

    ok       every burn rate < 0.5
    warn     some burn rate in [0.5, 1.0)
    breach   some burn rate ≥ 1.0

Inputs are plain :data:`~repro.service.jobs.JOB_FIELDS`-shaped dicts,
so the same code serves both the **live** path (the service's
``/metrics`` exposition renders labeled ``pckpt_tenant_*`` series from
its in-memory jobs via :func:`render_slo_metrics`) and the **offline**
path (``pckpt obs slo <store>`` loads the ``job.json`` records the
service persists under ``<store>/service/jobs/<id>/``).

Rows follow the declarative-table convention (:data:`SLO_FIELDS`,
``SLO_SCHEMA_VERSION``) shared with ``docs/OBSERVABILITY.md`` and
``tools/check_obs_schema.py``.  Everything here is stdlib-only.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "SLO_SCHEMA_VERSION",
    "SLO_KIND",
    "SLO_FIELDS",
    "SLO_STATUSES",
    "DEFAULT_WINDOW_SECONDS",
    "SLOObjectives",
    "compute_slo",
    "load_job_records",
    "render_slo_metrics",
    "format_slo",
]

#: Schema version stamped on every SLO row (bump on layout change).
SLO_SCHEMA_VERSION: int = 1

#: Record discriminator for SLO rows.
SLO_KIND: str = "pckpt-slo"

#: Default rolling window over job records.
DEFAULT_WINDOW_SECONDS: float = 3600.0

#: Worst-objective grades, in increasing severity.
SLO_STATUSES = ("ok", "warn", "breach")

#: SLO-row fields: ``{name: (type, nullable)}`` — the single source of
#: truth shared with ``tools/check_obs_schema.py`` and the docs.
#: Quantile indicators are null until at least one job reaches the
#: needed lifecycle point inside the window; burn rates are null when
#: the matching objective is unset.
SLO_FIELDS: Dict[str, tuple] = {
    "kind": (str, False),
    "schema_version": (int, False),
    "tenant": (str, False),
    "window_seconds": (float, False),
    "jobs_total": (int, False),
    "jobs_done": (int, False),
    "jobs_failed": (int, False),
    "latency_p50_seconds": (float, True),
    "latency_p99_seconds": (float, True),
    "queue_wait_p50_seconds": (float, True),
    "queue_wait_p99_seconds": (float, True),
    "error_rate": (float, False),
    "cache_hit_rate": (float, True),
    "objective_latency_p99_seconds": (float, True),
    "objective_error_rate": (float, True),
    "latency_burn_rate": (float, True),
    "error_burn_rate": (float, True),
    "status": (str, False),
}


class SLOObjectives:
    """Per-tenant objectives (one set applies to every tenant).

    ``latency_p99_seconds``: p99 job latency must stay below this.
    ``error_rate``: the error budget — fraction of terminal jobs
    allowed to fail.  Either may be ``None`` (unset: the matching burn
    rate is null and cannot breach).
    """

    __slots__ = ("latency_p99_seconds", "error_rate")

    def __init__(self, latency_p99_seconds: Optional[float] = None,
                 error_rate: Optional[float] = None) -> None:
        for label, value in (("latency_p99_seconds", latency_p99_seconds),
                             ("error_rate", error_rate)):
            if value is not None and float(value) <= 0.0:
                raise ValueError(f"{label} objective must be > 0, "
                                 f"got {value!r}")
        self.latency_p99_seconds = latency_p99_seconds
        self.error_rate = error_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SLOObjectives(latency_p99_seconds="
                f"{self.latency_p99_seconds!r}, "
                f"error_rate={self.error_rate!r})")


def _percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of a non-empty sample (0 ≤ q ≤ 1)."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def _burn(observed: Optional[float],
          objective: Optional[float]) -> Optional[float]:
    if observed is None or objective is None:
        return None
    return float(observed) / float(objective)


def compute_slo(records: Sequence[Dict[str, object]],
                window_seconds: float = DEFAULT_WINDOW_SECONDS,
                objectives: Optional[SLOObjectives] = None,
                now: Optional[float] = None) -> List[Dict[str, object]]:
    """One :data:`SLO_FIELDS` row per tenant seen inside the window.

    *records* are job records (``JOB_FIELDS`` shape).  A job is in the
    window when its reference time — ``finished_at`` for terminal
    jobs, ``submitted_at`` otherwise — is within *window_seconds* of
    *now* (default: the newest reference time across *records*, so
    offline analysis of old artifacts sees its own "now").  Rows are
    sorted by tenant.
    """
    objectives = objectives or SLOObjectives()
    refs = [
        float(rec.get("finished_at") or rec.get("submitted_at") or 0.0)
        for rec in records
    ]
    if now is None:
        now = max(refs) if refs else time.time()
    cutoff = now - float(window_seconds)

    by_tenant: Dict[str, List[Dict[str, object]]] = {}
    for rec, ref in zip(records, refs):
        if ref < cutoff:
            continue
        by_tenant.setdefault(str(rec.get("tenant", "anonymous")),
                             []).append(rec)

    rows: List[Dict[str, object]] = []
    for tenant in sorted(by_tenant):
        jobs = by_tenant[tenant]
        done = [j for j in jobs if j.get("state") == "done"]
        failed = [j for j in jobs if j.get("state") == "failed"]
        latencies = [
            float(j["finished_at"]) - float(j["submitted_at"])
            for j in done + failed
            if j.get("finished_at") is not None
            and j.get("submitted_at") is not None
        ]
        waits = [
            float(j["started_at"]) - float(j["submitted_at"])
            for j in jobs
            if j.get("started_at") is not None
            and j.get("submitted_at") is not None
        ]
        hits = [
            float(j["cache_hit_rate"]) for j in done
            if j.get("cache_hit_rate") is not None
        ]
        terminal = len(done) + len(failed)
        error_rate = (len(failed) / terminal) if terminal else 0.0
        latency_p99 = _percentile(latencies, 0.99) if latencies else None
        latency_burn = _burn(latency_p99, objectives.latency_p99_seconds)
        error_burn = _burn(error_rate if terminal else None,
                           objectives.error_rate)
        burns = [b for b in (latency_burn, error_burn) if b is not None]
        if any(b >= 1.0 for b in burns):
            status = "breach"
        elif any(b >= 0.5 for b in burns):
            status = "warn"
        else:
            status = "ok"
        rows.append({
            "kind": SLO_KIND,
            "schema_version": SLO_SCHEMA_VERSION,
            "tenant": tenant,
            "window_seconds": float(window_seconds),
            "jobs_total": len(jobs),
            "jobs_done": len(done),
            "jobs_failed": len(failed),
            "latency_p50_seconds":
                _percentile(latencies, 0.50) if latencies else None,
            "latency_p99_seconds": latency_p99,
            "queue_wait_p50_seconds":
                _percentile(waits, 0.50) if waits else None,
            "queue_wait_p99_seconds":
                _percentile(waits, 0.99) if waits else None,
            "error_rate": error_rate,
            "cache_hit_rate":
                (sum(hits) / len(hits)) if hits else None,
            "objective_latency_p99_seconds":
                objectives.latency_p99_seconds,
            "objective_error_rate": objectives.error_rate,
            "latency_burn_rate": latency_burn,
            "error_burn_rate": error_burn,
            "status": status,
        })
    return rows


def load_job_records(store_root: Union[str, Path]
                     ) -> List[Dict[str, object]]:
    """The persisted ``job.json`` records under ``<store>/service/jobs``.

    Sorted by ``submitted_at`` (unreadable files are skipped — a
    service may be writing concurrently).
    """
    out: List[Dict[str, object]] = []
    jobs_dir = Path(store_root) / "service" / "jobs"
    if not jobs_dir.is_dir():
        return out
    for path in sorted(jobs_dir.glob("*/job.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict):
            out.append(record)
    out.sort(key=lambda rec: rec.get("submitted_at") or 0.0)
    return out


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def render_slo_metrics(rows: Sequence[Dict[str, object]]) -> List[str]:
    """OpenMetrics lines for the labeled per-tenant series.

    Returns lines **without** the ``# EOF`` terminator — the caller
    (the service's ``/metrics`` renderer, or ``pckpt obs slo
    --openmetrics``) owns exposition framing.
    """
    lines: List[str] = []

    def family(name: str, metric_type: str = "gauge") -> None:
        lines.append(f"# TYPE {name} {metric_type}")

    family("pckpt_tenant_jobs")
    for row in rows:
        tenant = _escape(str(row["tenant"]))
        for state, count in (("done", row["jobs_done"]),
                             ("failed", row["jobs_failed"]),
                             ("active",
                              int(row["jobs_total"]) - int(row["jobs_done"])
                              - int(row["jobs_failed"]))):
            lines.append(
                f'pckpt_tenant_jobs{{tenant="{tenant}",state="{state}"}} '
                f"{int(count)}"
            )
    for metric, p50_key, p99_key in (
        ("pckpt_tenant_job_latency_seconds",
         "latency_p50_seconds", "latency_p99_seconds"),
        ("pckpt_tenant_queue_wait_seconds",
         "queue_wait_p50_seconds", "queue_wait_p99_seconds"),
    ):
        family(metric)
        for row in rows:
            tenant = _escape(str(row["tenant"]))
            for quantile, key in (("0.5", p50_key), ("0.99", p99_key)):
                value = row[key]
                if value is None:
                    continue
                lines.append(
                    f'{metric}{{tenant="{tenant}",quantile="{quantile}"}} '
                    f"{float(value):g}"
                )
    family("pckpt_tenant_error_rate")
    for row in rows:
        lines.append(
            f'pckpt_tenant_error_rate{{tenant="{_escape(str(row["tenant"]))}"}} '
            f"{float(row['error_rate']):g}"
        )
    family("pckpt_tenant_cache_hit_rate")
    for row in rows:
        if row["cache_hit_rate"] is None:
            continue
        lines.append(
            f'pckpt_tenant_cache_hit_rate{{tenant="{_escape(str(row["tenant"]))}"}} '
            f"{float(row['cache_hit_rate']):g}"
        )
    family("pckpt_tenant_slo_burn_rate")
    for row in rows:
        tenant = _escape(str(row["tenant"]))
        for objective, key in (("latency_p99", "latency_burn_rate"),
                               ("error_rate", "error_burn_rate")):
            value = row[key]
            if value is None:
                continue
            lines.append(
                f'pckpt_tenant_slo_burn_rate{{tenant="{tenant}",'
                f'objective="{objective}"}} {float(value):g}'
            )
    family("pckpt_tenant_slo_status")
    for row in rows:
        tenant = _escape(str(row["tenant"]))
        for status in SLO_STATUSES:
            flag = 1 if row["status"] == status else 0
            lines.append(
                f'pckpt_tenant_slo_status{{tenant="{tenant}",'
                f'status="{status}"}} {flag}'
            )
    return lines


def _fmt(value: Optional[float], suffix: str = "s") -> str:
    return "--" if value is None else f"{float(value):.2f}{suffix}"


def format_slo(rows: Sequence[Dict[str, object]]) -> str:
    """Terminal table for ``pckpt obs slo`` (one line per tenant)."""
    if not rows:
        return "pckpt obs slo: no job records (has the service run?)"
    header = (f"{'TENANT':<16} {'JOBS':>5} {'DONE':>5} {'FAIL':>5} "
              f"{'LAT p50':>9} {'LAT p99':>9} {'WAIT p99':>9} "
              f"{'ERR':>6} {'HIT':>6} {'BURN':>6} STATUS")
    out = [header]
    for row in rows:
        burns = [b for b in (row["latency_burn_rate"],
                             row["error_burn_rate"]) if b is not None]
        burn = f"{max(burns):.2f}" if burns else "--"
        hit = row["cache_hit_rate"]
        out.append(
            f"{str(row['tenant']):<16} {row['jobs_total']:>5} "
            f"{row['jobs_done']:>5} {row['jobs_failed']:>5} "
            f"{_fmt(row['latency_p50_seconds']):>9} "
            f"{_fmt(row['latency_p99_seconds']):>9} "
            f"{_fmt(row['queue_wait_p99_seconds']):>9} "
            f"{float(row['error_rate']):>6.2f} "
            f"{('--' if hit is None else f'{float(hit):.2f}'):>6} "
            f"{burn:>6} {row['status']}"
        )
    return "\n".join(out)
