"""Live campaign telemetry: streaming JSONL snapshots + OpenMetrics text.

While a campaign runs, :class:`~repro.campaign.progress.CampaignProgress`
pushes a snapshot of the scheduler's state to a :class:`CampaignTelemetry`
sink after every observable event (cell cached/done, shard done/retried,
pool sized, campaign end).  The sink appends one JSON object per line to
``<store>/telemetry.jsonl`` and flushes each line, so a concurrent
``pckpt top`` (or any ``tail -f``) sees progress live.

Snapshot schema (``schema_version`` = :data:`OBS_SCHEMA_VERSION`,
validated by ``tools/check_obs_schema.py``)::

    kind                    "pckpt-telemetry"
    schema_version          2
    seq                     monotonic per-run snapshot counter
    trace_id                request trace id (null when untraced)
    state                   "running" | "done"
    elapsed_seconds         wall seconds since campaign start
    cells_total/_cached/_executed/_done
    replications_total/_cached/_executed
    shards_total/_completed/_retried
    workers                 pool width (0 until the pool is sized)
    worker_utilization      fraction of pool slots with work available
    cache_hit_rate          cached replications / total replications
    eta_seconds             remaining/rate estimate (null before any
                            executed replication lands)

Derived fields are estimates for operators, not accounting: the
deterministic source of truth stays the ``campaign.*`` metrics counters
(``docs/OBSERVABILITY.md``).  :func:`render_openmetrics` turns any
snapshot into an OpenMetrics text exposition for scrape-style ingestion.
"""

from __future__ import annotations

import json
import os
from typing import IO, Dict, List, Optional, Union

__all__ = [
    "OBS_SCHEMA_VERSION",
    "TELEMETRY_KIND",
    "TELEMETRY_FILENAME",
    "OPENMETRICS_CONTENT_TYPE",
    "CampaignTelemetry",
    "read_telemetry",
    "latest_snapshot",
    "render_openmetrics",
    "format_top",
]

#: Schema version of the telemetry JSONL records (bump on layout change).
#: Version 2 added the nullable ``trace_id`` request-correlation field.
OBS_SCHEMA_VERSION: int = 2

#: Record discriminator, mirroring the bench harness convention.
TELEMETRY_KIND: str = "pckpt-telemetry"

#: File name inside a campaign store's root directory.
TELEMETRY_FILENAME: str = "telemetry.jsonl"

#: The OpenMetrics media type (spec §"ABNF"): expositions MUST be
#: served with the version parameter, and MUST end with ``# EOF``.
OPENMETRICS_CONTENT_TYPE: str = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Snapshot fields, their types, and whether null is allowed — the
#: single source of truth shared with ``tools/check_obs_schema.py``.
SNAPSHOT_FIELDS: Dict[str, tuple] = {
    "kind": (str, False),
    "schema_version": (int, False),
    "seq": (int, False),
    "trace_id": (str, True),
    "state": (str, False),
    "elapsed_seconds": (float, False),
    "cells_total": (int, False),
    "cells_cached": (int, False),
    "cells_executed": (int, False),
    "cells_done": (int, False),
    "replications_total": (int, False),
    "replications_cached": (int, False),
    "replications_executed": (int, False),
    "shards_total": (int, False),
    "shards_completed": (int, False),
    "shards_retried": (int, False),
    "workers": (int, False),
    "worker_utilization": (float, False),
    "cache_hit_rate": (float, False),
    "eta_seconds": (float, True),
}


class CampaignTelemetry:
    """Append-only JSONL snapshot writer (one campaign run = one file).

    Parameters
    ----------
    path_or_fp:
        Target file path (truncated at construction — a telemetry file
        describes exactly one run) or an open text stream.
    trace_id:
        Request trace id stamped on every snapshot (``None`` for
        untraced local runs); see :mod:`repro.obs.context`.
    """

    def __init__(self, path_or_fp: Union[str, "os.PathLike[str]", IO[str]],
                 trace_id: Optional[str] = None) -> None:
        if hasattr(path_or_fp, "write"):
            self._fp: IO[str] = path_or_fp  # type: ignore[assignment]
            self._owns_fp = False
            self.path: Optional[str] = None
        else:
            self.path = os.fspath(path_or_fp)
            self._fp = open(self.path, "w", encoding="utf-8")
            self._owns_fp = True
        self.trace_id = trace_id
        self._seq = 0

    def write(self, snapshot: Dict[str, object]) -> Dict[str, object]:
        """Stamp *snapshot* with kind/schema/seq/trace, append it, flush."""
        record = dict(snapshot)
        record["kind"] = TELEMETRY_KIND
        record["schema_version"] = OBS_SCHEMA_VERSION
        record["seq"] = self._seq
        record["trace_id"] = self.trace_id
        self._seq += 1
        self._fp.write(json.dumps(record, separators=(",", ":"),
                                  sort_keys=True))
        self._fp.write("\n")
        self._fp.flush()
        return record

    def close(self) -> None:
        """Close the underlying file (no-op for caller-owned streams)."""
        if self._owns_fp:
            self._fp.close()


def read_telemetry(
    path_or_fp: Union[str, IO[str]]
) -> List[Dict[str, object]]:
    """All snapshots in a telemetry file, oldest first.

    Tolerates a torn final line (the writer may be mid-append).
    """
    def _read(fp: IO[str]) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail: writer still appending
        return out

    if isinstance(path_or_fp, (str, os.PathLike)):
        with open(path_or_fp, "r", encoding="utf-8") as fp:
            return _read(fp)
    return _read(path_or_fp)


def latest_snapshot(path: str) -> Optional[Dict[str, object]]:
    """The most recent snapshot in *path*, or ``None`` (missing/empty)."""
    if not os.path.exists(path):
        return None
    snapshots = read_telemetry(path)
    return snapshots[-1] if snapshots else None


def render_openmetrics(snapshot: Dict[str, object]) -> str:
    """OpenMetrics text exposition of one snapshot.

    Numeric fields become ``pckpt_campaign_<field>`` gauges; the run
    state rides as a label on ``pckpt_campaign_info``.  Ends with the
    mandatory ``# EOF`` terminator.
    """
    lines: List[str] = [
        "# TYPE pckpt_campaign_info gauge",
        f'pckpt_campaign_info{{state="{snapshot.get("state", "unknown")}",'
        f'schema_version="{snapshot.get("schema_version", "?")}"}} 1',
    ]
    for field in sorted(SNAPSHOT_FIELDS):
        if field in ("kind", "state", "schema_version"):
            continue
        value = snapshot.get(field)
        if value is None or isinstance(value, str):
            continue
        name = f"pckpt_campaign_{field}"
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {float(value):g}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = max(float(seconds), 0.0)
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def format_top(snapshot: Optional[Dict[str, object]],
               path: Optional[str] = None) -> str:
    """Terminal dashboard for one snapshot (the ``pckpt top`` view)."""
    if snapshot is None:
        where = f" at {path}" if path else ""
        return f"pckpt top: no telemetry{where} (is a campaign running?)"
    cells_total = int(snapshot.get("cells_total", 0) or 0)
    cells_done = int(snapshot.get("cells_done", 0) or 0)
    frac = cells_done / cells_total if cells_total else 0.0
    bar_width = 30
    filled = int(round(frac * bar_width))
    bar = "#" * filled + "-" * (bar_width - filled)
    lines = [
        f"pckpt campaign [{snapshot.get('state', '?')}] "
        f"elapsed {float(snapshot.get('elapsed_seconds', 0.0)):.1f}s "
        f"eta {_fmt_eta(snapshot.get('eta_seconds'))}",  # type: ignore[arg-type]
        f"  cells  [{bar}] {cells_done}/{cells_total} "
        f"({snapshot.get('cells_cached', 0)} cached, "
        f"{snapshot.get('cells_executed', 0)} computed)",
        f"  reps   {snapshot.get('replications_executed', 0)} executed / "
        f"{snapshot.get('replications_cached', 0)} cached / "
        f"{snapshot.get('replications_total', 0)} total "
        f"(cache hit {100.0 * float(snapshot.get('cache_hit_rate', 0.0)):.1f}%)",
        f"  shards {snapshot.get('shards_completed', 0)}/"
        f"{snapshot.get('shards_total', 0)} done, "
        f"{snapshot.get('shards_retried', 0)} retried",
        f"  pool   {snapshot.get('workers', 0)} workers, "
        f"utilization {100.0 * float(snapshot.get('worker_utilization', 0.0)):.0f}%",
    ]
    return "\n".join(lines)
