"""Stitch one request's cross-process fragments into a Chrome trace.

A traced service request leaves artifacts in three places under the
store, written by three different layers (and as many processes as the
campaign pool used):

* **span fragments** — ``<store>/obs/trace/<trace_id>/*.jsonl``
  (:mod:`repro.obs.context`): the service's ``request`` root span, the
  campaign's ``campaign.run`` span, and one ``kernel.run`` span per
  replication from each pool worker;
* **job events** — ``<store>/service/jobs/<id>/events.ndjson``
  (:mod:`repro.service.jobs`): lifecycle + bridged telemetry events,
  each stamped with the job's ``trace_id``;
* **telemetry snapshots** — per-job ``telemetry.jsonl``
  (:mod:`repro.obs.telemetry`), likewise stamped.

:func:`collect_trace` gathers everything for one ``trace_id``;
:func:`stitch_chrome` lays it out as one Chrome-trace JSON file
(`Trace Event Format`) loadable in Perfetto / ``chrome://tracing``:
**one pid per process/role** (the fragment ``source``), the service
request as the root span, job lifecycle as instants on the request's
track, and bridged telemetry as counter tracks.  All timestamps are
wall-clock epoch seconds rebased to the earliest event — the one
timebase every process shares.

``pckpt obs stitch <store> --trace-id T`` (or ``--job J``, which
resolves the job's trace id first) is the CLI face of this module.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from .context import read_spans, trace_fragment_dir

__all__ = [
    "collect_trace",
    "resolve_job_trace",
    "stitch_chrome",
    "list_traces",
]


def list_traces(store_root: Union[str, Path]) -> List[str]:
    """Trace ids with at least one span fragment under *store_root*."""
    base = Path(store_root) / "obs" / "trace"
    if not base.is_dir():
        return []
    return sorted(
        entry.name for entry in base.iterdir()
        if entry.is_dir() and any(entry.glob("*.jsonl"))
    )


def resolve_job_trace(store_root: Union[str, Path],
                      job_id: str) -> Optional[str]:
    """The ``trace_id`` of a persisted service job, or ``None``."""
    path = Path(store_root) / "service" / "jobs" / job_id / "job.json"
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    trace_id = record.get("trace_id") if isinstance(record, dict) else None
    return trace_id if isinstance(trace_id, str) else None


def _read_ndjson(path: Path) -> List[Dict[str, object]]:
    out: List[Dict[str, object]] = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return out
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail: writer interrupted mid-append
            continue
        if isinstance(record, dict):
            out.append(record)
    return out


def collect_trace(store_root: Union[str, Path],
                  trace_id: str) -> Dict[str, object]:
    """Everything recorded for *trace_id* under *store_root*.

    Returns ``{"trace_id", "spans", "events", "telemetry"}`` — span
    fragments merged across files (ordered by start time), job events
    and telemetry snapshots filtered to the trace.
    """
    store_root = Path(store_root)
    spans: List[Dict[str, object]] = []
    frag_dir = trace_fragment_dir(store_root, trace_id)
    if frag_dir.is_dir():
        for path in sorted(frag_dir.glob("*.jsonl")):
            for record in read_spans(path):
                if record.get("trace_id") == trace_id:
                    spans.append(record)
    spans.sort(key=lambda rec: (rec.get("t0") or 0.0))

    events: List[Dict[str, object]] = []
    telemetry: List[Dict[str, object]] = []
    jobs_dir = store_root / "service" / "jobs"
    if jobs_dir.is_dir():
        for job_dir in sorted(p for p in jobs_dir.iterdir() if p.is_dir()):
            for record in _read_ndjson(job_dir / "events.ndjson"):
                if record.get("trace_id") == trace_id:
                    events.append(record)
            for record in _read_ndjson(job_dir / "telemetry.jsonl"):
                if record.get("trace_id") == trace_id:
                    telemetry.append(record)
    for record in _read_ndjson(store_root / "telemetry.jsonl"):
        if record.get("trace_id") == trace_id:
            telemetry.append(record)
    return {
        "trace_id": trace_id,
        "spans": spans,
        "events": events,
        "telemetry": telemetry,
    }


def stitch_chrome(collection: Dict[str, object],
                  path_or_fp: Union[str, os.PathLike, IO[str]],
                  time_scale: float = 1e6) -> int:
    """Write *collection* as one Chrome-trace JSON file.

    One pid per fragment ``source`` (the ``request`` span's source gets
    pid 1 and sorts first); job-lifecycle events ride the owning job's
    request track as instants; bridged telemetry becomes Chrome counter
    tracks.  Returns the number of trace events written.
    """
    trace_id = str(collection.get("trace_id", ""))
    spans = list(collection.get("spans") or [])
    events = list(collection.get("events") or [])
    telemetry_events = [
        record for record in events if record.get("event") == "telemetry"
    ]

    stamps = [float(rec["t0"]) for rec in spans if rec.get("t0") is not None]
    stamps += [float(rec["ts"]) for rec in events if rec.get("ts") is not None]
    base = min(stamps) if stamps else 0.0

    def rel(t: float) -> float:
        return (float(t) - base) * time_scale

    # pid per source; the root request's source first.
    sources: List[str] = []
    root_sources = [
        str(rec.get("source")) for rec in spans
        if rec.get("name") == "request"
    ]
    for name in root_sources:
        if name not in sources:
            sources.append(name)
    for rec in spans:
        name = str(rec.get("source"))
        if name not in sources:
            sources.append(name)
    for rec in events:
        name = f"service/{rec.get('job_id')}"
        if name not in sources:
            sources.append(name)
    pids = {name: i + 1 for i, name in enumerate(sources)}

    out: List[Dict[str, object]] = []
    for name, pid in pids.items():
        out.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": name}})
        out.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                    "tid": 0, "args": {"sort_index": pid}})

    for rec in spans:
        pid = pids[str(rec.get("source"))]
        args = dict(rec.get("args") or {})
        args.update({"trace_id": trace_id, "span_id": rec.get("span_id"),
                     "parent_id": rec.get("parent_id")})
        event: Dict[str, object] = {
            "name": rec.get("name"),
            "cat": "span",
            "pid": pid,
            "tid": 1,
            "ts": rel(rec["t0"]),
            "args": args,
        }
        if rec.get("ph") == "X" and rec.get("t1") is not None:
            event["ph"] = "X"
            event["dur"] = max(rel(rec["t1"]) - rel(rec["t0"]), 0.0)
        else:
            event["ph"] = "i"
            event["s"] = "p"
        out.append(event)

    for rec in events:
        if rec.get("event") == "telemetry":
            continue  # rendered as counters below
        pid = pids[f"service/{rec.get('job_id')}"]
        out.append({
            "name": f"job.{rec.get('event')}",
            "cat": "service",
            "ph": "i",
            "s": "p",
            "pid": pid,
            "tid": 1,
            "ts": rel(rec["ts"]),
            "args": {"trace_id": trace_id, "job_id": rec.get("job_id"),
                     "state": rec.get("state"), "seq": rec.get("seq")},
        })

    for rec in telemetry_events:
        data = rec.get("data") or {}
        if not isinstance(data, dict):
            continue
        pid = pids[f"service/{rec.get('job_id')}"]
        out.append({
            "name": "campaign.progress",
            "cat": "telemetry",
            "ph": "C",
            "pid": pid,
            "tid": 1,
            "ts": rel(rec["ts"]),
            "args": {
                "cells_done": data.get("cells_done", 0),
                "replications_executed":
                    data.get("replications_executed", 0),
                "replications_cached": data.get("replications_cached", 0),
            },
        })

    payload = {
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id, "time_scale": time_scale,
                      "base_epoch_seconds": base},
        "traceEvents": out,
    }
    if hasattr(path_or_fp, "write"):
        json.dump(payload, path_or_fp)  # type: ignore[arg-type]
    else:
        with open(os.fspath(path_or_fp), "w", encoding="utf-8") as fp:
            json.dump(payload, fp)
    return len(out)
