"""Schedule Gantt/occupancy exports: *see* a batch-queue run.

The PR-9 scheduler layer reports aggregate statistics (makespan,
utilization, wait percentiles), but a schedule is fundamentally a
picture: which jobs sat on which nodes when, where the backfill holes
were, where failures struck and drains ran.  This module renders one
traced replication of a workload × policy cell two ways:

* a **schema-versioned JSON payload** (:data:`GANTT_FIELDS` /
  :data:`GANTT_ROW_FIELDS`, validated by ``tools/check_obs_schema.py
  --gantt-file``): one row per job with its placement intervals and
  drain/failure overlay times — machine-readable ground truth for
  plotting or regression checks;
* a **Chrome-trace file** (Perfetto-viewable): one pid per node band
  (a distinct half-open node-id range some placement used), each job a
  complete ``X`` span on every band it occupied, with ``sched.drain``
  and ``sched.failure`` instants overlaid at their simulation times.

Overlay times come from the engine's own :class:`~repro.des.monitor.Trace`
(kinds ``sched.drain`` / ``sched.failure``), so the picture and the
kernel agree by construction.  ``pckpt sched gantt`` is the CLI face.
"""

from __future__ import annotations

import json
import os
from typing import IO, Any, Dict, List, Optional, Sequence, Union

__all__ = [
    "GANTT_SCHEMA_VERSION",
    "GANTT_KIND",
    "GANTT_FIELDS",
    "GANTT_ROW_FIELDS",
    "build_gantt",
    "run_gantt",
    "gantt_to_chrome",
    "format_gantt",
]

#: Schema version stamped on every Gantt payload (bump on layout change).
GANTT_SCHEMA_VERSION: int = 1

#: Record discriminator for Gantt payloads.
GANTT_KIND: str = "pckpt-gantt"

#: Payload fields: ``{name: (type, nullable)}`` — the single source of
#: truth shared with ``tools/check_obs_schema.py`` and the docs.
GANTT_FIELDS: Dict[str, tuple] = {
    "kind": (str, False),
    "schema_version": (int, False),
    "policy": (str, False),
    "seed": (int, False),
    "jobs": (int, False),
    "total_nodes": (int, False),
    "makespan_seconds": (float, False),
    "utilization": (float, False),
    "starved": (list, False),
    "rows": (list, False),
}

#: Per-job row fields.  ``start_s``/``end_s`` are null for starved
#: (never-placed) jobs; ``intervals`` are the half-open ``[lo, hi)``
#: node-id ranges the placement assigned; ``drain_times`` /
#: ``failure_times`` are the overlay instants from the engine trace.
GANTT_ROW_FIELDS: Dict[str, tuple] = {
    "id": (int, False),
    "name": (str, False),
    "user": (str, False),
    "model": (str, False),
    "nodes": (int, False),
    "submit_s": (float, False),
    "start_s": (float, True),
    "end_s": (float, True),
    "intervals": (list, False),
    "checkpoints": (int, False),
    "drains": (int, False),
    "drain_times": (list, False),
    "failure_times": (list, False),
}


def build_gantt(output, policy: str, total_nodes: int, seed: int,
                trace=None) -> Dict[str, Any]:
    """Assemble the :data:`GANTT_FIELDS` payload for one replication.

    *output* is a :class:`~repro.sched.engine.SchedRunOutput`; *trace*
    (optional) is the :class:`~repro.des.monitor.Trace` the run emitted
    into — its ``sched.drain`` / ``sched.failure`` instants become the
    per-job overlay times (empty lists without a trace).
    """
    drain_times: Dict[str, List[float]] = {}
    failure_times: Dict[str, List[float]] = {}
    if trace is not None:
        for rec in trace.filter(kind="sched.drain"):
            drain_times.setdefault(str(rec.detail), []).append(rec.time)
        for rec in trace.filter(kind="sched.failure"):
            failure_times.setdefault(str(rec.detail), []).append(rec.time)
    rows: List[Dict[str, Any]] = []
    for rec in output.records:
        job = rec.job
        rows.append({
            "id": job.id,
            "name": job.name,
            "user": job.user,
            "model": job.model,
            "nodes": job.nodes,
            "submit_s": float(job.arrival),
            "start_s": None if rec.start is None else float(rec.start),
            "end_s": None if rec.end is None else float(rec.end),
            "intervals": [[int(lo), int(hi)] for lo, hi in rec.intervals],
            "checkpoints": int(rec.checkpoints),
            "drains": int(rec.drains),
            "drain_times": sorted(drain_times.get(job.name, [])),
            "failure_times": sorted(failure_times.get(job.name, [])),
        })
    return {
        "kind": GANTT_KIND,
        "schema_version": GANTT_SCHEMA_VERSION,
        "policy": policy,
        "seed": int(seed),
        "jobs": len(rows),
        "total_nodes": int(total_nodes),
        "makespan_seconds": float(output.makespan_seconds),
        "utilization": float(output.utilization),
        "starved": list(output.starved),
        "rows": rows,
    }


def run_gantt(policy: str = "easy", n_jobs: int = 16, seed: int = 0,
              hours_scale: float = 0.1,
              interarrival_seconds: float = 900.0) -> Dict[str, Any]:
    """Run one traced replication of the baseline workload and export it.

    Same workload construction as the committed scheduler baseline
    (:func:`repro.sched.bench.run_baseline`), one replication, with an
    engine :class:`~repro.des.monitor.Trace` attached for the
    drain/failure overlays.  Deterministic in (policy, n_jobs, seed).
    """
    import numpy as np

    from ..des.monitor import Trace
    from ..failures.leadtime import PAPER_LEAD_TIME_MODEL
    from ..failures.predictor import DEFAULT_PREDICTOR
    from ..failures.weibull import TITAN_WEIBULL
    from ..platform.system import SUMMIT
    from ..sched.bench import BASELINE_MODELS
    from ..sched.engine import SchedSimulation
    from ..sched.workload import poisson_workload

    workload = poisson_workload(
        (), BASELINE_MODELS, n_jobs, seed=seed,
        interarrival_seconds=interarrival_seconds,
        hours_scale=hours_scale,
    )
    trace = Trace(env=None, enabled=True)  # engine re-binds trace.env
    sim = SchedSimulation(
        workload, policy=policy, platform=SUMMIT, weibull=TITAN_WEIBULL,
        lead_model=PAPER_LEAD_TIME_MODEL, predictor=DEFAULT_PREDICTOR,
        seed_seq=np.random.SeedSequence(entropy=seed, spawn_key=(0,)),
        trace=trace,
    )
    output = sim.run()
    return build_gantt(output, policy, SUMMIT.total_nodes, seed,
                       trace=trace)


def gantt_to_chrome(payload: Dict[str, Any],
                    path_or_fp: Union[str, os.PathLike, IO[str]],
                    time_scale: float = 1e6) -> int:
    """Write a Gantt payload as a Chrome-trace file (Perfetto-viewable).

    One pid per node band — a distinct ``[lo, hi)`` interval some
    placement used, ordered by node id — with each job a complete
    ``X`` span on every band it occupied and its drain/failure overlay
    instants on the same bands.  Simulation seconds are scaled by
    *time_scale* into the format's microsecond timestamps.  Returns
    the number of trace events written (metadata included).
    """
    bands: List[tuple] = []
    for row in payload["rows"]:
        for lo, hi in row["intervals"]:
            if (lo, hi) not in bands:
                bands.append((lo, hi))
    bands.sort()
    pids = {band: i + 1 for i, band in enumerate(bands)}

    events: List[Dict[str, Any]] = []
    for band, pid in pids.items():
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"nodes [{band[0]}, {band[1]})"},
        })
        events.append({
            "name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
            "args": {"sort_index": band[0]},
        })
    meta_count = len(events)
    for row in payload["rows"]:
        if row["start_s"] is None or row["end_s"] is None:
            continue
        args = {"user": row["user"], "model": row["model"],
                "nodes": row["nodes"], "checkpoints": row["checkpoints"],
                "drains": row["drains"], "wait_seconds":
                    row["start_s"] - row["submit_s"]}
        for lo, hi in row["intervals"]:
            pid = pids[(lo, hi)]
            events.append({
                "name": row["name"], "cat": "job", "ph": "X",
                "pid": pid, "tid": 1,
                "ts": row["start_s"] * time_scale,
                "dur": (row["end_s"] - row["start_s"]) * time_scale,
                "args": args,
            })
            for kind, times in (("sched.drain", row["drain_times"]),
                                ("sched.failure", row["failure_times"])):
                for t in times:
                    events.append({
                        "name": kind, "cat": "overlay", "ph": "i",
                        "s": "t", "pid": pid, "tid": 1,
                        "ts": t * time_scale,
                        "args": {"job": row["name"]},
                    })
    payload_out = {
        "displayTimeUnit": "ms",
        "otherData": {
            "policy": payload["policy"], "seed": payload["seed"],
            "total_nodes": payload["total_nodes"],
            "makespan_seconds": payload["makespan_seconds"],
        },
        "traceEvents": events,
    }
    if hasattr(path_or_fp, "write"):
        json.dump(payload_out, path_or_fp)  # type: ignore[arg-type]
    else:
        with open(os.fspath(path_or_fp), "w", encoding="utf-8") as fp:
            json.dump(payload_out, fp)
    return len(events)


def format_gantt(payload: Dict[str, Any], width: int = 60) -> str:
    """ASCII occupancy summary: one line per job, time left to right."""
    makespan = max(payload["makespan_seconds"], 1e-9)
    lines = [
        f"pckpt sched gantt: {payload['policy']} policy, "
        f"{payload['jobs']} jobs, {payload['total_nodes']} nodes, "
        f"makespan {payload['makespan_seconds']:.0f}s, "
        f"utilization {100.0 * payload['utilization']:.1f}%"
    ]
    for row in payload["rows"]:
        if row["start_s"] is None or row["end_s"] is None:
            lines.append(f"  {row['name']:<14} {'(starved)':>{width + 2}}")
            continue
        lo = int(round(row["start_s"] / makespan * width))
        hi = max(int(round(row["end_s"] / makespan * width)), lo + 1)
        bar = " " * lo + "#" * (hi - lo)
        marks = list(bar.ljust(width))
        for t in row["failure_times"]:
            pos = min(int(round(t / makespan * width)), width - 1)
            marks[pos] = "!"
        lines.append(
            f"  {row['name']:<14} |{''.join(marks)}| "
            f"{row['nodes']}n wait {row['start_s'] - row['submit_s']:.0f}s"
        )
    if payload["starved"]:
        lines.append(f"  starved: {', '.join(payload['starved'])}")
    return "\n".join(lines)
