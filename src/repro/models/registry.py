"""The C/R model zoo (Secs. V & VII) and its lookup registry.

* **B** — periodic BB checkpointing only (no prediction): the baseline
  every overhead reduction is normalized against.
* **M1** — + safeguard checkpointing on prediction (Bouguerra et al.).
* **M2** — + live migration when lead time allows (Behera et al.'s
  LM-C/R); σ-discounted OCI (Eq. 2).
* **P1** — + p-ckpt on every prediction (this paper); Eq. (1) OCI.
* **P2** — hybrid: LM preferred, p-ckpt fallback, LM abort on short-lead
  re-prediction; σ-discounted OCI (Eq. 2).
* **M2-α** — Fig 6c variants of M2 with LM transfer size α× the
  checkpoint size (e.g. ``"M2-2.5"``).
* **P2-fn** — the Observation 9 future-work variant of P2 whose σ
  accounts for predictor recall (ablation).
* **P1-sync / P2-sync** — conservative variants whose p-ckpt phase 2
  blocks the application instead of flushing via daemons (ablation of the
  async-phase-2 design choice).
* **B-online / P1-online** — variants estimating the failure rate online
  instead of from the configured distribution (ablation of the oracle-OCI
  choice).
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Dict

from .base import ModelConfig

__all__ = [
    "MODEL_B",
    "MODEL_M1",
    "MODEL_M2",
    "MODEL_P1",
    "MODEL_P2",
    "PAPER_MODELS",
    "get_model",
    "lm_variant",
]

MODEL_B = ModelConfig(name="B", use_prediction=False)

MODEL_M1 = ModelConfig(name="M1", supports_safeguard=True)

MODEL_M2 = ModelConfig(name="M2", supports_lm=True, use_sigma_oci=True)

MODEL_P1 = ModelConfig(name="P1", supports_pckpt=True)

MODEL_P2 = ModelConfig(
    name="P2", supports_lm=True, supports_pckpt=True, use_sigma_oci=True
)

#: The five models of Figs 4, 6 and 7, in the paper's bar order.
PAPER_MODELS: Dict[str, ModelConfig] = {
    m.name: m for m in (MODEL_B, MODEL_M1, MODEL_M2, MODEL_P1, MODEL_P2)
}

_ALPHA_VARIANT = re.compile(r"^(M2|P2)-(\d+(?:\.\d+)?)$")


def lm_variant(base: ModelConfig, alpha: float) -> ModelConfig:
    """An LM-capable model with transfer factor α (Fig 6c's M2-*)."""
    if not base.supports_lm:
        raise ValueError(f"{base.name} does not use live migration")
    return replace(base, name=f"{base.name}-{alpha:g}", lm_alpha=alpha)


def get_model(name: str) -> ModelConfig:
    """Resolve a model name, including ``M2-α`` variants and ``P2-fn``.

    Examples
    --------
    >>> get_model("P1").supports_pckpt
    True
    >>> get_model("M2-2.5").lm_alpha
    2.5
    >>> get_model("P2-fn").sigma_includes_recall
    True
    """
    if name in PAPER_MODELS:
        return PAPER_MODELS[name]
    if name == "P2-fn":
        return replace(MODEL_P2, name="P2-fn", sigma_includes_recall=True)
    if name.endswith("-sync"):
        base = PAPER_MODELS.get(name[:-5])
        if base is not None and base.supports_pckpt:
            return replace(base, name=name, pckpt_async_phase2=False)
    if name.endswith("-online"):
        base = PAPER_MODELS.get(name[:-7])
        if base is not None:
            return replace(base, name=name, oci_online=True)
    if name.endswith("-nbr"):
        base = PAPER_MODELS.get(name[:-4])
        if base is not None:
            return replace(base, name=name, neighbor_level=True)
    match = _ALPHA_VARIANT.match(name)
    if match:
        base = PAPER_MODELS[match.group(1)]
        return lm_variant(base, float(match.group(2)))
    raise KeyError(
        f"unknown model {name!r}; expected one of {sorted(PAPER_MODELS)}, "
        "'P2-fn', or an 'M2-<alpha>' / 'P2-<alpha>' variant"
    )
