"""The C/R simulation engine shared by all five models (Secs. III, V–VII).

One :class:`CRSimulation` runs one application to completion under one C/R
model.  Faithful to the paper's framework: the application is a single DES
process alternating computation and periodic BB checkpoints at the
(dynamically recomputed) OCI, while the failure-generation component
injects predictions, failures, and false alarms.  Model behaviour is
declarative — a :class:`ModelConfig` enumerates which proactive mechanisms
exist and which OCI formula applies; all mechanisms (safeguard, LM,
p-ckpt, hybrid arbitration with LM abort) are implemented here once.

Accounting identity (asserted by the integration tests)::

    makespan = useful_compute
             + checkpoint + recomputation + recovery + migration
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Union

import numpy as np

from ..analysis.metrics import FTStats, OverheadBreakdown
from ..core.coordinator import ProactiveAction, ProactiveCoordinator
from ..core.pckpt import PckptProtocol, ProtocolAborted, entry_from_prediction
from ..core.priority import VulnerableEntry
from ..core.statemachine import transition
from ..platform.node import NodeHealth, NodeState
from ..cr.checkpoint import SnapshotLedger
from ..cr.drain import DrainManager
from ..cr.migration import LiveMigration, MigrationOutcome
from ..cr.oci import OCIController
from ..cr.recovery import plan_recovery
from ..cr.safeguard import SafeguardAborted, SafeguardCheckpoint
from ..des import Environment, Interrupt, MetricsRegistry, Trace
from ..failures.injector import FailureEvent, FailureInjector, FalseAlarmEvent
from ..failures.leadtime import PAPER_LEAD_TIME_MODEL, LeadTimeModel
from ..failures.predictor import DEFAULT_PREDICTOR, PredictorSpec
from ..failures.weibull import WeibullParams
from ..platform.system import SUMMIT, PlatformSpec
from ..workloads.applications import ApplicationSpec

__all__ = ["ModelConfig", "RunOutput", "CRSimulation"]

_EPS = 1e-6


@dataclass(frozen=True)
class ModelConfig:
    """Declarative description of one C/R model's capabilities.

    Attributes
    ----------
    name:
        Model identifier ("B", "M1", "M2", "P1", "P2", "M2-2.5", ...).
    use_prediction:
        Whether predictions trigger any proactive behaviour at all.
    supports_safeguard / supports_lm / supports_pckpt:
        Available proactive mechanisms.
    use_sigma_oci:
        Apply Eq. (2)'s σ-discounted OCI (LM-capable models) instead of
        Eq. (1).
    lm_alpha:
        LM transfer-size factor α (swept in Fig 6c).
    sigma_includes_recall:
        The paper's future-work fix for Observation 9 (off = published
        behaviour).
    oci_online:
        Estimate the failure rate online instead of from the configured
        distribution.
    pckpt_async_phase2:
        When True (default, the paper's deployment) the healthy nodes'
        phase-2 commits are flushed by per-node checkpoint daemons while
        the application resumes after phase 1 — "the p-ckpt threads run
        only when a p-ckpt is taken but otherwise do not impact
        applications".  False blocks the application for phase 2 too
        (conservative ablation variant).
    neighbor_level:
        FTI-style level-1 extension (the paper cites it as orthogonal):
        every periodic checkpoint is mirrored to a partner node's BB, so
        unmitigated recovery never waits for the PFS drain — at the cost
        of an interconnect copy per checkpoint and doubled BB footprint.
    """

    name: str
    use_prediction: bool = True
    supports_safeguard: bool = False
    supports_lm: bool = False
    supports_pckpt: bool = False
    use_sigma_oci: bool = False
    lm_alpha: float = 3.0
    sigma_includes_recall: bool = False
    oci_online: bool = False
    pckpt_async_phase2: bool = True
    neighbor_level: bool = False

    def __post_init__(self) -> None:
        if self.lm_alpha <= 0:
            raise ValueError("lm_alpha must be positive")
        if self.use_sigma_oci and not self.supports_lm:
            raise ValueError("sigma-adjusted OCI requires live-migration support")


@dataclass
class RunOutput:
    """Raw result of one simulation run.

    Attributes
    ----------
    makespan:
        Total wall time to complete the job (seconds).
    useful_seconds:
        The job's useful compute demand (constant per app).
    overhead:
        The paper's three overhead categories (+ LM slowdown).
    ft:
        Fault-tolerance event counts.
    oci_initial / oci_final:
        First and last checkpoint intervals used (Obs 6's elongation).
    periodic_checkpoints:
        Number of completed periodic BB checkpoints.
    proactive_runs:
        Number of p-ckpt / safeguard protocol executions (incl. aborted).
    metrics:
        :meth:`~repro.des.metrics.MetricsRegistry.snapshot` of the run's
        metrics registry when one was attached, else ``None``.  A plain
        picklable dict so it crosses ``ProcessPoolExecutor`` boundaries.
    """

    makespan: float
    useful_seconds: float
    overhead: OverheadBreakdown
    ft: FTStats
    oci_initial: float
    oci_final: float
    periodic_checkpoints: int
    proactive_runs: int
    metrics: Optional[Dict] = None


@dataclass
class _MitigationRecord:
    """Per-prediction bookkeeping linking predictions to outcomes."""

    action: ProactiveAction = ProactiveAction.IGNORE
    committed: bool = False


class _Status:
    """Return codes of the application's inner phases."""

    REACHED = "reached"
    RESET = "reset"


class _Phase2Job:
    """Asynchronous p-ckpt phase 2 (healthy daemons flushing to PFS).

    The snapshot it carries is *viable* from birth — every share exists
    either on the PFS (phase-1 commits) or in a surviving daemon's memory
    — but becomes ledger-visible (usable by a normal recovery plan) only
    on completion.  A failure of a non-covered node mid-flight destroys a
    share and invalidates the snapshot; the owner cancels the job.
    """

    def __init__(self, sim: "CRSimulation", outcome, provs=()) -> None:
        self.sim = sim
        self.snapshot_work = outcome.snapshot_work
        #: Provenance ids of the predictions the parent protocol served
        #: (causal-timeline annotation carried into the phase-2 records).
        self.provs = list(provs)
        #: Nodes whose failure does not hurt the snapshot.
        self.covers: Set[int] = set(outcome.committed) | set(sim._migrated_away)
        self.duration = sim.platform.pfs.proactive_write_time(
            outcome.healthy_nodes, sim.app.checkpoint_bytes_per_node
        )
        self.eta = sim.env.now + self.duration
        self.cancelled = False
        self._proc = sim.env.process(self._run(), name="pckpt-phase2")

    def _run(self):
        sid = self.sim._span_begin(
            "pckpt", "pckpt_phase2",
            {"work": self.snapshot_work, "provs": self.provs},
        )
        try:
            yield self.sim.env.timeout(self.duration)
        except Interrupt:
            self.cancelled = True
            self.sim._span_end(sid, "cancelled")
            self.sim._count("pckpt.phase2_cancelled")
            if self.sim._phase2_job is self:
                self.sim._phase2_job = None
            return
        self.sim.ledger.record_proactive(self.snapshot_work, self.sim.env.now)
        self.sim._span_end(sid, "landed")
        self.sim._emit("pckpt", "phase2-landed",
                       {"work": self.snapshot_work, "provs": self.provs})
        self.sim._count("pckpt.phase2_landed")
        if self.sim._phase2_job is self:
            self.sim._phase2_job = None

    def cancel(self) -> None:
        """Invalidate the in-flight snapshot (superseded or share lost)."""
        if self._proc.is_alive and not self.cancelled:
            self._proc.interrupt(("phase2-cancel", None))


def _noop(*_args, **_kwargs) -> None:
    """Shared do-nothing sink bound in place of disabled instrumentation."""
    return None


def _noop_span_begin(*_args, **_kwargs) -> int:
    """Disabled ``_span_begin``: every span gets the same dummy id."""
    return 0


class CRSimulation:
    """Simulate one application under one C/R model.

    Parameters
    ----------
    app:
        Workload characterization (Table I entry).
    config:
        Model capabilities.
    platform:
        Hardware platform (default Summit).
    weibull:
        Failure distribution (Table III entry).
    lead_model / predictor:
        Failure-analysis and prediction statistics.
    rng:
        Seeded generator (owns all stochasticity of this run).
    trace:
        Optional event trace for debugging / the protocol-trace example.
        Protocol phases additionally emit spans (see
        ``docs/OBSERVABILITY.md`` for the vocabulary); completed-span
        totals mirror the :class:`OverheadBreakdown` accounting exactly.
    metrics:
        Optional metrics registry; when given it is attached to the run's
        environment and fed counters/gauges/histograms by every layer
        (ledger, drain, OCI, recovery planning, the protocol drivers, and
        the DES kernel itself).  Cheap enough to leave on.
    """

    def __init__(
        self,
        app: ApplicationSpec,
        config: ModelConfig,
        platform: PlatformSpec = SUMMIT,
        weibull: WeibullParams | None = None,
        lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
        predictor: PredictorSpec = DEFAULT_PREDICTOR,
        rng: np.random.Generator | None = None,
        trace: Optional[Trace] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        from ..failures.weibull import TITAN_WEIBULL

        self.app = app
        self.config = config
        self.platform = platform
        self.weibull = weibull if weibull is not None else TITAN_WEIBULL
        self.env = Environment()
        self.trace = trace
        if trace is not None:
            trace.env = self.env
        else:
            # Disabled tracing must cost nothing on the event hot paths:
            # rebind the helpers to module-level no-ops so call sites pay
            # one attribute load instead of a method frame + None check.
            self._emit = _noop
            self._span_begin = _noop_span_begin
            self._span_end = _noop
        self.metrics = metrics
        if metrics is not None:
            self.env.attach_metrics(metrics)
        else:
            self._count = _noop
            self._observe = _noop

        per_node = app.checkpoint_bytes_per_node
        bb = platform.node.burst_buffer
        # Neighbor-level mirroring doubles the resident copies per node.
        copies = 4 if config.neighbor_level else 2
        if not bb.fits(per_node, copies=copies):
            raise ValueError(
                f"{app.name}: {copies} checkpoint copies "
                f"({copies * per_node:.3e} B) exceed BB capacity"
            )
        if per_node > platform.node.dram_bytes:
            raise ValueError(f"{app.name}: checkpoint exceeds DRAM")

        self.injector = FailureInjector(
            self.weibull, app.nodes, lead_model, predictor, rng=rng
        )
        self.t_ckpt_bb = bb.write_time(per_node)
        if config.neighbor_level:
            # Local BB stage, then the mirror copy to the partner's BB
            # (conservatively serialized; the partner absorbs at BB rate).
            self.t_ckpt_bb += platform.interconnect.transfer_time(
                per_node
            ) + bb.write_time(per_node)
        self.lm_seconds = platform.lm_transfer_time(per_node, config.lm_alpha)
        self.coordinator = ProactiveCoordinator(
            supports_lm=config.supports_lm,
            supports_pckpt=config.supports_pckpt,
            supports_safeguard=config.supports_safeguard,
            lm_transfer_seconds=self.lm_seconds,
        )
        self.oci = OCIController(
            t_ckpt_bb=self.t_ckpt_bb,
            injector=self.injector,
            nodes=app.nodes,
            use_sigma=config.use_sigma_oci,
            lm_threshold=self.lm_seconds if config.use_sigma_oci else 0.0,
            sigma_includes_recall=config.sigma_includes_recall,
            online_estimation=config.oci_online,
            metrics=metrics,
        )
        self.ledger = SnapshotLedger(metrics=metrics)
        self.drain = DrainManager(
            self.env, platform.pfs, self.ledger, app.nodes, per_node,
            trace=trace, metrics=metrics,
        )
        self.overhead = OverheadBreakdown()
        self.ft = FTStats()

        # -- dynamic state --------------------------------------------------
        self.work_done = 0.0
        self._records: Dict[int, _MitigationRecord] = {}  # id(prediction) -> rec
        # node -> records of all live predictions on it; a node-level
        # commit (p-ckpt phase 1, LM completion) covers every one of them.
        self._watchers: Dict[int, List[_MitigationRecord]] = {}
        self._active_lms: Dict[int, LiveMigration] = {}   # node -> migration
        self._migrated_away: Set[int] = set()             # vacated nodes
        # node -> latest live prediction on it (for re-enqueueing
        # still-vulnerable nodes into a fresh protocol).
        self._vulnerable: Dict[int, Union[FailureEvent, FalseAlarmEvent]] = {}
        # Sparse Fig 5 state machine: only non-NORMAL nodes are tracked;
        # every change goes through transition() so illegal interleavings
        # fail loudly instead of corrupting FT accounting.
        self._node_states: Dict[int, NodeState] = {}
        self._phase2_job: Optional[_Phase2Job] = None
        self._active_protocol: Optional[PckptProtocol] = None
        self._active_safeguard: Optional[SafeguardCheckpoint] = None
        self._interruptible = False
        self._computing = False
        self._pending: List[tuple] = []
        self._app_proc = None

        # -- run stats ---------------------------------------------------------
        self.periodic_checkpoints = 0
        self.proactive_runs = 0
        self.oci_initial = self.oci.interval()
        self.oci_final = self.oci_initial

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def start(self):
        """Register the simulation's processes without running the clock.

        Idempotent; returns the application :class:`~repro.des.Process`
        whose completion ends the run.  ``run()`` calls this internally;
        callers that need stepwise control (the
        :class:`repro.spec.engine.SimEngine` facade) call it directly and
        drive ``env.step()`` themselves, then :meth:`finish`.
        """
        if self._app_proc is None:
            self._app_proc = self.env.process(self._app(), name="application")
            self.env.process(self._failure_driver(), name="failure-driver")
            if self.config.use_prediction and self.injector.false_alarm_rate > 0:
                self.env.process(
                    self._false_alarm_driver(), name="false-alarm-driver"
                )
        return self._app_proc

    def run(self) -> RunOutput:
        """Execute the simulation to job completion and return results."""
        self.env.run(until=self.start())
        return self.finish()

    def finish(self) -> RunOutput:
        """Validate accounting and package the run's :class:`RunOutput`."""
        self.overhead.validate()
        self.ft.validate()
        self._flush_metrics()
        return RunOutput(
            makespan=self.env.now,
            useful_seconds=self.app.compute_seconds,
            overhead=self.overhead,
            ft=self.ft,
            oci_initial=self.oci_initial,
            oci_final=self.oci_final,
            periodic_checkpoints=self.periodic_checkpoints,
            proactive_runs=self.proactive_runs,
            metrics=(
                self.metrics.snapshot() if self.metrics is not None else None
            ),
        )

    def _flush_metrics(self) -> None:
        """Record end-of-run totals into the metrics registry.

        Only deterministic quantities go in — wall-clock figures stay on
        :meth:`Environment.kernel_stats` so merged registries are
        bit-identical regardless of worker count or machine load.
        """
        if self.metrics is None:
            return
        m = self.metrics
        m.counter("des.events_processed").inc(self.env.events_processed)
        m.gauge("des.queue_high_water").set(self.env.queue_high_water)
        m.counter("sim.replications").inc()
        m.counter("sim.makespan_seconds").inc(self.env.now)
        m.counter("sim.useful_seconds").inc(self.app.compute_seconds)
        m.counter("overhead.checkpoint_seconds").inc(self.overhead.checkpoint)
        m.counter("overhead.recomputation_seconds").inc(
            self.overhead.recomputation
        )
        m.counter("overhead.recovery_seconds").inc(self.overhead.recovery)
        m.counter("overhead.migration_seconds").inc(self.overhead.migration)

    # ------------------------------------------------------------------
    # event drivers
    # ------------------------------------------------------------------
    def _failure_driver(self):
        """Inject failures (and their predictions) forever."""
        while True:
            ev = self.injector.next_failure()
            if ev.predicted and self.config.use_prediction:
                if ev.prediction_time > self.env.now:
                    yield self.env.timeout(ev.prediction_time - self.env.now)
                self._deliver_prediction(ev)
            if ev.time > self.env.now:
                yield self.env.timeout(ev.time - self.env.now)
            self._deliver_failure(ev)

    def _false_alarm_driver(self):
        """Inject false-alarm predictions forever."""
        while True:
            alarm = self.injector.next_false_alarm()
            if alarm is None:
                return
            if alarm.prediction_time > self.env.now:
                yield self.env.timeout(alarm.prediction_time - self.env.now)
            self.ft.false_alarms += 1
            self._count("predictor.false_alarms")
            self._deliver_prediction(alarm)

    # ------------------------------------------------------------------
    # notification plumbing
    # ------------------------------------------------------------------
    # The five helpers below are rebound to module-level no-ops in
    # __init__ when their backend is absent, so the None checks only ever
    # run with instrumentation enabled.
    def _emit(self, source: str, kind: str, detail=None) -> None:
        if self.trace is not None:
            self.trace.emit(source, kind, detail)

    def _span_begin(self, source: str, kind: str, detail=None) -> int:
        if self.trace is not None:
            return self.trace.span_begin(source, kind, detail)
        return 0

    def _span_end(self, sid: int, detail=None) -> None:
        if self.trace is not None:
            self.trace.span_end(sid, detail)

    def _count(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    def _notify_app(self, cause: tuple) -> None:
        """Interrupt the application, or defer if it is un-interruptible."""
        if self._app_proc is None or not self._app_proc.is_alive:
            return
        if self._interruptible:
            self._app_proc.interrupt(cause)
        else:
            self._pending.append(cause)

    def _replan(self) -> None:
        """Nudge a computing application to re-plan (rate changed)."""
        if self._computing and self._interruptible:
            self._app_proc.interrupt(("replan",))

    def _compute_rate(self) -> float:
        """Current compute rate (1.0, reduced while LMs are in flight)."""
        n = sum(1 for lm in self._active_lms.values() if lm.in_flight)
        return (1.0 - self.platform.lm_slowdown) ** n

    # ------------------------------------------------------------------
    # Fig 5 node state machine
    # ------------------------------------------------------------------
    def node_health(self, node: int) -> NodeHealth:
        """Current Fig 5 state of *node* (NORMAL when untracked)."""
        state = self._node_states.get(node)
        return state.health if state is not None else NodeHealth.NORMAL

    def _mark(self, node: int, to: NodeHealth) -> None:
        """Move *node* to state *to*, enforcing the Fig 5 transitions."""
        current = self.node_health(node)
        if current is to:
            return
        transition(current, to)  # raises IllegalTransition on a bad move
        if to is NodeHealth.NORMAL:
            self._node_states.pop(node, None)
        else:
            state = self._node_states.get(node)
            if state is None:
                state = self._node_states[node] = NodeState(index=node)
            state.health = to

    # ------------------------------------------------------------------
    # prediction / failure delivery
    # ------------------------------------------------------------------
    def _deliver_prediction(
        self, prediction: Union[FailureEvent, FalseAlarmEvent]
    ) -> None:
        is_real = isinstance(prediction, FailureEvent)
        if not self.config.use_prediction:
            return
        deadline = (
            prediction.time
            if is_real
            else prediction.prediction_time + prediction.claimed_lead
        )
        lead = max(deadline - self.env.now, 0.0)
        action = self.coordinator.decide(lead)
        # Trace details carry the injector-assigned provenance id ("prov")
        # so repro.obs.timeline can stitch every record back to its causing
        # failure/false alarm.  See docs/OBSERVABILITY.md.
        self._emit(
            "predictor",
            "prediction",
            {
                "node": prediction.node,
                "action": action.value,
                "lead": lead,
                "real": is_real,
                "prov": prediction.provenance,
            },
        )
        self._count("predictor.predictions")
        self._observe("predictor.lead_seconds", lead)
        rec = _MitigationRecord(action=action)
        self._records[id(prediction)] = rec
        self._watchers.setdefault(prediction.node, []).append(rec)

        if action is ProactiveAction.IGNORE:
            return
        self._vulnerable[prediction.node] = prediction
        if prediction.node in self._migrated_away:
            # The process already vacated this node; any failure there is
            # moot, so the prediction is covered for free.
            rec.action = ProactiveAction.LIVE_MIGRATION
            rec.committed = True
            return
        if action is ProactiveAction.LIVE_MIGRATION:
            if prediction.node in self._active_lms:
                # A migration for this node is already in flight; its
                # completion covers this prediction too (watcher list).
                rec.action = ProactiveAction.LIVE_MIGRATION
                return
            self._mark(prediction.node, NodeHealth.VULNERABLE)
            self._start_migration(prediction, rec)
            return
        # Blocked protocols run inside the application process.
        self._mark(prediction.node, NodeHealth.VULNERABLE)
        self._notify_app(("proactive", prediction, action))

    def _start_migration(
        self,
        prediction: Union[FailureEvent, FalseAlarmEvent],
        rec: _MitigationRecord,
    ) -> None:
        node = prediction.node

        def _done(lm: LiveMigration, outcome: MigrationOutcome) -> None:
            self._active_lms.pop(node, None)
            if outcome is MigrationOutcome.COMPLETED:
                for watcher in self._watchers.get(node, ()):
                    if watcher.action is ProactiveAction.LIVE_MIGRATION:
                        watcher.committed = True
                self._migrated_away.add(node)
                self._mark(node, NodeHealth.NORMAL)
                self._emit("lm", "completed",
                           {"node": node, "prov": prediction.provenance})
                self._count("lm.completed")
            else:
                self.ft.lm_aborts += 1
                if self.node_health(node) is NodeHealth.MIGRATING:
                    self._mark(node, NodeHealth.VULNERABLE)
                if outcome is MigrationOutcome.ABORTED:
                    self._emit("lm", "aborted",
                               {"node": node, "prov": prediction.provenance})
                    self._count("lm.aborted")
                else:
                    self._emit("lm", "overtaken",
                               {"node": node, "prov": prediction.provenance})
                    self._count("lm.overtaken")
            self._replan()

        lm = LiveMigration(
            self.env,
            self.platform,
            node,
            prediction,
            self.app.checkpoint_bytes_per_node,
            alpha=self.config.lm_alpha,
            on_done=_done,
            trace=self.trace,
        )
        self._active_lms[node] = lm
        self._mark(node, NodeHealth.MIGRATING)
        self._emit(
            "lm",
            "started",
            {"node": node, "seconds": lm.transfer_seconds,
             "prov": prediction.provenance},
        )
        self._count("lm.started")
        self._replan()

    def _deliver_failure(self, ev: FailureEvent) -> None:
        self.ft.failures += 1
        self._count("failures.injected")
        if ev.predicted:
            # Counted at failure (not prediction) delivery so that a
            # prediction whose failure lands after job completion does not
            # break the predicted <= failures invariant.
            self.ft.predicted += 1
        self.oci.record_failure()
        rec = self._records.get(id(ev))
        if (
            rec is not None
            and rec.action is ProactiveAction.LIVE_MIGRATION
            and rec.committed
        ):
            # The process vacated this node before it died: failure avoided.
            self.ft.mitigated_lm += 1
            self._migrated_away.discard(ev.node)
            self._forget_prediction(ev)
            # The empty node still physically fails and gets replaced.
            self._mark(ev.node, NodeHealth.FAILED)
            self._mark(ev.node, NodeHealth.NORMAL)
            self._emit("failure", "avoided-by-lm",
                       {"node": ev.node, "prov": ev.provenance})
            self._count("failures.avoided_by_lm")
            return
        if ev.node in self._active_lms:
            # Transfer still in flight when the node died.
            self._active_lms[ev.node].overtake()
        self._emit("failure", "struck", {"node": ev.node, "prov": ev.provenance})
        self._count("failures.struck")
        self._notify_app(("failure", ev))

    # ------------------------------------------------------------------
    # the application process
    # ------------------------------------------------------------------
    def _app(self):
        """Main loop: compute for one OCI, checkpoint to BB, repeat."""
        goal = self.app.compute_seconds
        self._interruptible = True
        while self.work_done < goal - _EPS:
            self.oci.record_time(self.env.now)
            interval = self.oci.interval()
            self.oci_final = interval
            target = min(self.work_done + interval, goal)
            status = yield from self._advance_to(target)
            if status == _Status.RESET:
                continue
            if self.work_done >= goal - _EPS:
                break
            yield from self._periodic_bb_checkpoint()
        self._interruptible = False
        self._emit("app", "completed", self.work_done)

    def _advance_to(self, target: float):
        """Compute until *target* work, servicing interruptions."""
        while self.work_done < target - _EPS:
            rate = self._compute_rate()
            planned = (target - self.work_done) / rate
            start = self.env.now
            self._computing = True
            try:
                yield self.env.timeout(planned)
                self._computing = False
                self.work_done = target
                self.overhead.migration += planned * (1.0 - rate)
            except Interrupt as intr:
                self._computing = False
                elapsed = self.env.now - start
                self.work_done += elapsed * rate
                self.overhead.migration += elapsed * (1.0 - rate)
                kind = intr.cause[0]
                if kind == "replan":
                    continue
                if kind == "proactive":
                    yield from self._run_proactive(intr.cause[1], intr.cause[2])
                    yield from self._drain_pending()
                    return _Status.RESET
                if kind == "failure":
                    yield from self._handle_failure(intr.cause[1])
                    yield from self._drain_pending()
                    return _Status.RESET
                raise RuntimeError(f"unexpected interrupt {intr.cause!r}")
        return _Status.REACHED

    def _periodic_bb_checkpoint(self):
        """Synchronous checkpoint to the burst buffers (+ async drain)."""
        remaining = self.t_ckpt_bb
        self._emit("app", "ckpt_bb_start", self.work_done)
        while remaining > _EPS:
            start = self.env.now
            # One span per blocked write segment: its duration is exactly
            # the checkpoint overhead charged below, so span totals and
            # OverheadBreakdown stay reconcilable.
            sid = self._span_begin("app", "ckpt_bb_write", self.work_done)
            try:
                yield self.env.timeout(remaining)
                self.overhead.checkpoint += self.env.now - start
                self._span_end(sid)
                remaining = 0.0
            except Interrupt as intr:
                self.overhead.checkpoint += self.env.now - start
                self._span_end(sid)
                remaining -= self.env.now - start
                kind = intr.cause[0]
                if kind == "replan":
                    continue  # I/O speed unaffected by LM slowdown
                if kind == "proactive":
                    # Abort the BB write; the proactive snapshot supersedes.
                    self._emit("app", "ckpt_bb_aborted", None)
                    self._count("ckpt.periodic_aborted")
                    yield from self._run_proactive(intr.cause[1], intr.cause[2])
                    yield from self._drain_pending()
                    return
                if kind == "failure":
                    # Fig 1(C): failure during a synchronous BB checkpoint.
                    self._emit("app", "ckpt_bb_aborted", None)
                    self._count("ckpt.periodic_aborted")
                    yield from self._handle_failure(intr.cause[1])
                    yield from self._drain_pending()
                    return
                raise RuntimeError(f"unexpected interrupt {intr.cause!r}")
        snap = self.ledger.record_periodic(self.work_done, self.env.now)
        self.periodic_checkpoints += 1
        self._count("ckpt.periodic_completed")
        self._observe("ckpt.bb_write_seconds", self.t_ckpt_bb)
        self.drain.submit(snap)
        self._emit("app", "ckpt_bb_done", self.work_done)

    # ------------------------------------------------------------------
    # proactive actions (blocked)
    # ------------------------------------------------------------------
    def _run_proactive(self, prediction, action: ProactiveAction):
        """Run a safeguard or p-ckpt protocol inside the app process."""
        # A stale notification: the predicted failure already passed
        # (it was deferred behind a recovery).  Nothing to protect anymore.
        deadline = (
            prediction.time
            if isinstance(prediction, FailureEvent)
            else prediction.prediction_time + prediction.claimed_lead
        )
        if deadline <= self.env.now:
            return
        self.proactive_runs += 1
        if action is ProactiveAction.SAFEGUARD:
            yield from self._run_safeguard(prediction)
        elif action is ProactiveAction.PCKPT:
            yield from self._run_pckpt(prediction)
        else:  # pragma: no cover - decide() never routes others here
            raise RuntimeError(f"cannot run proactive action {action}")

    def _run_safeguard(self, prediction):
        per_node = self.app.checkpoint_bytes_per_node
        write = self.platform.pfs.proactive_write_time(self.app.nodes, per_node)
        run = SafeguardCheckpoint(
            self.env,
            self.work_done,
            write,
            prediction,
            already_covered=set(self._migrated_away),
        )
        self._active_safeguard = run
        prov = getattr(prediction, "provenance", -1)
        self._emit("safeguard", "start",
                   {"node": prediction.node, "seconds": write, "prov": prov})
        self._count("safeguard.runs")
        # The safeguard only burns time inside its collective write, so
        # this span's duration equals the checkpoint overhead it charges
        # (run.spent / outcome.duration) — on aborts too.
        sid = self._span_begin("safeguard", "safeguard_write",
                               {"node": prediction.node, "prov": prov})
        try:
            outcome = yield from run.run()
        except SafeguardAborted as exc:
            self.overhead.checkpoint += run.spent
            self._span_end(sid, "aborted")
            self._emit("safeguard", "aborted",
                       {"node": exc.failure.node,
                        "prov": exc.failure.provenance})
            self._count("safeguard.aborts")
            yield from self._handle_failure(exc.failure)
            return
        finally:
            self._active_safeguard = None
        self._span_end(sid, "done")
        self.overhead.checkpoint += outcome.duration
        self._observe("safeguard.write_seconds", outcome.duration)
        self.ledger.record_proactive(outcome.snapshot_work, self.env.now)
        for served in outcome.served:
            rec = self._records.get(id(served))
            if rec is not None:
                rec.action = ProactiveAction.SAFEGUARD
                rec.committed = True
        self._emit(
            "safeguard",
            "done",
            {"served": len(outcome.served),
             "provs": sorted(getattr(s, "provenance", -1)
                             for s in outcome.served)},
        )
        if outcome.pending_failures:
            yield from self._recover_after_proactive(outcome.pending_failures)

    def _run_pckpt(self, prediction):
        per_node = self.app.checkpoint_bytes_per_node
        initial = [entry_from_prediction(prediction)]
        enqueued = {prediction.node}
        # node -> provenance id of the prediction that enqueued it, for
        # the causal-timeline annotations on every protocol record below.
        prov_by_node = {prediction.node: getattr(prediction, "provenance", -1)}
        # Fig 5: starting p-ckpt aborts in-flight LMs; their nodes join
        # the priority queue (their snapshot share must now be committed).
        for node, lm in list(self._active_lms.items()):
            lm.abort("pckpt-preempts-lm")
            for watcher in self._watchers.get(node, ()):
                watcher.action = ProactiveAction.PCKPT
            if node not in enqueued:
                initial.append(entry_from_prediction(lm.prediction))
                enqueued.add(node)
                prov_by_node[node] = getattr(lm.prediction, "provenance", -1)
            self._emit("pckpt", "absorbed-lm",
                       {"node": node,
                        "prov": getattr(lm.prediction, "provenance", -1)})
            self._count("pckpt.absorbed_lms")
        # Every other still-vulnerable node joins too: the new snapshot
        # supersedes any older protection, so their shares must be
        # re-committed under it before their failures strike.
        for node, pred in list(self._live_vulnerable().items()):
            if node in enqueued or node in self._migrated_away:
                continue
            initial.append(entry_from_prediction(pred))
            enqueued.add(node)
            prov_by_node[node] = getattr(pred, "provenance", -1)

        def _on_commit(entry: VulnerableEntry, when: float) -> None:
            # The commit covers every live prediction for this node.
            for watcher in self._watchers.get(entry.node, ()):
                watcher.action = ProactiveAction.PCKPT
                watcher.committed = True
            self._emit(
                "pckpt",
                "vulnerable-committed",
                {"node": entry.node, "when": when,
                 "prov": prov_by_node.get(entry.node, -1)},
            )

        protocol = PckptProtocol(
            self.env,
            snapshot_work=self.work_done,
            total_nodes=self.app.nodes,
            priority_write_seconds=lambda _n: self.platform.pfs.priority_write_time(
                per_node
            ),
            phase2_write_seconds=lambda n: self.platform.pfs.proactive_write_time(
                n, per_node
            ),
            initial=initial,
            already_covered=set(self._migrated_away),
            on_commit=_on_commit,
            include_phase2=not self.config.pckpt_async_phase2,
        )
        self._active_protocol = protocol
        nodes = [e.node for e in initial]
        provs = sorted(prov_by_node.values())
        self._emit("pckpt", "start", {"nodes": nodes, "provs": provs})
        self._count("pckpt.runs")
        # All protocol time passes inside its interruptible waits, so this
        # span's duration equals phase1+phase2 blocked seconds — the exact
        # checkpoint overhead charged below, on aborts too.
        sid = self._span_begin(
            "pckpt", "pckpt_protocol", {"nodes": nodes, "provs": provs}
        )
        try:
            outcome = yield from protocol.run()
        except ProtocolAborted as exc:
            self.overhead.checkpoint += protocol.phase1_spent + protocol.phase2_spent
            self._span_end(sid, "aborted")
            self._emit("pckpt", "aborted",
                       {"node": exc.failure.node,
                        "prov": exc.failure.provenance})
            self._count("pckpt.aborts")
            yield from self._handle_failure(exc.failure)
            return
        finally:
            self._active_protocol = None
        self._span_end(sid, "done")
        self.overhead.checkpoint += outcome.duration
        self._count("pckpt.commits", len(outcome.committed))
        self._observe("pckpt.phase1_seconds", outcome.phase1_seconds)
        if self.config.pckpt_async_phase2:
            # Phase 2 flushes in the background; the snapshot becomes
            # PFS-complete (and recovery-usable) when the job lands.
            if self._phase2_job is not None:
                self._phase2_job.cancel()  # superseded by the newer snapshot
            self._phase2_job = _Phase2Job(self, outcome, provs)
        else:
            self.ledger.record_proactive(outcome.snapshot_work, self.env.now)
        self._emit(
            "pckpt",
            "done",
            {"committed": sorted(outcome.committed),
             "duration": outcome.duration, "provs": provs},
        )
        if outcome.pending_failures:
            yield from self._recover_after_proactive(outcome.pending_failures)

    def _recover_after_proactive(self, failures: List[FailureEvent]):
        """One recovery pass covering failures that struck mid-protocol."""
        # Classification happens per failure; the restore happens once.
        yield from self._handle_failure(failures[0])
        for extra in failures[1:]:
            self._classify_mitigation(extra)
            self._forget_prediction(extra)

    # ------------------------------------------------------------------
    # failure handling / recovery
    # ------------------------------------------------------------------
    @staticmethod
    def _prediction_deadline(
        prediction: Union[FailureEvent, FalseAlarmEvent]
    ) -> float:
        """Predicted absolute failure time of either prediction kind."""
        if isinstance(prediction, FailureEvent):
            return prediction.time
        return prediction.prediction_time + prediction.claimed_lead

    def _live_vulnerable(self) -> Dict[int, Union[FailureEvent, FalseAlarmEvent]]:
        """Nodes still awaiting their predicted failure (prunes expired)."""
        now = self.env.now
        stale = [
            node
            for node, pred in self._vulnerable.items()
            if self._prediction_deadline(pred) <= now
        ]
        for node in stale:
            del self._vulnerable[node]
            # An expired alarm leaves the node healthy again (Fig 5);
            # nodes with a transfer still in flight are left to the LM
            # completion callback.
            if (node not in self._active_lms
                    and self.node_health(node) is NodeHealth.VULNERABLE):
                self._mark(node, NodeHealth.NORMAL)
        return self._vulnerable

    def _forget_prediction(self, ev: FailureEvent) -> None:
        """Drop the bookkeeping for a delivered failure's prediction."""
        self._vulnerable.pop(ev.node, None)
        rec = self._records.pop(id(ev), None)
        if rec is not None:
            watchers = self._watchers.get(ev.node)
            if watchers is not None:
                try:
                    watchers.remove(rec)
                except ValueError:
                    pass
                if not watchers:
                    del self._watchers[ev.node]

    def _classify_mitigation(self, ev: FailureEvent) -> None:
        rec = self._records.get(id(ev))
        if rec is None or not rec.committed:
            return
        if rec.action is ProactiveAction.PCKPT:
            self.ft.mitigated_pckpt += 1
        elif rec.action is ProactiveAction.SAFEGUARD:
            self.ft.mitigated_safeguard += 1
        elif rec.action is ProactiveAction.LIVE_MIGRATION:  # pragma: no cover
            self.ft.mitigated_lm += 1

    def _handle_failure(self, ev: FailureEvent):
        """Roll back, restore, and account for one unavoided failure."""
        self._classify_mitigation(ev)
        self._forget_prediction(ev)
        self._migrated_away.discard(ev.node)
        # Fig 5: the node fails and is replaced by a healthy spare.  Its
        # in-flight migration (if any) resolves via the abort below.
        if self.node_health(ev.node) is not NodeHealth.MIGRATING:
            self._mark(ev.node, NodeHealth.FAILED)
            self._mark(ev.node, NodeHealth.NORMAL)
        # In-flight LM images are stale once we roll back: abort them all.
        for lm in list(self._active_lms.values()):
            lm.abort("rollback-invalidates-image")

        job = self._phase2_job
        if job is not None and not job.cancelled and ev.node in job.covers:
            # The in-flight p-ckpt snapshot survives this failure (the
            # node's share is already on the PFS).  Recovery waits for the
            # daemons to finish flushing, then restores everyone from PFS.
            wait = max(job.eta - self.env.now, 0.0)
            restore_work = job.snapshot_work
            restore_seconds = (
                wait
                + self.platform.pfs.full_restore_read_time(
                    self.app.nodes, self.app.checkpoint_bytes_per_node
                )
                + self.platform.restart_delay
            )
            from_bb = False
        else:
            if job is not None and not job.cancelled:
                # A non-covered node died: its share of the in-flight
                # snapshot is gone; the snapshot is unusable.
                job.cancel()
            plan = plan_recovery(
                self.ledger,
                self.platform.pfs,
                self.platform.node.burst_buffer,
                self.app.nodes,
                self.app.checkpoint_bytes_per_node,
                self.platform.restart_delay,
                neighbor=(
                    self.platform.interconnect
                    if self.config.neighbor_level
                    else None
                ),
                metrics=self.metrics,
            )
            restore_work = plan.restore_work
            restore_seconds = plan.total_seconds
            from_bb = plan.from_bb

        lost = self.work_done - restore_work
        assert lost >= -_EPS, "recovery target ahead of current progress"
        self.overhead.recomputation += max(lost, 0.0)
        self.overhead.recovery += restore_seconds
        self.work_done = restore_work
        self.ledger.rollback(self.work_done)
        self.drain.cancel_newer_than(self.work_done)
        self._emit(
            "recovery",
            "restore",
            {"work": restore_work, "seconds": restore_seconds,
             "from_bb": from_bb, "prov": ev.provenance},
        )
        self._observe("recovery.restore_seconds", restore_seconds)
        self._observe("recovery.lost_work_seconds", max(lost, 0.0))
        # The restore itself cannot be interrupted; notifications queue up.
        # The flag defers *future* notifications; interrupts already
        # scheduled this timestep still land here, so the wait itself must
        # also catch and defer.  The wait lasts exactly restore_seconds
        # (deferral consumes no time), so this span's duration equals the
        # recovery overhead charged above; the lost work rides along in
        # the detail for the recomputation cross-check.
        sid = self._span_begin(
            "recovery", "recovery_restore",
            {"work": restore_work, "from_bb": from_bb, "prov": ev.provenance},
        )
        self._interruptible = False
        remaining = restore_seconds
        while remaining > _EPS:
            start = self.env.now
            try:
                yield self.env.timeout(remaining)
                remaining = 0.0
            except Interrupt as intr:
                remaining -= self.env.now - start
                self._pending.append(intr.cause)
        self._interruptible = True
        self._span_end(sid, {"lost": max(lost, 0.0)})

    def _drain_pending(self):
        """Service notifications deferred during un-interruptible spans."""
        while self._pending:
            cause = self._pending.pop(0)
            kind = cause[0]
            if kind == "failure":
                yield from self._handle_failure(cause[1])
            elif kind == "proactive":
                yield from self._run_proactive(cause[1], cause[2])
            # replans are moot here: the main loop re-plans anyway
