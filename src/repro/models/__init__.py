"""C/R models: the simulation engine and the B/M1/M2/P1/P2 zoo."""

from .base import CRSimulation, ModelConfig, RunOutput
from .registry import (
    MODEL_B,
    MODEL_M1,
    MODEL_M2,
    MODEL_P1,
    MODEL_P2,
    PAPER_MODELS,
    get_model,
    lm_variant,
)

__all__ = [
    "CRSimulation",
    "ModelConfig",
    "RunOutput",
    "MODEL_B",
    "MODEL_M1",
    "MODEL_M2",
    "MODEL_P1",
    "MODEL_P2",
    "PAPER_MODELS",
    "get_model",
    "lm_variant",
]
