"""Command-line interface: ``pckpt``.

Subcommands
-----------
``pckpt run [APP MODEL] --spec FILE``
    Execute a declarative experiment spec (``docs/EXPERIMENT_SPEC.md``)
    through the campaign scheduler — or give ``APP MODEL`` flags, which
    are translated into the same spec form internally (``--dump-spec``
    prints that translation as canonical JSON and exits).  Store keys
    are identical to the equivalent kwargs/sweep invocation.
``pckpt simulate APP MODEL``
    One Monte-Carlo cell (application × model) with overhead breakdown.
    ``--metrics`` prints the merged metrics registry; ``--trace PATH``
    exports a Chrome/Perfetto trace of replication 0 (see
    ``docs/OBSERVABILITY.md``).
``pckpt experiment ID``
    Regenerate one paper artifact (fig2a, fig2b, fig2c, fig4, fig6a,
    fig6b, fig6-sys8, fig6c, fig7, fig8, table2, table4, obs9).
``pckpt campaign run|status|clear``
    Sweep grids through the campaign scheduler (``repro.campaign``): one
    shared process pool for the whole grid, a content-addressed on-disk
    result store (``--store``), incremental re-runs (``--resume``, the
    default), and ``--jobs N`` pool width.  ``campaign run`` takes a
    named sweep or ``--spec FILE``.  See ``docs/CAMPAIGN.md``.
``pckpt sched run|status|gantt``
    Batch-queue workload runs (``repro.sched``): a job stream placed on
    the machine under FCFS, EASY backfill or fair share, every job
    running its own C/R model against shared burst-buffer/PFS lanes.
    ``sched run`` executes the reference baseline workload (``--policy``,
    ``--njobs``, ``--quick``) or a spec document with a ``sched`` block
    (``--spec``, optionally cached in ``--store``); ``sched status``
    summarizes such a store; ``sched gantt`` exports one traced
    replication as a schedule Gantt chart (``--json``, ``--chrome``).
    See ``docs/SCHEDULER.md``.
``pckpt validate``
    Differential fuzzing of the DES kernel: random scenarios executed on
    the inlined fast-path loops, the ``step()`` reference, and real
    SimPy when installed, cross-checked event for event plus invariant
    oracles, whole-simulation C/R differentials, and batch-queue
    scheduling oracles; failing cases are shrunk to minimal reproducers
    (see ``docs/TESTING.md``).
``pckpt profile APP MODEL``
    Attribution-profile one traced replication: per-process and
    per-event-kind simulated + wall time inside the DES kernel, with
    collapsed-stack (``--flame``), JSON (``--json``) and Chrome-trace
    (``--chrome``, profiler tracks included) exports.
``pckpt timeline [APP MODEL | --input TRACE.jsonl]``
    Causal failure→action chains: every checkpoint action traced back to
    the failure/false alarm that caused it (``--jsonl`` to export).
``pckpt top --store PATH``
    Live dashboard tailing a running campaign's telemetry feed
    (``--once`` for a single snapshot, ``--openmetrics`` for a scrape).
    On a service-managed store the store-level feed does not exist;
    ``top`` falls back to the most recent per-job feed under
    ``<store>/service/jobs/`` (pick one explicitly with ``--job ID``).
    While tailing, ``--timeout SECONDS`` gives up with a friendly
    message if no telemetry ever appears.
``pckpt obs stitch|slo``
    Cross-layer observability queries over a result store: ``stitch``
    reassembles every process's span fragments, job events and
    telemetry lines for one trace id (``--trace-id``, ``--job``, or
    the most recent) into a single Chrome trace; ``slo`` grades
    per-tenant latency/error/cache objectives over the persisted job
    records (``--window``, ``--latency-p99``, ``--error-rate``).
    See ``docs/OBSERVABILITY.md``.
``pckpt serve --store DIR --jobs N --port P``
    Run the multi-tenant campaign service (``repro.service``): accepts
    spec submissions over HTTP, dedupes against the shared store,
    schedules tenants fair-share onto one worker pool.  See
    ``docs/SERVICE.md``.
``pckpt submit --spec FILE [--wait | --watch]``
    Submit a spec document to a running service; ``--wait`` polls to
    completion, ``--watch`` streams the job's NDJSON events live,
    ``--trace-id`` propagates a caller trace context via the
    ``X-Pckpt-Trace`` header.
``pckpt jobs`` / ``pckpt watch JOB_ID`` / ``pckpt shutdown``
    List a service's jobs, follow one job's event stream, or ask the
    service to drain gracefully.
``pckpt list``
    Show the workload catalogue and model zoo.

Examples
--------
::

    pckpt run --spec examples/specs/quickstart.json
    pckpt run XGC P2 --dump-spec > my-experiment.json
    pckpt simulate POP P2 --replications 100
    pckpt experiment table2 --replications 50
    pckpt experiment fig6a
    pckpt campaign run model-comparison --store .pckpt-store --jobs 8
    pckpt campaign run --spec examples/specs/fig6a-model-comparison.json
    pckpt campaign status --store .pckpt-store --json
    pckpt sched run --quick
    pckpt sched run --spec examples/specs/sched-backfill.json --store .pckpt-store
    pckpt top --store .pckpt-store
    pckpt serve --store .pckpt-store --jobs 4 --port 8787
    pckpt submit --spec examples/specs/quickstart.json --wait
    pckpt jobs --json
    pckpt shutdown
    pckpt profile XGC P2 --quick --flame /tmp/xgc.folded
    pckpt timeline XGC P2 --limit 10
    pckpt validate --seed 0 --cases 200
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .experiments import (
    BENCH_SCALE,
    ExperimentScale,
    export,
    fig2a,
    fig2b,
    fig2c,
    fig6,
    fig6c,
    fig8,
    ftratio,
    leadvar,
    obs9,
    run_replications,
)
from .experiments.report import format_kv
from .failures.weibull import (
    FAILURE_DISTRIBUTIONS,
    LANL_SYSTEM8_WEIBULL,
    LANL_SYSTEM18_WEIBULL,
    TITAN_WEIBULL,
)
from .models.registry import PAPER_MODELS, get_model
from .sched.jobs import POLICY_NAMES as _SCHED_POLICIES
from .workloads.applications import APPLICATION_ORDER, APPLICATIONS

__all__ = ["main", "build_parser"]


def _scale(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(
        replications=args.replications, seed=args.seed, workers=args.workers
    )


def _write_trace(args: argparse.Namespace, app, weibull) -> None:
    """Re-run replication 0 with tracing on and export the trace.

    Uses the same ``SeedSequence.spawn`` child the Monte-Carlo run used
    for its first replication, so the traced run is one of the runs the
    printed aggregate already contains.
    """
    import numpy as np

    from .analysis.metrics import trace_summary
    from .des import Trace
    from .models.base import CRSimulation

    child = np.random.SeedSequence(args.seed).spawn(1)[0]
    trace = Trace(env=None)  # adopted by the simulation's environment
    sim = CRSimulation(
        app,
        get_model(args.model),
        weibull=weibull,
        rng=np.random.default_rng(child),
        trace=trace,
    )
    sim.run()
    if args.trace.endswith(".jsonl"):
        n = trace.to_jsonl(args.trace)
        kind = "JSONL"
    else:
        n = trace.to_chrome_trace(args.trace)
        kind = "Chrome trace (open in https://ui.perfetto.dev)"
    print(f"[wrote {n} {kind} events to {args.trace}]")
    summary = trace_summary(trace)
    print("trace span totals (replication 0):")
    for name, stats in summary["spans"].items():
        print(f"  {name:<24s} x{stats['count']:<6d} {stats['seconds']:14.3f} s")
    ov = summary["overhead"]
    print(
        f"  span-derived overhead: checkpoint={ov['checkpoint']:.3f}s "
        f"recovery={ov['recovery']:.3f}s "
        f"recomputation={ov['recomputation']:.3f}s"
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    app = APPLICATIONS[args.app.upper()]
    scale = _scale(args)
    weibull = FAILURE_DISTRIBUTIONS[args.distribution]
    if args.trace:
        # Fail before the (potentially long) run, not after it.
        trace_dir = os.path.dirname(os.path.abspath(args.trace))
        if not os.path.isdir(trace_dir):
            print(
                f"error: --trace directory does not exist: {trace_dir}",
                file=sys.stderr,
            )
            return 2
    result = run_replications(
        app,
        args.model,
        replications=scale.replications,
        weibull=weibull,
        seed=scale.seed,
        workers=scale.workers,
        collect_metrics=args.metrics,
    )
    print(
        format_kv(
            {
                "application": app.name,
                "model": result.model_name,
                "replications": result.replications,
                "failure distribution": weibull.name,
                "total overhead (h)": result.total_overhead_hours,
                "checkpoint overhead (h)": result.overhead.checkpoint_reported / 3600,
                "recomputation overhead (h)": result.overhead.recomputation / 3600,
                "recovery overhead (h)": result.overhead.recovery / 3600,
                "makespan (h)": result.makespan_seconds / 3600,
                "FT ratio": result.ft_ratio,
                "failures (pooled)": result.ft.failures,
                "mitigated by LM": result.ft.mitigated_lm,
                "mitigated by p-ckpt": result.ft.mitigated_pckpt,
                "mitigated by safeguard": result.ft.mitigated_safeguard,
                "initial OCI (s)": result.oci_initial,
            },
            title=f"{app.name} under model {result.model_name}",
        )
    )
    if args.metrics and result.metrics is not None:
        print()
        print(f"metrics (merged over {result.replications} replications):")
        print(result.metrics.format())
    if args.trace:
        print()
        _write_trace(args, app, weibull)
    return 0


def _print_cell_results(results, title: str) -> None:
    """Render a ``{(model, column): SimulationResult}`` dict as a table."""
    from .experiments.report import format_table

    headers = ["model", "column", "total_overhead_h", "makespan_h", "ft_ratio"]
    rows = [
        [model, col, r.total_overhead_hours, r.makespan_seconds / 3600.0,
         r.ft_ratio]
        for (model, col), r in results.items()
    ]
    print(format_table(headers, rows, title=title))


def _load_cli_spec(args: argparse.Namespace):
    """Resolve the ``pckpt run`` invocation into a validated spec.

    ``--spec FILE`` loads the document; otherwise the positional
    ``APP MODEL`` plus the global flags are translated into the exact
    same spec form — both roads lead through one loader, so validation,
    canonicalization and store keys cannot diverge between them.

    Returns the spec, or an exit code (int) on user error.
    """
    import dataclasses

    from . import spec as espec

    if args.spec:
        if args.app or args.model:
            print("error: give APP MODEL or --spec FILE, not both",
                  file=sys.stderr)
            return 2
        if getattr(args, "scale_flags_given", False):
            print("note: --replications/--seed are ignored with --spec; "
                  "the spec document governs (edit the spec or use --quick)",
                  file=sys.stderr)
        try:
            sp = espec.load_spec(args.spec)
        except FileNotFoundError:
            print(f"error: no such spec file: {args.spec}", file=sys.stderr)
            return 2
        except espec.SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        if not (args.app and args.model):
            print("error: give APP MODEL or --spec FILE", file=sys.stderr)
            return 2
        try:
            sp = espec.spec_from_dict({
                "schema_version": espec.SPEC_SCHEMA_VERSION,
                "name": f"{args.app.upper()}-{args.model}",
                "apps": [args.app.upper()],
                "models": [args.model],
                "include_base": False,
                "failures": args.distribution,
                "replications": args.replications,
                "seed": args.seed,
            })
        except espec.SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.quick:
        # Smoke scale for CI: cut the Monte-Carlo width, nothing else.
        sp = dataclasses.replace(sp, replications=min(sp.replications, 2))
    return sp


def _cmd_run(args: argparse.Namespace) -> int:
    """Execute a declarative experiment spec (``repro.spec``)."""
    from . import spec as espec
    from .campaign import CampaignProgress, ResultStore, StoreSchemaError

    sp = _load_cli_spec(args)
    if isinstance(sp, int):
        return sp
    if args.dump_spec:
        sys.stdout.write(espec.canonical_spec_json(sp))
        return 0
    try:
        store = ResultStore(args.store) if args.store else None
    except StoreSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    progress = CampaignProgress(stream=sys.stderr)
    workers = args.jobs if args.jobs is not None else args.workers
    results = espec.run_spec(sp, store=store, workers=workers,
                             progress=progress, resume=args.resume)
    name = sp.name or (os.path.basename(args.spec) if args.spec else "cli")
    _print_cell_results(results, title=f"spec {name}")
    print()
    print(f"spec hash: {espec.spec_hash(sp)}")
    return 0


#: Everything `pckpt experiment all` regenerates, in paper order.
ALL_EXPERIMENTS = (
    "fig2a", "fig2b", "fig2c", "fig4", "table2", "fig6a", "fig6b",
    "fig6-sys8", "table4", "fig7", "fig8", "fig6c", "obs9",
)


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = _scale(args)
    exp = args.id.lower()
    if exp == "all":
        for sub in ALL_EXPERIMENTS:
            print(f"\n=== {sub} ===")
            code = _cmd_experiment(
                argparse.Namespace(
                    id=sub,
                    replications=args.replications,
                    seed=args.seed,
                    workers=args.workers,
                    json=None,
                    csv=None,
                )
            )
            if code != 0:  # pragma: no cover - defensive
                return code
        return 0

    results = []
    if exp == "fig2a":
        r = fig2a.run(seed=scale.seed)
        results.append(r)
        print(fig2a.render(r))
    elif exp == "fig2b":
        r = fig2b.run(seed=scale.seed)
        results.append(r)
        print(fig2b.render(r))
    elif exp == "fig2c":
        r = fig2c.run(seed=scale.seed)
        results.append(r)
        print(fig2c.render(r))
    elif exp == "fig4":
        for app in ("CHIMERA", "XGC", "POP"):
            r = leadvar.run(app, ("M1", "M2"), scale=scale)
            results.append(r)
            print(leadvar.render(r))
            print()
    elif exp == "fig7":
        for app in ("CHIMERA", "XGC", "POP"):
            r = leadvar.run(app, ("P1", "P2"), scale=scale)
            results.append(r)
            print(leadvar.render(r))
            print()
    elif exp == "table2":
        r = ftratio.run(("M1", "M2"), scale=scale)
        results.append(r)
        print(ftratio.render(r, title="Table II — FT ratio under M1 and M2"))
    elif exp == "table4":
        r = ftratio.run(("P1", "P2"), scale=scale)
        results.append(r)
        print(ftratio.render(r, title="Table IV — FT ratio under P1 and P2"))
    elif exp == "fig6a":
        r = fig6.run(TITAN_WEIBULL, scale=scale)
        results.append(r)
        print(fig6.render(r))
    elif exp == "fig6b":
        r = fig6.run(LANL_SYSTEM18_WEIBULL, scale=scale)
        results.append(r)
        print(fig6.render(r))
    elif exp in ("fig6-sys8", "obs7"):
        r = fig6.run(LANL_SYSTEM8_WEIBULL, scale=scale)
        results.append(r)
        print(fig6.render(r))
    elif exp == "fig6c":
        r = fig6c.run(scale=scale)
        results.append(r)
        print(fig6c.render(r))
    elif exp == "fig8":
        r = fig8.run(scale=scale)
        results.append(r)
        print(fig8.render(r))
    elif exp == "obs9":
        r = obs9.run(scale=scale)
        results.append(r)
        print(obs9.render(r))
    else:
        print(f"unknown experiment {exp!r}", file=sys.stderr)
        return 2

    if getattr(args, "json", None) or getattr(args, "csv", None):
        rows = [rec for r in results for rec in export.records(r)]
        if args.json:
            export.write_json(args.json, rows)
            print(f"[wrote {len(rows)} records to {args.json}]")
        if args.csv:
            export.write_csv(args.csv, rows)
            print(f"[wrote {len(rows)} records to {args.csv}]")
    return 0


#: Default model set per campaign sweep kind.
_CAMPAIGN_SWEEPS = {
    "model-comparison": ("B", "M1", "M2", "P1", "P2"),
    "lead-time": ("M1", "M2", "P1", "P2"),
    "fn-rate": ("M1", "M2", "P1", "P2"),
}


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import CampaignProgress, ResultStore, StoreSchemaError
    from .des.monitor import Trace
    from .experiments.report import format_table
    from .obs.telemetry import latest_snapshot
    from .experiments.sweep import (
        false_negative_sweep,
        lead_time_sweep,
        model_comparison,
    )

    if args.action == "clear":
        # wipe, not clear: must also empty a store written by an older
        # schema version, which ResultStore() refuses to open.
        removed = ResultStore.wipe(args.store)
        print(f"[removed {removed} cached cells from {args.store}]")
        return 0

    try:
        store = ResultStore(args.store) if args.store else None
    except StoreSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "status":
        if store is None:
            print("error: status requires --store PATH", file=sys.stderr)
            return 2
        if args.json:
            # The machine-readable shape shared with the service layer:
            # GET /v1/status embeds exactly this as its "store" block.
            from .campaign import status_payload

            print(json.dumps(status_payload(store), indent=2,
                             sort_keys=True))
            return 0
        print(format_kv(store.stats(), title=f"campaign store {store.root}"))
        snapshot = latest_snapshot(str(store.telemetry_path()))
        if snapshot is not None:
            eta = snapshot.get("eta_seconds")
            print()
            print(format_kv(
                {
                    "state": snapshot.get("state"),
                    "cells done": (
                        f"{snapshot.get('cells_done')}/"
                        f"{snapshot.get('cells_total')}"
                    ),
                    "replications executed": snapshot.get(
                        "replications_executed"
                    ),
                    "cache hit rate": snapshot.get("cache_hit_rate"),
                    "worker utilization": snapshot.get("worker_utilization"),
                    "workers": snapshot.get("workers"),
                    "elapsed (s)": snapshot.get("elapsed_seconds"),
                    "eta (s)": "unknown" if eta is None else eta,
                },
                title="latest telemetry (pckpt top follows it live)",
            ))
        return 0

    # action == "run"
    if (args.sweep is None) == (args.spec is None):
        print("error: give a sweep name or --spec FILE (one of the two)",
              file=sys.stderr)
        return 2
    scale = _scale(args)
    if args.jobs is not None:
        scale = ExperimentScale(
            replications=scale.replications, seed=scale.seed, workers=args.jobs
        )
    trace = Trace(env=None) if args.trace else None
    progress = CampaignProgress(trace=trace, stream=sys.stderr)

    if args.spec is not None:
        from . import spec as espec

        if getattr(args, "scale_flags_given", False):
            print("note: --replications/--seed are ignored with --spec; "
                  "the spec document governs", file=sys.stderr)
        try:
            sp = espec.load_spec(args.spec)
        except FileNotFoundError:
            print(f"error: no such spec file: {args.spec}", file=sys.stderr)
            return 2
        except espec.SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        cells = espec.run_spec(sp, store=store, workers=scale.workers,
                               progress=progress, resume=args.resume)
        title = (f"campaign spec "
                 f"{sp.name or os.path.basename(args.spec)}")
    else:
        weibull = FAILURE_DISTRIBUTIONS[args.distribution]
        models = list(args.models or _CAMPAIGN_SWEEPS[args.sweep])
        common = dict(scale=scale, weibull=weibull, store=store,
                      progress=progress, resume=args.resume)
        if args.sweep == "model-comparison":
            cells = model_comparison(models, **common)
        elif args.sweep == "lead-time":
            cells = lead_time_sweep(args.app.upper(), models, **common)
        else:
            cells = false_negative_sweep(args.app.upper(), models, **common)
        title = f"campaign {args.sweep} ({weibull.name})"

    if cells and all(hasattr(r, "policy") for r in cells.values()):
        # A sched spec: batch-queue cells aggregate to SchedResult.
        print(format_table(*_sched_table(cells), title=title))
    else:
        headers = ["model", "column", "total_overhead_h", "makespan_h",
                   "ft_ratio"]
        rows = [
            [model, col, r.total_overhead_hours, r.makespan_seconds / 3600.0,
             r.ft_ratio]
            for (model, col), r in cells.items()
        ]
        print(format_table(headers, rows, title=title))
    print()
    print("campaign counters:")
    print(progress.metrics.format())
    if trace is not None:
        if args.trace.endswith(".jsonl"):
            n = trace.to_jsonl(args.trace)
        else:
            n = trace.to_chrome_trace(args.trace)
        print(f"[wrote {n} campaign trace events to {args.trace}]")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Attribution-profile one traced replication (``repro.obs.profiler``)."""
    from dataclasses import replace

    import numpy as np

    from .des import Trace
    from .models.base import CRSimulation
    from .obs import KernelProfiler

    app = APPLICATIONS[args.app.upper()]
    if args.quick:
        # Smoke scale: cap the job's compute demand so the profiled
        # replication finishes in well under a second of wall time.
        app = replace(app, compute_hours=min(app.compute_hours, 24.0))
    weibull = FAILURE_DISTRIBUTIONS[args.distribution]
    child = np.random.SeedSequence(args.seed).spawn(1)[0]
    trace = Trace(env=None)  # adopted by the simulation's environment
    sim = CRSimulation(
        app,
        get_model(args.model),
        weibull=weibull,
        rng=np.random.default_rng(child),
        trace=trace,
    )
    profiler = KernelProfiler()
    sim.env.attach_profiler(profiler)
    out = sim.run()

    print(f"kernel attribution profile — {app.name} under {args.model} "
          f"(seed {args.seed}, replication 0)")
    print(profiler.format_table())
    stats = sim.env.kernel_stats()
    print(
        f"kernel: {stats['events_processed']:.0f} events, "
        f"{stats['wall_seconds'] * 1e3:.1f} ms wall, "
        f"{stats['sim_seconds']:.1f} s simulated"
    )

    # Accounting identity: per-event sim attributions sum to the makespan
    # (which OverheadBreakdown decomposes into useful + overheads).
    attributed = profiler.total_sim_seconds()
    drift = abs(attributed - out.makespan)
    print(f"attributed sim seconds: {attributed:.6f} "
          f"(makespan {out.makespan:.6f}, drift {drift:.2e})")
    if drift > 1e-6 or profiler.total_count() != sim.env.events_processed:
        print("error: attribution totals do not reconcile with kernel stats",
              file=sys.stderr)
        return 1

    if args.flame:
        with open(args.flame, "w", encoding="utf-8") as fp:
            fp.write(profiler.collapsed_stacks(weight=args.weight))
        print(f"[wrote collapsed stacks ({args.weight}) to {args.flame}]")
    if args.json:
        profiler.to_json(args.json)
        print(f"[wrote profile snapshot to {args.json}]")
    if args.chrome:
        n = trace.to_chrome_trace(args.chrome, profiler=profiler)
        print(f"[wrote {n} Chrome trace events (with profiler tracks) "
              f"to {args.chrome}]")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    """Causal failure→action timelines (``repro.obs.timeline``)."""
    from .obs import extract_timelines, format_timelines, timelines_to_jsonl

    if args.input:
        from .des.monitor import load_jsonl

        chains = extract_timelines(load_jsonl(args.input))
        source = args.input
    else:
        import numpy as np

        from .des import Trace
        from .models.base import CRSimulation

        app = APPLICATIONS[args.app.upper()]
        weibull = FAILURE_DISTRIBUTIONS[args.distribution]
        child = np.random.SeedSequence(args.seed).spawn(1)[0]
        trace = Trace(env=None)
        sim = CRSimulation(
            app,
            get_model(args.model),
            weibull=weibull,
            rng=np.random.default_rng(child),
            trace=trace,
        )
        sim.run()
        chains = extract_timelines(trace)
        source = f"{app.name} under {args.model} (seed {args.seed})"

    struck = sum(1 for c in chains if c.struck)
    print(f"causal timelines — {source}")
    print(f"{len(chains)} chains ({struck} struck, "
          f"{len(chains) - struck} avoided/expired)")
    print(format_timelines(chains, limit=args.limit))
    if args.jsonl:
        n = timelines_to_jsonl(chains, args.jsonl)
        print(f"[wrote {n} timeline chains to {args.jsonl}]")
    return 0


def _resolve_telemetry_path(store: str, job: str = None) -> str:
    """Locate the telemetry feed to tail under *store*.

    A locally-run campaign streams to ``<store>/telemetry.jsonl``; a
    service-managed store has no store-level feed (each job streams its
    own), so fall back to the most recently written
    ``<store>/service/jobs/<id>/telemetry.jsonl`` — or the one named by
    ``--job ID``.
    """
    import glob as _glob

    from .obs.telemetry import TELEMETRY_FILENAME

    if job:
        return os.path.join(store, "service", "jobs", job,
                            TELEMETRY_FILENAME)
    direct = os.path.join(store, TELEMETRY_FILENAME)
    if os.path.exists(direct):
        return direct
    candidates = _glob.glob(
        os.path.join(store, "service", "jobs", "*", TELEMETRY_FILENAME)
    )
    if candidates:
        return max(candidates, key=os.path.getmtime)
    return direct


def _cmd_top(args: argparse.Namespace) -> int:
    """Live campaign dashboard tailing a store's telemetry feed."""
    import time

    from .obs.telemetry import (format_top, latest_snapshot,
                                render_openmetrics)

    path = _resolve_telemetry_path(args.store, args.job)
    if args.openmetrics:
        snapshot = latest_snapshot(path)
        if snapshot is None:
            print(f"error: no telemetry at {path}", file=sys.stderr)
            return 2
        sys.stdout.write(render_openmetrics(snapshot))
        return 0
    if args.once:
        print(format_top(latest_snapshot(path), path))
        return 0
    deadline = None
    if args.timeout is not None:
        deadline = time.monotonic() + args.timeout
    try:
        while True:
            snapshot = latest_snapshot(path)
            if (snapshot is None and deadline is not None
                    and time.monotonic() >= deadline):
                print(f"pckpt top: no telemetry at {path} "
                      f"after {args.timeout:g}s (is a campaign running?)",
                      file=sys.stderr)
                return 2
            if sys.stdout.isatty():  # pragma: no cover - interactive only
                sys.stdout.write("\x1b[2J\x1b[H")
            print(format_top(snapshot, path))
            if snapshot is not None and snapshot.get("state") == "done":
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Cross-layer observability queries (``pckpt obs stitch|slo``)."""
    if args.action == "stitch":
        from .obs.stitch import (collect_trace, list_traces,
                                 resolve_job_trace, stitch_chrome)

        trace_id = args.trace_id
        if trace_id is None and args.job:
            trace_id = resolve_job_trace(args.store, args.job)
            if trace_id is None:
                print(f"error: no trace id recorded for job {args.job}",
                      file=sys.stderr)
                return 2
        if trace_id is None:
            traces = list_traces(args.store)
            if not traces:
                print(f"error: no trace fragments under "
                      f"{os.path.join(args.store, 'obs', 'trace')}",
                      file=sys.stderr)
                return 2
            trace_id = traces[-1]
            print(f"[stitching most recent trace {trace_id}]",
                  file=sys.stderr)
        collection = collect_trace(args.store, trace_id)
        if not collection["spans"] and not collection["events"]:
            print(f"error: trace {trace_id} has no spans or events "
                  f"under {args.store}", file=sys.stderr)
            return 2
        out = args.out or f"trace-{trace_id}.json"
        n = stitch_chrome(collection, out)
        print(f"[stitched {len(collection['spans'])} spans, "
              f"{len(collection['events'])} job events, "
              f"{len(collection['telemetry'])} telemetry lines "
              f"into {n} trace events at {out}]")
        return 0

    # action == "slo"
    from .obs.slo import (SLOObjectives, compute_slo, format_slo,
                          load_job_records, render_slo_metrics)

    records = load_job_records(args.store)
    objectives = SLOObjectives(
        latency_p99_seconds=args.latency_p99,
        error_rate=args.error_rate,
    )
    rows = compute_slo(records, window_seconds=args.window,
                       objectives=objectives)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if args.openmetrics:
        for line in render_slo_metrics(rows):
            print(line)
        print("# EOF")
        return 0
    print(format_slo(rows))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .validate import resolve_backends, run_validation

    try:
        backends = resolve_backends(args.backend)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_validation(
        args.seed,
        args.cases,
        backends,
        cr_cases=args.cr_cases,
        sched_cases=args.sched_cases,
        corpus_dir=Path(args.corpus) if args.corpus else None,
        shrink=not args.no_shrink,
        progress=lambda msg: print(f"[validate] {msg}", file=sys.stderr),
    )
    print(
        format_kv(
            {
                "backends": ", ".join(report.backends),
                "scenario cases": report.scenario_cases,
                "C/R differential cases": report.cr_cases,
                "sched oracle cases": report.sched_cases,
                "simpy-incompatible (kernel-only) cases": report.simpy_skipped,
                "failures": len(report.failures),
            },
            title=f"pckpt validate (seed {report.seed})",
        )
    )
    for failure in report.failures:
        print()
        print(f"FAILURE [{failure.kind}] case {failure.case_index}:")
        for violation in failure.violations[:8]:
            print(f"  - {violation}")
        if len(failure.violations) > 8:
            print(f"  ... and {len(failure.violations) - 8} more")
        if failure.shrunk is not None:
            shrunk = failure.shrunk
            rendered = (shrunk.to_json() if hasattr(shrunk, "to_json")
                        else json.dumps(shrunk.to_dict(), indent=2))
            print("  minimal reproducer:")
            for line in rendered.splitlines():
                print(f"    {line}")
        if failure.corpus_path is not None:
            print(f"  saved to {failure.corpus_path}")
    if report.ok:
        print("\nno divergences, no invariant violations")
    return 0 if report.ok else 1


def _sched_table(cells):
    """(headers, rows) for a dict of ``SchedResult`` values."""
    headers = ["policy", "jobs", "makespan_h", "utilization",
               "wait_mean_s", "wait_p95_s", "starved", "ft_ratio"]
    rows = [
        [r.policy, r.jobs, r.makespan_seconds / 3600.0, r.utilization,
         r.wait_mean_seconds, r.wait_p95_seconds, r.starved, r.ft_ratio]
        for r in cells.values()
    ]
    return headers, rows


def _cmd_sched(args: argparse.Namespace) -> int:
    """Batch-queue workload runs (``pckpt sched run|status``)."""
    from .campaign import ResultStore, StoreSchemaError
    from .experiments.report import format_table
    from .sched import bench as sched_bench

    try:
        store = ResultStore(args.store) if getattr(args, "store", None) \
            else None
    except StoreSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "gantt":
        from .obs.gantt import format_gantt, gantt_to_chrome, run_gantt

        n_jobs = 8 if args.quick else args.njobs
        payload = run_gantt(policy=args.policy, n_jobs=n_jobs,
                            seed=args.seed)
        if args.chrome:
            n = gantt_to_chrome(payload, args.chrome)
            print(f"[wrote {n} gantt trace events to {args.chrome}]",
                  file=sys.stderr)
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(format_gantt(payload))
        return 0

    if args.action == "status":
        if store is None:
            print("error: status requires --store PATH", file=sys.stderr)
            return 2
        if args.json:
            from .campaign import status_payload

            print(json.dumps(status_payload(store), indent=2,
                             sort_keys=True))
            return 0
        print(format_kv(store.stats(), title=f"sched store {store.root}"))
        return 0

    # action == "run"
    if args.spec is not None:
        from . import spec as espec
        from .campaign import CampaignProgress

        try:
            sp = espec.load_spec(args.spec)
        except FileNotFoundError:
            print(f"error: no such spec file: {args.spec}", file=sys.stderr)
            return 2
        except espec.SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if sp.sched is None:
            print("error: spec has no sched block "
                  "(see docs/SCHEDULER.md)", file=sys.stderr)
            return 2
        progress = CampaignProgress(stream=sys.stderr)
        cells = espec.run_spec(sp, store=store, workers=args.workers,
                               progress=progress)
        if args.json:
            payloads = [
                sched_bench.result_payload(r, seed=sp.seed)
                for r in cells.values()
            ]
            print(json.dumps(payloads, indent=2, sort_keys=True))
            return 0
        title = f"sched spec {sp.name or os.path.basename(args.spec)}"
        print(format_table(*_sched_table(cells), title=title))
        return 0

    n_jobs = 8 if args.quick else args.njobs
    reps = 1 if args.quick else args.replications
    result = sched_bench.run_baseline(
        policy=args.policy, n_jobs=n_jobs, seed=args.seed,
        replications=reps,
    )
    payload = sched_bench.result_payload(result, seed=args.seed,
                                         quick=args.quick)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(sched_bench.format_sched_payload(payload))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("Applications (Table I):")
    for name in APPLICATION_ORDER:
        app = APPLICATIONS[name]
        print(
            f"  {name:8s} nodes={app.nodes:5d} "
            f"ckpt={app.checkpoint_bytes_total / 2**30:12.1f} GiB "
            f"compute={app.compute_hours:5.0f} h"
        )
    print("Models:")
    for name, cfg in PAPER_MODELS.items():
        caps = [
            cap
            for cap, on in (
                ("prediction", cfg.use_prediction),
                ("safeguard", cfg.supports_safeguard),
                ("live-migration", cfg.supports_lm),
                ("p-ckpt", cfg.supports_pckpt),
                ("sigma-OCI", cfg.use_sigma_oci),
            )
            if on
        ]
        print(f"  {name:3s} {', '.join(caps) if caps else 'periodic only'}")
    print("Variants: M2-<alpha>/P2-<alpha> (LM transfer factor), P2-fn, "
          "<model>-sync, <model>-online, <model>-nbr")
    print("Failure distributions:", ", ".join(FAILURE_DISTRIBUTIONS))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from . import bench

    results = bench.run_suite(
        quick=args.quick,
        repeats=args.repeats,
        kernel_only=args.kernel_only,
        progress=lambda name: print(f"[bench] {name}", file=sys.stderr),
    )
    sha, dirty = bench.git_sha()
    payload = bench.build_payload(results, sha, dirty, quick=args.quick)
    print(bench.format_payload(payload))

    if not args.no_write:
        path = bench.write_payload(payload, Path(args.out))
        print(f"[wrote {path}]")

    if args.baseline is not None:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                base = json.load(fh)
        except FileNotFoundError:
            parent = Path(args.baseline).parent
            search_dir = parent if str(parent) != "." else Path(args.out)
            available = sorted(p.name for p in search_dir.glob("BENCH_*.json"))
            listing = (
                f"available baselines in {search_dir}: "
                + ", ".join(available)
                if available
                else f"no BENCH_*.json files in {search_dir} — run "
                     "`pckpt bench` once to create one"
            )
            print(
                f"error: baseline {args.baseline} not found; expected a "
                "committed payload matching benchmarks/kernel/"
                f"BENCH_<git-sha>.json ({listing})",
                file=sys.stderr,
            )
            return 2
        problems = bench.validate_payload(base)
        if problems:
            print(f"error: baseline {args.baseline} is not a valid bench "
                  "payload: " + "; ".join(problems), file=sys.stderr)
            return 2
        print(f"vs baseline {args.baseline} (@{base.get('git_sha')}):")
        comparison = bench.compare_payloads(base, payload)
        print(bench.format_comparison(comparison))
        if args.fail_below is not None:
            geo = bench.kernel_geomean(comparison)
            if geo is None:
                print("error: --fail-below given but the baseline shares no "
                      "comparable kernel.* benchmarks", file=sys.stderr)
                return 2
            if geo < args.fail_below:
                print(
                    f"error: kernel geomean {geo:.3f}x is below the "
                    f"--fail-below {args.fail_below:g}x regression gate",
                    file=sys.stderr,
                )
                return 1
    return 0


def _service_client(args: argparse.Namespace):
    from .service import ServiceClient

    return ServiceClient(args.host, args.port, token=args.token)


def _service_errors(fn):
    """Run *fn*, mapping service/network failures to exit codes."""
    from .service import ServiceBusy, ServiceError, SpecRejected

    try:
        return fn()
    except SpecRejected as exc:
        print(f"error: spec rejected with {len(exc.problems)} problem(s):",
              file=sys.stderr)
        for problem in exc.problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2
    except ServiceBusy as exc:
        print(f"error: {exc} — retry after {exc.retry_after:g}s "
              "(or pass --retries N)", file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ConnectionRefusedError, ConnectionResetError, OSError) as exc:
        print(f"error: cannot reach service: {exc} "
              "(is `pckpt serve` running?)", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the campaign service (``repro.service``) until shut down."""
    from .obs.slo import SLOObjectives
    from .service import load_tokens, serve

    tokens = None
    if args.tokens:
        try:
            tokens = load_tokens(args.tokens)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: bad tokens file: {exc}", file=sys.stderr)
            return 2

    def _ready(service) -> None:
        mode = f"closed ({len(tokens)} tokens)" if tokens else "open"
        print(
            f"pckpt serve: http://{service.host}:{service.port} "
            f"store={args.store} jobs={args.jobs} "
            f"queue-limit={args.queue_limit} auth={mode}",
            file=sys.stderr, flush=True,
        )

    serve(args.store, host=args.host, port=args.port, jobs=args.jobs,
          queue_limit=args.queue_limit, tokens=tokens,
          retry_after=args.retry_after, ready=_ready,
          slo=SLOObjectives(latency_p99_seconds=args.slo_latency_p99,
                            error_rate=args.slo_error_rate),
          slo_window=args.slo_window)
    print("pckpt serve: drained and stopped", file=sys.stderr)
    return 0


def _job_line(record) -> str:
    executed = record["replications_executed"]
    hit = record["cache_hit_rate"]
    return (
        f"{record['id']:<22s} {record['tenant']:<12s} "
        f"{record['state']:<8s} {record['cells']:>5d} "
        f"{record['replications']:>6d} "
        f"{'-' if executed is None else executed:>8} "
        f"{'-' if hit is None else format(hit, '.0%'):>5}"
    )


def _jobs_header() -> str:
    return (f"{'job':<22s} {'tenant':<12s} {'state':<8s} {'cells':>5s} "
            f"{'reps':>6s} {'executed':>8s} {'hit':>5s}")


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a spec document to a running service."""
    import dataclasses

    from . import spec as espec

    # Same loader as `pckpt run --spec`: validation, canonicalization
    # and the resulting spec hash cannot diverge between the two paths.
    try:
        sp = espec.load_spec(args.spec)
    except FileNotFoundError:
        print(f"error: no such spec file: {args.spec}", file=sys.stderr)
        return 2
    except espec.SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.quick:
        sp = dataclasses.replace(sp, replications=min(sp.replications, 2))
    document = espec.spec_to_dict(sp)
    client = _service_client(args)

    def _go() -> int:
        envelope = client.submit(document, retries=args.retries,
                                 trace=args.trace_id)
        record = envelope["job"]
        if not (args.wait or args.watch):
            if args.json:
                print(json.dumps(envelope, indent=2, sort_keys=True))
            else:
                how = "coalesced onto" if envelope["deduped"] else "queued as"
                print(f"{how} job {record['id']} "
                      f"({record['state']}, {record['cells']} cells, "
                      f"hash {record['spec_hash'][:12]})")
            return 0
        if args.watch:
            final_state = None
            for event in client.events(record["id"]):
                print(json.dumps(event, sort_keys=True), flush=True)
                if event["event"] in ("done", "failed"):
                    final_state = event["event"]
            return 0 if final_state == "done" else 1
        final = client.wait(record["id"], timeout=args.timeout)
        if args.json:
            print(json.dumps(final, indent=2, sort_keys=True))
        else:
            print(_jobs_header())
            print(_job_line(final))
            if final["state"] == "failed":
                print(f"error: {final['error']}", file=sys.stderr)
        return 0 if final["state"] == "done" else 1

    return _service_errors(_go)


def _cmd_jobs(args: argparse.Namespace) -> int:
    """List a running service's jobs (newest last)."""
    client = _service_client(args)

    def _go() -> int:
        records = client.jobs()
        if args.json:
            print(json.dumps({"jobs": records}, indent=2, sort_keys=True))
            return 0
        if not records:
            print("no jobs")
            return 0
        print(_jobs_header())
        for record in records:
            print(_job_line(record))
        return 0

    return _service_errors(_go)


def _cmd_watch(args: argparse.Namespace) -> int:
    """Stream one job's NDJSON events until it reaches a terminal state."""
    client = _service_client(args)

    def _go() -> int:
        final_state = None
        for event in client.events(args.job_id):
            print(json.dumps(event, sort_keys=True), flush=True)
            if event["event"] in ("done", "failed"):
                final_state = event["event"]
        return 0 if final_state == "done" else 1

    return _service_errors(_go)


def _cmd_shutdown(args: argparse.Namespace) -> int:
    """Ask a running service to drain and stop."""
    client = _service_client(args)

    def _go() -> int:
        client.shutdown()
        print("service draining (running jobs finish; queued jobs persist)")
        return 0

    return _service_errors(_go)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="pckpt",
        description="P-ckpt reproduction: coordinated prioritized checkpointing",
    )
    # None = "not given": spec-driven commands warn when the flag is
    # passed explicitly (the spec document governs); main() fills in
    # the BENCH_SCALE defaults for everything else.
    parser.add_argument("--replications", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run",
        help="execute a declarative experiment spec "
             "(docs/EXPERIMENT_SPEC.md) through the campaign scheduler",
    )
    p_run.add_argument("app", nargs="?", default=None,
                       help="application name (alternative to --spec)")
    p_run.add_argument("model", nargs="?", default=None,
                       help="model name (alternative to --spec)")
    p_run.add_argument("--spec", metavar="FILE", default=None,
                       help="experiment spec JSON (see examples/specs/)")
    p_run.add_argument(
        "--distribution",
        choices=sorted(FAILURE_DISTRIBUTIONS),
        default=TITAN_WEIBULL.name,
        help="failure distribution for the APP MODEL form",
    )
    p_run.add_argument("--store", metavar="PATH", default=None,
                       help="content-addressed result store directory")
    p_run.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached cells from --store (--no-resume recomputes)",
    )
    p_run.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="shared process-pool width (overrides --workers)")
    p_run.add_argument(
        "--quick", action="store_true",
        help="smoke scale: cap replications at 2 (CI)",
    )
    p_run.add_argument(
        "--dump-spec", action="store_true",
        help="print the canonical spec JSON and exit without running",
    )
    p_run.set_defaults(func=_cmd_run)

    p_sim = sub.add_parser("simulate", help="run one application x model cell")
    p_sim.add_argument("app", help="application name (Table I)")
    p_sim.add_argument("model", help="model name (B/M1/M2/P1/P2/M2-<a>/P2-fn)")
    p_sim.add_argument(
        "--distribution",
        choices=sorted(FAILURE_DISTRIBUTIONS),
        default=TITAN_WEIBULL.name,
    )
    p_sim.add_argument(
        "--metrics",
        action="store_true",
        help="collect per-layer metrics and print the merged registry",
    )
    p_sim.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "re-run replication 0 traced and export it: Chrome trace-event "
            "JSON (Perfetto-viewable), or JSONL when PATH ends in .jsonl"
        ),
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    p_exp.add_argument(
        "id",
        help=(
            "fig2a|fig2b|fig2c|fig4|fig6a|fig6b|fig6-sys8|fig6c|fig7|fig8|"
            "table2|table4|obs9"
        ),
    )
    p_exp.add_argument("--json", metavar="FILE", default=None,
                       help="also write raw records as JSON")
    p_exp.add_argument("--csv", metavar="FILE", default=None,
                       help="also write raw records as CSV")
    p_exp.set_defaults(func=_cmd_experiment)

    p_camp = sub.add_parser(
        "campaign",
        help="run sweeps through the shared-pool scheduler + result store",
    )
    camp_sub = p_camp.add_subparsers(dest="action", required=True)

    c_run = camp_sub.add_parser("run", help="execute a sweep as a campaign")
    c_run.add_argument(
        "sweep",
        nargs="?",
        default=None,
        choices=sorted(_CAMPAIGN_SWEEPS),
        help="which grid to run (or give --spec FILE instead)",
    )
    c_run.add_argument("--spec", metavar="FILE", default=None,
                       help="experiment spec JSON (docs/EXPERIMENT_SPEC.md)")
    c_run.add_argument("--app", default="XGC",
                       help="application for lead-time / fn-rate sweeps")
    c_run.add_argument("--models", nargs="+", default=None, metavar="MODEL",
                       help="models to sweep (default depends on the sweep)")
    c_run.add_argument(
        "--distribution",
        choices=sorted(FAILURE_DISTRIBUTIONS),
        default=TITAN_WEIBULL.name,
    )
    c_run.add_argument("--store", metavar="PATH", default=None,
                       help="content-addressed result store directory")
    c_run.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached cells from --store (--no-resume recomputes)",
    )
    c_run.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="shared process-pool width (overrides --workers)")
    c_run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "export campaign scheduling spans: Chrome trace-event JSON, "
            "or JSONL when PATH ends in .jsonl"
        ),
    )
    c_run.set_defaults(func=_cmd_campaign)

    c_status = camp_sub.add_parser("status", help="summarize a result store")
    c_status.add_argument("--store", metavar="PATH", required=True)
    c_status.add_argument(
        "--json", action="store_true",
        help="print the machine-readable status payload (the same shape "
             "the service embeds in GET /v1/status)",
    )
    c_status.set_defaults(func=_cmd_campaign)

    c_clear = camp_sub.add_parser("clear", help="empty a result store")
    c_clear.add_argument("--store", metavar="PATH", required=True)
    c_clear.set_defaults(func=_cmd_campaign)

    p_sched = sub.add_parser(
        "sched",
        help="run a batch-queue workload under a placement policy",
    )
    sched_sub = p_sched.add_subparsers(dest="action", required=True)

    s_run = sched_sub.add_parser(
        "run", help="schedule a workload (baseline or --spec FILE)"
    )
    s_run.add_argument("--spec", metavar="FILE", default=None,
                       help="experiment spec JSON with a sched block "
                            "(docs/SCHEDULER.md)")
    s_run.add_argument("--policy", choices=sorted(_SCHED_POLICIES),
                       default="easy",
                       help="placement policy for the baseline workload")
    s_run.add_argument("--njobs", type=int, default=16, metavar="N",
                       help="baseline workload size (default 16)")
    s_run.add_argument("--seed", type=int, default=0)
    s_run.add_argument("--replications", type=int, default=3, metavar="N")
    s_run.add_argument("--quick", action="store_true",
                       help="8 jobs, one replication (CI smoke)")
    s_run.add_argument("--store", metavar="PATH", default=None,
                       help="result store for --spec runs")
    s_run.add_argument("--workers", type=int, default=None, metavar="N",
                       help="process-pool width for --spec runs")
    s_run.add_argument("--json", action="store_true",
                       help="print the schema-versioned payload(s) as JSON")
    s_run.set_defaults(func=_cmd_sched)

    s_status = sched_sub.add_parser(
        "status", help="summarize a sched result store"
    )
    s_status.add_argument("--store", metavar="PATH", required=True)
    s_status.add_argument(
        "--json", action="store_true",
        help="print the machine-readable status payload",
    )
    s_status.set_defaults(func=_cmd_sched)

    s_gantt = sched_sub.add_parser(
        "gantt",
        help="export one traced replication as a schedule Gantt chart",
    )
    s_gantt.add_argument("--policy", choices=sorted(_SCHED_POLICIES),
                         default="easy",
                         help="placement policy (default easy)")
    s_gantt.add_argument("--njobs", type=int, default=16, metavar="N",
                         help="baseline workload size (default 16)")
    s_gantt.add_argument("--seed", type=int, default=0)
    s_gantt.add_argument("--quick", action="store_true",
                         help="8 jobs (CI smoke)")
    s_gantt.add_argument("--chrome", metavar="FILE", default=None,
                         help="also write a Chrome/Perfetto trace "
                              "(one pid per node band)")
    s_gantt.add_argument("--json", action="store_true",
                         help="print the schema-versioned Gantt payload")
    s_gantt.set_defaults(func=_cmd_sched)

    p_bench = sub.add_parser(
        "bench",
        help="run the kernel/simulation benchmark suite "
             "(see docs/PERFORMANCE.md)",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced workload sizes (CI smoke scale)",
    )
    p_bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed runs per benchmark; the fastest is reported (default 3)",
    )
    p_bench.add_argument(
        "--kernel-only",
        action="store_true",
        help="skip the end-to-end simulation benchmarks",
    )
    p_bench.add_argument(
        "--out",
        metavar="DIR",
        default="benchmarks/kernel",
        help="directory for BENCH_<git-sha>.json (default benchmarks/kernel)",
    )
    p_bench.add_argument(
        "--no-write",
        action="store_true",
        help="print results without writing a BENCH file",
    )
    p_bench.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="existing BENCH_*.json to print per-benchmark speedups against",
    )
    p_bench.add_argument(
        "--fail-below",
        metavar="RATIO",
        type=float,
        default=None,
        help="with --baseline: exit 1 if the kernel geomean speedup falls "
             "below RATIO (CI regression gate, e.g. 0.8 = allow 20%% loss)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_prof = sub.add_parser(
        "profile",
        help="attribution-profile one traced replication "
             "(per-process / per-event-kind sim+wall time)",
    )
    p_prof.add_argument("app", help="application name (Table I)")
    p_prof.add_argument("model", help="model name (B/M1/M2/P1/P2/...)")
    p_prof.add_argument(
        "--distribution",
        choices=sorted(FAILURE_DISTRIBUTIONS),
        default=TITAN_WEIBULL.name,
    )
    p_prof.add_argument(
        "--quick", action="store_true",
        help="cap the job's compute demand (CI smoke scale)",
    )
    p_prof.add_argument(
        "--flame", metavar="PATH", default=None,
        help="write collapsed-stack lines for flamegraph renderers",
    )
    p_prof.add_argument(
        "--weight", choices=("wall", "sim", "count"), default="wall",
        help="value column for --flame (default wall microseconds)",
    )
    p_prof.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the schema-versioned profile snapshot as JSON",
    )
    p_prof.add_argument(
        "--chrome", metavar="PATH", default=None,
        help="write a Chrome trace with per-owner profiler tracks",
    )
    p_prof.set_defaults(func=_cmd_profile)

    p_tl = sub.add_parser(
        "timeline",
        help="causal failure→action chains stitched from provenance ids",
    )
    p_tl.add_argument("app", nargs="?", default="XGC",
                      help="application name (ignored with --input)")
    p_tl.add_argument("model", nargs="?", default="P2",
                      help="model name (ignored with --input)")
    p_tl.add_argument(
        "--distribution",
        choices=sorted(FAILURE_DISTRIBUTIONS),
        default=TITAN_WEIBULL.name,
    )
    p_tl.add_argument(
        "--input", metavar="PATH", default=None,
        help="read a trace JSONL (from `pckpt simulate --trace X.jsonl`) "
             "instead of running a fresh traced replication",
    )
    p_tl.add_argument("--limit", type=int, default=None, metavar="N",
                      help="show at most N chains")
    p_tl.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="export the chains as schema-versioned JSONL",
    )
    p_tl.set_defaults(func=_cmd_timeline)

    p_top = sub.add_parser(
        "top",
        help="live dashboard tailing a campaign store's telemetry feed",
    )
    p_top.add_argument("--store", metavar="PATH", required=True)
    p_top.add_argument(
        "--job", metavar="ID", default=None,
        help="on a service-managed store: tail this job's feed "
             "(default: the most recently written one)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="print the latest snapshot and exit (no tailing)",
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="poll period while tailing (default 1s)",
    )
    p_top.add_argument(
        "--openmetrics", action="store_true",
        help="print the latest snapshot as an OpenMetrics exposition",
    )
    p_top.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="while tailing: give up if no telemetry appears within "
             "this long (default: poll forever)",
    )
    p_top.set_defaults(func=_cmd_top)

    p_obs = sub.add_parser(
        "obs",
        help="cross-layer observability: stitch traces, grade SLOs",
    )
    obs_sub = p_obs.add_subparsers(dest="action", required=True)

    o_stitch = obs_sub.add_parser(
        "stitch",
        help="reassemble one trace id's multi-process fragments into "
             "a single Chrome trace",
    )
    o_stitch.add_argument("--store", metavar="PATH", required=True,
                          help="the service/campaign result store")
    o_stitch.add_argument("--trace-id", metavar="ID", default=None,
                          help="trace id to stitch (default: resolve "
                               "via --job, else the most recent)")
    o_stitch.add_argument("--job", metavar="ID", default=None,
                          help="resolve the trace id from this service "
                               "job's persisted record")
    o_stitch.add_argument("--out", metavar="FILE", default=None,
                          help="output path (default trace-<id>.json)")
    o_stitch.set_defaults(func=_cmd_obs)

    o_slo = obs_sub.add_parser(
        "slo",
        help="per-tenant SLO report over a store's persisted job records",
    )
    o_slo.add_argument("--store", metavar="PATH", required=True,
                       help="the service result store")
    o_slo.add_argument("--window", type=float, default=3600.0,
                       metavar="SECONDS",
                       help="rolling window (default 3600)")
    o_slo.add_argument("--latency-p99", type=float, default=None,
                       metavar="SECONDS",
                       help="latency objective: p99 job latency target")
    o_slo.add_argument("--error-rate", type=float, default=None,
                       metavar="RATE",
                       help="error objective: failed/terminal target "
                            "(e.g. 0.01)")
    o_slo.add_argument("--json", action="store_true",
                       help="print the schema-versioned SLO rows")
    o_slo.add_argument("--openmetrics", action="store_true",
                       help="print the labeled series as an OpenMetrics "
                            "exposition")
    o_slo.set_defaults(func=_cmd_obs)

    p_val = sub.add_parser(
        "validate",
        help="differential fuzzing: fast-path kernel vs step reference "
             "(vs SimPy when installed), plus invariant oracles",
    )
    p_val.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; case i uses scenario seed+i (default 0)",
    )
    p_val.add_argument(
        "--cases", type=int, default=200,
        help="number of fuzzed DES scenarios (default 200)",
    )
    p_val.add_argument(
        "--backend", nargs="+", default=["all"],
        choices=["all", "fast", "step", "calendar", "simpy"],
        help="backends to cross-check (default: every available one)",
    )
    p_val.add_argument(
        "--cr-cases", type=int, default=None, metavar="N",
        help="full C/R differential simulations (default cases//10, min 2)",
    )
    p_val.add_argument(
        "--sched-cases", type=int, default=None, metavar="N",
        help="fuzzed scheduler workloads (default cases//10, min 2)",
    )
    p_val.add_argument(
        "--corpus", metavar="DIR", default=None,
        help="save shrunk reproducers here (e.g. tests/corpus)",
    )
    p_val.add_argument(
        "--no-shrink", action="store_true",
        help="report failing cases without minimizing them",
    )
    p_val.set_defaults(func=_cmd_validate)

    # -- service layer (repro.service; see docs/SERVICE.md) ------------------
    def _add_client_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1",
                       help="service host (default 127.0.0.1)")
        p.add_argument("--port", type=int, default=8787,
                       help="service port (default 8787)")
        p.add_argument("--token", default=None,
                       help="bearer token (in open mode the token names "
                            "the tenant)")

    p_serve = sub.add_parser(
        "serve",
        help="run the multi-tenant campaign service over a shared store",
    )
    p_serve.add_argument("--store", metavar="DIR", required=True,
                         help="shared content-addressed result store")
    p_serve.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="jobs executing concurrently (default 2)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8787, metavar="P",
                         help="listen port (default 8787; 0 = ephemeral)")
    p_serve.add_argument("--queue-limit", type=int, default=64, metavar="N",
                         help="max jobs waiting before 429 (default 64)")
    p_serve.add_argument("--retry-after", type=float, default=2.0,
                         metavar="SECONDS",
                         help="Retry-After hint on 429 responses")
    p_serve.add_argument("--tokens", metavar="FILE", default=None,
                         help="closed-mode auth: JSON mapping token -> "
                              "tenant (or {'tenant':..., 'weight': N})")
    p_serve.add_argument("--slo-latency-p99", type=float, default=None,
                         metavar="SECONDS",
                         help="per-tenant SLO: p99 job latency target "
                              "(burn rates on /metrics)")
    p_serve.add_argument("--slo-error-rate", type=float, default=None,
                         metavar="RATE",
                         help="per-tenant SLO: error-rate target")
    p_serve.add_argument("--slo-window", type=float, default=3600.0,
                         metavar="SECONDS",
                         help="SLO rolling window (default 3600)")
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit an experiment spec to a running service"
    )
    p_submit.add_argument("--spec", metavar="FILE", required=True,
                          help="experiment spec JSON (same loader as "
                               "`pckpt run --spec`)")
    _add_client_flags(p_submit)
    p_submit.add_argument("--quick", action="store_true",
                          help="smoke scale: cap replications at 2 (CI)")
    p_submit.add_argument("--retries", type=int, default=0, metavar="N",
                          help="back off and resubmit on 429 up to N times")
    p_submit.add_argument("--trace-id", metavar="TRACE[-SPAN]",
                          default=None,
                          help="propagate a trace context via the "
                               "X-Pckpt-Trace header (lowercase hex; "
                               "see docs/OBSERVABILITY.md)")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the job finishes")
    p_submit.add_argument("--watch", action="store_true",
                          help="stream the job's NDJSON events to stdout")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          metavar="SECONDS",
                          help="--wait limit (default 600)")
    p_submit.add_argument("--json", action="store_true",
                          help="print raw JSON records instead of tables")
    p_submit.set_defaults(func=_cmd_submit)

    p_jobs = sub.add_parser("jobs", help="list a running service's jobs")
    _add_client_flags(p_jobs)
    p_jobs.add_argument("--json", action="store_true",
                        help="print the raw job records")
    p_jobs.set_defaults(func=_cmd_jobs)

    p_watch = sub.add_parser(
        "watch", help="stream one service job's NDJSON events"
    )
    p_watch.add_argument("job_id", help="job id (from submit/jobs)")
    _add_client_flags(p_watch)
    p_watch.set_defaults(func=_cmd_watch)

    p_shut = sub.add_parser(
        "shutdown", help="gracefully drain and stop a running service"
    )
    _add_client_flags(p_shut)
    p_shut.set_defaults(func=_cmd_shutdown)

    p_list = sub.add_parser("list", help="show workloads and models")
    p_list.set_defaults(func=_cmd_list)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    args.scale_flags_given = (args.replications is not None
                              or args.seed is not None)
    if args.replications is None:
        args.replications = BENCH_SCALE.replications
    if args.seed is None:
        args.seed = BENCH_SCALE.seed
    try:
        return args.func(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
