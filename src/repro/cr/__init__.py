"""Checkpoint/Restart plumbing: snapshot ledger, async drain, recovery
planning, live migration, and adaptive OCI control."""

from .checkpoint import Snapshot, SnapshotKind, SnapshotLedger
from .drain import DrainManager
from .migration import LiveMigration, MigrationOutcome
from .oci import OCIController
from .recovery import RecoveryPlan, plan_recovery
from .safeguard import SafeguardAborted, SafeguardCheckpoint, SafeguardOutcome

__all__ = [
    "SafeguardAborted",
    "SafeguardCheckpoint",
    "SafeguardOutcome",
    "Snapshot",
    "SnapshotKind",
    "SnapshotLedger",
    "DrainManager",
    "LiveMigration",
    "MigrationOutcome",
    "OCIController",
    "RecoveryPlan",
    "plan_recovery",
]
