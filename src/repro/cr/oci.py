"""Checkpoint-interval control (paper Eqs. 1–2, applied dynamically).

The simulation framework "updates the OCI of each application periodically
using (1) and (2) to better account for a dynamically changing system
failure rate".  :class:`OCIController` encapsulates that logic:

* the failure-rate estimate — either the *oracle* rate implied by the
  configured Weibull distribution (the framework is fed the distribution
  parameters, so this is the paper's setting) or an *online* empirical
  estimate blended with the oracle prior;
* the σ discount of Eq. (2) for LM-capable models.  Crucially, the paper's
  σ does **not** include the predictor's recall — that omission is exactly
  why LM-based models overestimate their mitigation ability as the
  false-negative rate grows (Observation 9), and fixing it is the paper's
  stated future work.  ``sigma_includes_recall=True`` enables that fix
  (exercised by an ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..analysis.young import sigma_adjusted_oci, young_oci
from ..failures.injector import FailureInjector

if TYPE_CHECKING:  # pragma: no cover
    from ..des.metrics import MetricsRegistry

__all__ = ["OCIController"]


@dataclass
class OCIController:
    """Adaptive optimal-checkpoint-interval calculator for one job.

    Parameters
    ----------
    t_ckpt_bb:
        Seconds one periodic checkpoint needs to reach the BBs.
    injector:
        The job's failure injector (provides rates and lead analysis).
    nodes:
        Job node count c.
    use_sigma:
        Apply Eq. (2)'s σ discount (models M2 and P2) instead of Eq. (1).
    lm_threshold:
        θ — seconds a live migration needs; failures with longer lead are
        considered avoidable when computing σ.
    assumed_recall:
        The predictor recall the failure-analysis model *believes* it has
        (a design-time constant).  σ = assumed_recall × P(lead ≥ θ).
        The paper's models keep this at the nominal 85% even when the
        actual false-negative rate is swept upward — which is exactly why
        the LM-based models overestimate their mitigation ability in
        Observation 9.
    sigma_includes_recall:
        Use the predictor's *actual* recall instead of the assumed one
        (the paper's stated future-work fix; off by default to match the
        published model).
    online_estimation:
        Blend the oracle failure rate with the empirically observed rate.
    min_interval:
        Floor on the returned interval (seconds) — guards against
        degenerate parameters driving the interval to zero.
    metrics:
        Optional registry fed an ``oci.interval_seconds`` gauge and
        ``oci.recomputes`` / ``oci.observed_failures`` counters.
    """

    t_ckpt_bb: float
    injector: FailureInjector
    nodes: int
    use_sigma: bool = False
    lm_threshold: float = 0.0
    assumed_recall: float = 0.85
    sigma_includes_recall: bool = False
    online_estimation: bool = False
    min_interval: float = 1.0
    metrics: Optional["MetricsRegistry"] = None

    #: Observed failures (fed by the simulation when online_estimation).
    observed_failures: int = 0
    #: Elapsed simulation time (fed by the simulation).
    observed_time: float = 0.0

    def __post_init__(self) -> None:
        if self.t_ckpt_bb <= 0:
            raise ValueError("t_ckpt_bb must be positive")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.lm_threshold < 0:
            raise ValueError("lm_threshold must be non-negative")
        if self.use_sigma and self.lm_threshold == 0.0:
            raise ValueError("sigma-based OCI requires a positive lm_threshold")

    # -- rate estimation -----------------------------------------------------
    def per_node_rate(self) -> float:
        """Current per-node failure-rate estimate (failures/second)."""
        oracle = self.injector.weibull_app.mtbf_hours  # app-level MTBF, hours
        oracle_rate = 1.0 / (oracle * 3600.0 * self.nodes)  # per node per sec
        if not self.online_estimation or self.observed_time <= 0.0:
            return oracle_rate
        # Bayesian-flavoured blend: oracle acts as one pseudo-observation.
        empirical = self.observed_failures / (self.observed_time * self.nodes)
        weight = self.observed_failures / (self.observed_failures + 1.0)
        return weight * empirical + (1.0 - weight) * oracle_rate

    def record_failure(self) -> None:
        """Feed one observed failure into the online estimator."""
        self.observed_failures += 1
        if self.metrics is not None:
            self.metrics.counter("oci.observed_failures").inc()

    def record_time(self, now: float) -> None:
        """Feed the current simulation time into the online estimator."""
        self.observed_time = max(self.observed_time, now)

    # -- sigma ----------------------------------------------------------------
    def sigma(self) -> float:
        """σ — fraction of failures live migration is expected to avert."""
        if not self.use_sigma:
            return 0.0
        survival = float(
            self.injector.lead_model.survival(
                self.lm_threshold / self.injector.predictor.lead_scale
            )
        )
        recall = (
            self.injector.predictor.recall
            if self.sigma_includes_recall
            else self.assumed_recall
        )
        # Eq. (2) requires sigma < 1; clamp for pathological thresholds.
        return min(recall * survival, 0.999)

    # -- the interval -----------------------------------------------------------
    def interval(self) -> float:
        """Current optimal compute interval between checkpoints (seconds)."""
        rate = self.per_node_rate()
        if self.use_sigma:
            oci = sigma_adjusted_oci(self.t_ckpt_bb, rate, self.nodes, self.sigma())
        else:
            oci = young_oci(self.t_ckpt_bb, rate, self.nodes)
        oci = max(oci, self.min_interval)
        if self.metrics is not None:
            self.metrics.counter("oci.recomputes").inc()
            self.metrics.gauge("oci.interval_seconds").set(oci)
        return oci
