"""Recovery-path modeling (paper Sec. II checkpoint model).

Two recovery regimes exist, with very different costs:

* **after an unmitigated failure** from a *periodic* snapshot: only the
  replacement node reads the PFS; every survivor restores from its local
  BB.  Cost = max(single-node PFS read, BB read) + restart latency — PFS
  is never the bottleneck (single reader), so recovery is cheap.
* **after a proactively mitigated failure** (safeguard or p-ckpt): the
  snapshot exists only on the PFS, so *all* nodes read it back at
  aggregate PFS bandwidth.  This is why model P1 is the only one showing
  visible recovery overhead (≈2.5–6% of total, Fig 6).

An optional **neighbor level** (FTI level 1 / Bouguerra et al.'s
substrate — the paper cites it as orthogonal) mirrors each periodic
checkpoint onto a partner node's BB: the replacement node then pulls its
share from the dead node's partner over the interconnect instead of the
PFS.  With the paper's single-node failure model the partner always
survives, so the neighbor copy is always usable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..des.metrics import MetricsRegistry

from ..platform.burstbuffer import BurstBufferSpec
from ..platform.interconnect import InterconnectSpec
from ..platform.pfs import PFSSpec
from .checkpoint import Snapshot, SnapshotKind, SnapshotLedger

__all__ = ["RecoveryPlan", "plan_recovery"]


@dataclass(frozen=True)
class RecoveryPlan:
    """The cost and target of one recovery operation.

    Attributes
    ----------
    restore_work:
        Application progress (useful seconds) of the restored snapshot;
        0.0 when no snapshot survives and the job restarts from scratch.
    read_seconds:
        Wall time of the restore reads.
    restart_delay:
        Fixed relaunch latency (replacement allocation, MPI wire-up).
    from_bb:
        True when survivors restored from their BBs (fast path).
    """

    restore_work: float
    read_seconds: float
    restart_delay: float
    from_bb: bool

    @property
    def total_seconds(self) -> float:
        """Total recovery overhead contribution."""
        return self.read_seconds + self.restart_delay


def plan_recovery(
    ledger: SnapshotLedger,
    pfs: PFSSpec,
    bb: BurstBufferSpec,
    nodes: int,
    bytes_per_node: float,
    restart_delay: float,
    neighbor: Optional[InterconnectSpec] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> RecoveryPlan:
    """Determine the best recovery action after a node failure.

    Parameters
    ----------
    ledger:
        The job's snapshot ledger.
    pfs, bb:
        Storage specs for read-time queries.
    nodes:
        Application node count (restore fan-in for the PFS path).
    bytes_per_node:
        Per-node checkpoint size.
    restart_delay:
        Platform relaunch latency (seconds).
    neighbor:
        When the job runs neighbor-level checkpointing, the interconnect
        the replacement node pulls its share over; survivors still use
        their BBs.  The neighbor copy covers the *newest BB generation*
        (it is written alongside the BB stage), so recovery no longer
        waits for the PFS drain.
    metrics:
        Optional registry fed ``recovery.plans`` / ``recovery.from_bb`` /
        ``recovery.full_restarts`` counters and a ``recovery.read_seconds``
        histogram.
    """

    def _record(plan: RecoveryPlan) -> RecoveryPlan:
        if metrics is not None:
            metrics.counter("recovery.plans").inc()
            if plan.from_bb:
                metrics.counter("recovery.from_bb").inc()
            if plan.restore_work == 0.0:
                metrics.counter("recovery.full_restarts").inc()
            metrics.histogram("recovery.read_seconds").observe(plan.read_seconds)
        return plan

    snap = ledger.recovery_snapshot()
    if neighbor is not None and ledger.bb is not None and (
        snap is None or ledger.bb.work >= snap.work
    ):
        # Neighbor level: the newest BB generation is recoverable even
        # before its drain lands — the partner holds the dead node's copy
        # and streams it to the replacement over the interconnect.
        read = max(
            bb.read_time(bytes_per_node),
            neighbor.transfer_time(bytes_per_node) + bb.read_time(bytes_per_node),
        )
        return _record(
            RecoveryPlan(ledger.bb.work, read, restart_delay, from_bb=True)
        )

    if snap is None:
        # Nothing committed anywhere: full restart, nothing to read.
        return _record(RecoveryPlan(0.0, 0.0, restart_delay, from_bb=False))

    if snap.kind is SnapshotKind.PERIODIC and ledger.survivors_can_use_bb():
        # Survivors hit their BBs in parallel; the replacement node is the
        # only PFS reader.  The two proceed concurrently.
        read = max(
            bb.read_time(bytes_per_node),
            pfs.replacement_read_time(bytes_per_node),
        )
        return _record(
            RecoveryPlan(snap.work, read, restart_delay, from_bb=True)
        )

    # Proactive snapshot (or BBs out of sync): everyone reads the PFS.
    read = pfs.full_restore_read_time(nodes, bytes_per_node)
    return _record(RecoveryPlan(snap.work, read, restart_delay, from_bb=False))
