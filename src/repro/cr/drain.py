"""Asynchronous BB→PFS checkpoint draining.

Periodic checkpoints are staged to the node-local BBs (blocking the
application only for the fast BB write) and later *bled off* to the PFS in
the background.  The bleed-off is throttled — only a bounded number of
nodes transfer concurrently — so it does not contend with application I/O
(paper Sec. II).  A snapshot becomes usable for replacement-node recovery
only when its drain completes; a rollback cancels in-flight drains of
now-invalid snapshots.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..des import Environment, Interrupt, Process, Trace
from ..des.metrics import MetricsRegistry
from ..platform.pfs import PFSSpec
from .checkpoint import Snapshot, SnapshotLedger

__all__ = ["DrainManager"]


class DrainManager:
    """Owns the background drain pipeline of one application.

    Drains are serialized (one snapshot in flight at a time) in a FIFO:
    with a sane OCI the pipe is empty long before the next checkpoint, but
    the manager stays correct if configuration makes drains slower than
    the checkpoint cadence.

    Parameters
    ----------
    env:
        Simulation environment.
    pfs:
        PFS spec (provides :meth:`~repro.platform.pfs.PFSSpec.drain_time`).
    ledger:
        Snapshot ledger to notify on completion.
    nodes:
        Application node count.
    bytes_per_node:
        Per-node checkpoint size.
    on_drained:
        Optional callback invoked with the snapshot when a drain lands.
    trace:
        Optional trace; each drain becomes a ``drain_flush`` span on the
        ``drain`` source (cancellations close the span early).
    metrics:
        Optional registry fed ``drain.completed`` / ``drain.cancelled``
        counters and a ``drain.seconds`` histogram.
    """

    def __init__(
        self,
        env: Environment,
        pfs: PFSSpec,
        ledger: SnapshotLedger,
        nodes: int,
        bytes_per_node: float,
        on_drained: Optional[Callable[[Snapshot], None]] = None,
        trace: Optional[Trace] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.env = env
        self.pfs = pfs
        self.ledger = ledger
        self.nodes = nodes
        self.bytes_per_node = bytes_per_node
        self.on_drained = on_drained
        self.trace = trace
        self.metrics = metrics
        self._pending: list[Snapshot] = []
        self._worker: Optional[Process] = None
        #: Completed drain count (diagnostics / tests).
        self.completed = 0
        #: Cancelled (rolled-back) snapshot count.
        self.cancelled = 0

    @property
    def busy(self) -> bool:
        """True while any drain is queued or in flight."""
        return bool(self._pending) or self._worker is not None

    def submit(self, snap: Snapshot) -> None:
        """Queue a freshly staged periodic snapshot for draining."""
        self._pending.append(snap)
        if self._worker is None:
            self._worker = self.env.process(self._run(), name="drain-worker")

    def cancel_newer_than(self, work: float) -> None:
        """Drop queued/in-flight drains of snapshots newer than *work*.

        Called on rollback: those snapshots no longer represent reachable
        application state.
        """
        before = len(self._pending)
        self._pending = [s for s in self._pending if s.work <= work]
        self.cancelled += before - len(self._pending)
        if self._worker is not None and self._worker.is_alive:
            self._worker.interrupt(("drain-cancel", work))

    def _run(self):
        """Worker process: drain queued snapshots one at a time."""
        # Instrumentation handles are hoisted once per worker activation;
        # with both disabled the loop body touches neither attribute again.
        trace = self.trace
        metrics = self.metrics
        try:
            while self._pending:
                snap = self._pending.pop(0)
                duration = self.pfs.drain_time(self.nodes, self.bytes_per_node)
                sid = (
                    trace.span_begin("drain", "drain_flush", snap.work)
                    if trace is not None else 0
                )
                remaining = duration
                start = self.env.now
                while remaining > 0:
                    try:
                        yield self.env.timeout(remaining)
                        remaining = 0.0
                    except Interrupt as intr:
                        kind, work = intr.cause
                        assert kind == "drain-cancel"
                        if snap.work > work:
                            # This snapshot was invalidated mid-flight.
                            self.cancelled += 1
                            snap = None  # type: ignore[assignment]
                            break
                        remaining -= self.env.now - start
                        start = self.env.now
                if trace is not None:
                    trace.span_end(
                        sid, "cancelled" if snap is None else "landed"
                    )
                if snap is None:
                    if metrics is not None:
                        metrics.counter("drain.cancelled").inc()
                    continue
                self.ledger.record_drained(snap)
                self.completed += 1
                if metrics is not None:
                    metrics.counter("drain.completed").inc()
                    metrics.histogram("drain.seconds").observe(duration)
                if self.on_drained is not None:
                    self.on_drained(snap)
        finally:
            self._worker = None
