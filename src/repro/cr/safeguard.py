"""Safeguard (just-in-time) checkpointing — Bouguerra et al. [14], model M1.

On a failure prediction, *all* nodes synchronously commit their state to
the PFS in one collective write.  The failure is mitigated only if the
entire write finishes before the failure strikes — which is why safeguard
checkpointing collapses for large applications (CHIMERA's all-node commit
takes minutes while typical lead times are ~43 s; Table II's M1 column).

Like :class:`~repro.core.pckpt.PckptProtocol`, the run executes inside the
application process (the application is blocked).  Predictions arriving
mid-write simply attach to the ongoing safeguard: its snapshot covers every
node, so a completion covers them too.  Any node failure mid-write aborts
it — the collective is not prioritized, which is precisely the deficiency
p-ckpt fixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Union

from ..des import Environment, Interrupt
from ..failures.injector import FailureEvent, FalseAlarmEvent

__all__ = ["SafeguardAborted", "SafeguardOutcome", "SafeguardCheckpoint"]

_EPS = 1e-9


class SafeguardAborted(Exception):
    """A failure struck before the collective write finished."""

    def __init__(self, failure: FailureEvent) -> None:
        super().__init__(f"safeguard aborted by failure of node {failure.node}")
        self.failure = failure


@dataclass
class SafeguardOutcome:
    """Result of a completed safeguard checkpoint.

    Attributes
    ----------
    snapshot_work:
        Application progress the snapshot captured.
    served:
        The predictions this safeguard covers (trigger + mid-write joiners).
    duration:
        Blocked time of the collective write.
    pending_failures:
        Failures of already-covered (migrated-away) nodes that struck
        mid-write; recovery runs after the write completes.
    """

    snapshot_work: float
    served: List[Union[FailureEvent, FalseAlarmEvent]]
    duration: float
    pending_failures: List[FailureEvent]


class SafeguardCheckpoint:
    """One collective safeguard write, driven inside the app process.

    Parameters
    ----------
    env:
        Simulation environment.
    snapshot_work:
        Application progress at the start of the write.
    write_seconds:
        Duration of the all-node collective PFS commit.
    trigger:
        The prediction that initiated the safeguard.
    already_covered:
        Nodes whose failures cannot hurt the snapshot (migrated away).
    """

    def __init__(
        self,
        env: Environment,
        snapshot_work: float,
        write_seconds: float,
        trigger: Union[FailureEvent, FalseAlarmEvent],
        already_covered: Optional[Set[int]] = None,
    ) -> None:
        if write_seconds < 0:
            raise ValueError("write_seconds must be non-negative")
        self.env = env
        self.snapshot_work = snapshot_work
        self.write_seconds = write_seconds
        self.served: List[Union[FailureEvent, FalseAlarmEvent]] = [trigger]
        self.already_covered: Set[int] = set(already_covered or ())
        self.pending_failures: List[FailureEvent] = []
        self._spent = 0.0

    @property
    def spent(self) -> float:
        """Blocked seconds burned so far (valid after an abort too)."""
        return self._spent

    def run(self):
        """Generator: perform the collective write, handling interrupts."""
        remaining = self.write_seconds
        while remaining > _EPS:
            start = self.env.now
            try:
                yield self.env.timeout(remaining)
                self._spent += self.env.now - start
                remaining = 0.0
            except Interrupt as intr:
                self._spent += self.env.now - start
                remaining -= self.env.now - start
                kind = intr.cause[0]
                if kind in ("prediction", "proactive"):
                    # The in-flight safeguard will cover this node too.
                    self.served.append(intr.cause[1])
                elif kind == "failure":
                    failure: FailureEvent = intr.cause[1]
                    if failure.node in self.already_covered:
                        self.pending_failures.append(failure)
                    else:
                        raise SafeguardAborted(failure)
                # other causes (replan, ...) are irrelevant while blocked
        return SafeguardOutcome(
            snapshot_work=self.snapshot_work,
            served=list(self.served),
            duration=self._spent,
            pending_failures=list(self.pending_failures),
        )
