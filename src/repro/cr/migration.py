"""Live-migration engine (Wang et al. [11] / Behera et al. [16] style).

A live migration streams the vulnerable node's process image (α× the
checkpoint footprint, DRAM-bounded) to a healthy spare over the
interconnect while the application keeps running at a slightly reduced
rate.  Completing before the predicted failure *avoids* it outright: no
recovery, no recomputation.  The hybrid model may abort an in-flight
migration when a more urgent prediction arrives (Fig 5).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from ..des import Environment, Interrupt, Process, Trace
from ..failures.injector import FailureEvent, FalseAlarmEvent
from ..platform.system import PlatformSpec

__all__ = ["MigrationOutcome", "LiveMigration"]


class MigrationOutcome(enum.Enum):
    """Terminal states of one live migration."""

    #: Transfer finished; the process vacated the vulnerable node.
    COMPLETED = "completed"
    #: Aborted by the C/R model (e.g. a shorter-lead prediction arrived).
    ABORTED = "aborted"
    #: The predicted failure struck before the transfer finished.
    OVERTAKEN = "overtaken"


class LiveMigration:
    """One in-flight live migration, running as its own DES process.

    Parameters
    ----------
    env:
        Simulation environment.
    platform:
        Provides interconnect bandwidth / DRAM bound / α scaling.
    node:
        Vulnerable node index being vacated.
    prediction:
        The prediction that triggered this migration (real or false).
    ckpt_bytes_per_node:
        Per-node checkpoint footprint (scaled by α for the transfer).
    alpha:
        LM transfer-size factor (paper default 3×; swept in Fig 6c).
    on_done:
        Callback ``(migration, outcome)`` invoked at termination.
    trace:
        Optional trace; the transfer becomes an ``lm_transfer`` span on
        the ``lm`` source, closed with the outcome as detail.
    """

    def __init__(
        self,
        env: Environment,
        platform: PlatformSpec,
        node: int,
        prediction: FailureEvent | FalseAlarmEvent,
        ckpt_bytes_per_node: float,
        alpha: float = 3.0,
        on_done: Optional[Callable[["LiveMigration", MigrationOutcome], None]] = None,
        trace: Optional[Trace] = None,
    ) -> None:
        self.env = env
        self.platform = platform
        self.node = int(node)
        self.prediction = prediction
        self.alpha = float(alpha)
        self.transfer_seconds = platform.lm_transfer_time(ckpt_bytes_per_node, alpha)
        self.started_at = env.now
        self.outcome: Optional[MigrationOutcome] = None
        self._on_done = on_done
        self._trace = trace
        self._sid = (
            trace.span_begin(
                "lm", "lm_transfer",
                {"node": self.node,
                 "prov": getattr(prediction, "provenance", -1)},
            )
            if trace is not None else 0
        )
        self._proc: Process = env.process(self._run(), name=f"lm/node{node}")

    # -- queries -----------------------------------------------------------
    @property
    def in_flight(self) -> bool:
        """True until the migration reaches a terminal state."""
        return self.outcome is None

    @property
    def eta(self) -> float:
        """Absolute completion time if nothing interferes."""
        return self.started_at + self.transfer_seconds

    def completes_before(self, deadline: float) -> bool:
        """Whether the transfer will finish strictly before *deadline*."""
        return self.eta <= deadline

    # -- control -------------------------------------------------------------
    def abort(self, reason: str = "abort") -> None:
        """Abort the migration (hybrid model: a shorter lead preempted it)."""
        if self.in_flight and self._proc.is_alive:
            self._proc.interrupt(("lm-abort", reason))

    def overtake(self) -> None:
        """The predicted failure struck mid-transfer; the migration dies."""
        if self.in_flight and self._proc.is_alive:
            self._proc.interrupt(("lm-overtaken", None))

    # -- process -----------------------------------------------------------
    def _run(self):
        try:
            yield self.env.timeout(self.transfer_seconds)
            self.outcome = MigrationOutcome.COMPLETED
        except Interrupt as intr:
            kind, _ = intr.cause
            self.outcome = (
                MigrationOutcome.ABORTED if kind == "lm-abort"
                else MigrationOutcome.OVERTAKEN
            )
        if self._trace is not None:
            self._trace.span_end(self._sid, self.outcome.value)
        if self._on_done is not None:
            self._on_done(self, self.outcome)
