"""Checkpoint snapshot bookkeeping (the multi-level storage ledger).

The C/R models juggle snapshots across two storage levels — node-local BBs
and the PFS — with different availability guarantees:

* a **periodic** checkpoint lives in every node's BB immediately and
  reaches the PFS only once its asynchronous drain completes;
* a **proactive** checkpoint (safeguard or p-ckpt) is written straight to
  the PFS and never exists in the BBs.

Recovery needs a snapshot that the *replacement node* can read (PFS) and
that survivors can restore consistently (BB if they still hold the same
snapshot, PFS otherwise).  :class:`SnapshotLedger` tracks exactly this and
implements the Fig 1(B) hazard: a failure while the newest periodic
checkpoint is still draining forfeits it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..des.metrics import MetricsRegistry

__all__ = ["SnapshotKind", "Snapshot", "SnapshotLedger"]


def _noop(*_args, **_kwargs) -> None:
    """Do-nothing sink bound in place of disabled metrics recording."""
    return None


class SnapshotKind(enum.Enum):
    """Provenance of a snapshot (determines recovery read paths)."""

    #: Periodic checkpoint staged in the burst buffers.
    PERIODIC = "periodic"
    #: Proactive checkpoint committed directly to the PFS.
    PROACTIVE = "proactive"


@dataclass(frozen=True)
class Snapshot:
    """One application-wide consistent checkpoint.

    Attributes
    ----------
    work:
        Useful compute seconds captured by this snapshot.
    kind:
        Periodic (BB-staged) or proactive (PFS-direct).
    time:
        Simulation time the snapshot was completed.
    """

    work: float
    kind: SnapshotKind
    time: float


class SnapshotLedger:
    """Tracks which snapshots exist where, and which recovery can use.

    The ledger keeps at most one "newest" snapshot per storage level —
    older generations are never preferred by recovery, so tracking them
    adds nothing (BB capacity for two generations is asserted by the
    platform checks at simulation start).
    """

    def __init__(self, metrics: Optional["MetricsRegistry"] = None) -> None:
        #: Newest snapshot resident in every node's BB (None before the
        #: first periodic checkpoint).
        self.bb: Optional[Snapshot] = None
        #: Newest snapshot fully committed to the PFS (drained periodic or
        #: proactive).
        self.pfs: Optional[Snapshot] = None
        self.metrics = metrics
        if metrics is None:
            # Ledger updates run once per checkpoint/rollback event; with
            # metrics disabled the counter helper is rebound to a no-op so
            # those paths skip the None check entirely.
            self._count = _noop

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # -- updates -------------------------------------------------------------
    def record_periodic(self, work: float, time: float) -> Snapshot:
        """A periodic checkpoint just reached the BBs (drain still pending)."""
        snap = Snapshot(work, SnapshotKind.PERIODIC, time)
        self.bb = snap
        self._count("ledger.periodic_recorded")
        return snap

    def record_drained(self, snap: Snapshot) -> None:
        """An asynchronous drain finished: *snap* is now PFS-complete."""
        if self.pfs is None or snap.work >= self.pfs.work:
            self.pfs = snap
        self._count("ledger.drained")

    def record_proactive(self, work: float, time: float) -> Snapshot:
        """A proactive (safeguard / p-ckpt) PFS commit completed."""
        snap = Snapshot(work, SnapshotKind.PROACTIVE, time)
        if self.pfs is None or snap.work >= self.pfs.work:
            self.pfs = snap
        self._count("ledger.proactive_recorded")
        return snap

    # -- queries -----------------------------------------------------------
    def recovery_snapshot(self) -> Optional[Snapshot]:
        """Best snapshot an unmitigated recovery can restore.

        Must be PFS-complete (the replacement node has no BB history).
        ``None`` means restart from the beginning.
        """
        return self.pfs

    def survivors_can_use_bb(self) -> bool:
        """True when survivors may restore the recovery snapshot from BB.

        Requires the PFS-complete snapshot to be the same generation the
        BBs hold (a drained periodic checkpoint, not a proactive one).
        """
        return (
            self.pfs is not None
            and self.pfs.kind is SnapshotKind.PERIODIC
            and self.bb is not None
            and self.bb.work == self.pfs.work
        )

    # -- rollback -------------------------------------------------------------
    def rollback(self, work: float) -> None:
        """Invalidate snapshots newer than the restored state.

        After recovery to *work*, BB contents ahead of it are useless
        (Fig 1B: the failure forfeited the undrained generation).
        """
        if self.bb is not None and self.bb.work > work:
            self.bb = None
            self._count("ledger.bb_forfeited")
        if self.pfs is not None and self.pfs.work > work:  # pragma: no cover
            # Recovery never restores below the PFS snapshot; guard anyway.
            self.pfs = None
        self._count("ledger.rollbacks")

    def __repr__(self) -> str:
        return f"<SnapshotLedger bb={self.bb} pfs={self.pfs}>"
