"""PFS performance models consumed by the C/R simulation.

Two interchangeable backends implement the :class:`PFSModel` protocol:

* :class:`AnalyticPFSModel` — evaluates the closed-form laws of
  :mod:`repro.iomodel.bandwidth` directly.  Deterministic and fast; the
  default for the C/R simulations.
* :class:`MatrixPFSModel` — the paper's actual mechanism: a measured
  (here: synthetically measured) performance matrix over a
  (node count × transfer size) grid, interpolated bilinearly in log-log
  space.  "In our simulation, this performance matrix is used to
  calculate the time required to store checkpoint data in the PFS."

Both expose write/read *time* for an aggregate operation; per the paper we
assume the read matrix equals the write matrix (fsync-purged caches), and
recovery reads involve a single node so they never hit aggregate limits.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np
from scipy.interpolate import RegularGridInterpolator

from .bandwidth import aggregate_bandwidth, single_node_bandwidth
from .calibration import WeakScalingSweep, run_weak_scaling_sweep

__all__ = ["PFSModel", "AnalyticPFSModel", "MatrixPFSModel"]


@runtime_checkable
class PFSModel(Protocol):
    """Interface the C/R models require from a PFS performance model."""

    def write_bandwidth(self, nnodes: int, bytes_per_node: float) -> float:
        """Aggregate write bandwidth (bytes/s) for the given operation."""

    def write_time(self, nnodes: int, bytes_per_node: float) -> float:
        """Seconds for *nnodes* nodes to each write *bytes_per_node*."""

    def read_time(self, nnodes: int, bytes_per_node: float) -> float:
        """Seconds for *nnodes* nodes to each read *bytes_per_node*."""


class AnalyticPFSModel:
    """Closed-form PFS performance model (default backend).

    Parameters
    ----------
    ntasks:
        Writer tasks per node; the C/R model uses the measured optimum (8).
    """

    def __init__(self, ntasks: int = 8) -> None:
        self.ntasks = int(ntasks)
        # A simulation queries the same handful of (nodes, size) cells over
        # and over (fixed app geometry), so results are memoized.  The
        # cache is unbounded but in practice holds a few entries per run.
        self._bw_cache: dict = {}

    def write_bandwidth(self, nnodes: int, bytes_per_node: float) -> float:
        key = (nnodes, bytes_per_node)
        cached = self._bw_cache.get(key)
        if cached is not None:
            return cached
        if nnodes < 1:
            raise ValueError("nnodes must be >= 1")
        if bytes_per_node < 0:
            raise ValueError("bytes_per_node must be non-negative")
        if nnodes == 1:
            bw = float(single_node_bandwidth(bytes_per_node, self.ntasks))
        else:
            bw = float(aggregate_bandwidth(nnodes, bytes_per_node, self.ntasks))
        self._bw_cache[key] = bw
        return bw

    def write_time(self, nnodes: int, bytes_per_node: float) -> float:
        if bytes_per_node == 0:
            return 0.0
        total = nnodes * bytes_per_node
        return total / self.write_bandwidth(nnodes, bytes_per_node)

    # Per Sec. IV the same matrix is assumed for reads.
    def read_time(self, nnodes: int, bytes_per_node: float) -> float:
        return self.write_time(nnodes, bytes_per_node)

    def __repr__(self) -> str:
        return f"AnalyticPFSModel(ntasks={self.ntasks})"


class MatrixPFSModel:
    """Interpolated performance-matrix backend (the paper's mechanism).

    Parameters
    ----------
    sweep:
        A :class:`~repro.iomodel.calibration.WeakScalingSweep`; if omitted a
        noiseless sweep over the default grid is generated.

    Notes
    -----
    Interpolation is bilinear in (log2 nodes, log2 size) over log
    bandwidth, which is smooth and positive by construction.  Queries
    outside the grid are clamped to the grid edge (bandwidth saturates at
    scale, so clamping is the physically sensible extrapolation).
    """

    def __init__(self, sweep: WeakScalingSweep | None = None) -> None:
        if sweep is None:
            sweep = run_weak_scaling_sweep(rng=None)
        self.sweep = sweep
        nodes = np.asarray(sweep.node_counts, dtype=float)
        sizes = np.asarray(sweep.transfer_sizes, dtype=float)
        if np.any(sweep.bandwidth <= 0):
            raise ValueError("performance matrix must be strictly positive")
        self._log_nodes = np.log2(nodes)
        self._log_sizes = np.log2(sizes)
        self._interp = RegularGridInterpolator(
            (self._log_nodes, self._log_sizes),
            np.log(sweep.bandwidth),
            method="linear",
            bounds_error=False,
            fill_value=None,  # linear extrapolation, then clamped below
        )
        self._node_range = (float(nodes.min()), float(nodes.max()))
        self._size_range = (float(sizes.min()), float(sizes.max()))
        # Memoized per (nnodes, bytes_per_node) query — the interpolator
        # call costs microseconds of numpy machinery per lookup, and a
        # simulation asks for the same few grid cells thousands of times.
        self._bw_cache: dict = {}

    def write_bandwidth(self, nnodes: int, bytes_per_node: float) -> float:
        key = (nnodes, bytes_per_node)
        cached = self._bw_cache.get(key)
        if cached is not None:
            return cached
        if nnodes < 1:
            raise ValueError("nnodes must be >= 1")
        if bytes_per_node <= 0:
            raise ValueError("bytes_per_node must be positive for a bandwidth query")
        n = float(np.clip(nnodes, *self._node_range))
        s = float(np.clip(bytes_per_node, *self._size_range))
        log_bw = self._interp([[np.log2(n), np.log2(s)]])[0]
        bw = float(np.exp(log_bw))
        self._bw_cache[key] = bw
        return bw

    def write_time(self, nnodes: int, bytes_per_node: float) -> float:
        if bytes_per_node == 0:
            return 0.0
        total = nnodes * bytes_per_node
        return total / self.write_bandwidth(nnodes, bytes_per_node)

    def read_time(self, nnodes: int, bytes_per_node: float) -> float:
        return self.write_time(nnodes, bytes_per_node)

    def __repr__(self) -> str:
        return (
            f"MatrixPFSModel(grid={len(self.sweep.node_counts)}x"
            f"{len(self.sweep.transfer_sizes)})"
        )
