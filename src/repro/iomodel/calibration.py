"""Synthetic re-runs of the paper's two I/O characterization experiments.

The paper measured GPFS on Summit directly; we do not have Summit, so these
functions *simulate the measurement campaign* on top of the analytic
bandwidth laws in :mod:`repro.iomodel.bandwidth`, including run-to-run
measurement noise and the 10-run averaging the paper used.  The output
tables have the same axes as Fig 2b and Fig 2c and feed
:class:`repro.iomodel.matrix.IOPerformanceMatrix`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .bandwidth import (
    GiB,
    MiB,
    MAX_TASKS_PER_NODE,
    aggregate_bandwidth,
    single_node_bandwidth,
)

__all__ = [
    "DEFAULT_TASK_COUNTS",
    "DEFAULT_TRANSFER_SIZES",
    "DEFAULT_NODE_COUNTS",
    "SingleNodeSweep",
    "WeakScalingSweep",
    "run_single_node_sweep",
    "run_weak_scaling_sweep",
]

#: Writer-task counts swept in the single-node experiment (Fig 2b).
DEFAULT_TASK_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32, 42)

#: Per-node transfer sizes swept in both experiments (bytes).
DEFAULT_TRANSFER_SIZES: Tuple[float, ...] = tuple(
    float(s)
    for s in (
        1 * MiB,
        4 * MiB,
        16 * MiB,
        64 * MiB,
        256 * MiB,
        1 * GiB,
        4 * GiB,
        16 * GiB,
        64 * GiB,
        256 * GiB,
    )
)

#: Node counts swept in the weak-scaling experiment (Fig 2c).
DEFAULT_NODE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

#: Multiplicative lognormal measurement noise (sigma of log-bandwidth);
#: roughly the 5–10% run-to-run variability typical of production PFS.
_NOISE_SIGMA: float = 0.07


@dataclass(frozen=True)
class SingleNodeSweep:
    """Result of the single-node task-count × transfer-size sweep (Fig 2b).

    Attributes
    ----------
    task_counts:
        Writer tasks per node, one per row.
    transfer_sizes:
        Aggregate per-node transfer sizes (bytes), one per column.
    bandwidth:
        Mean measured bandwidth (bytes/s), shape (tasks, sizes).
    bandwidth_std:
        Run-to-run standard deviation, same shape.
    nruns:
        Number of repetitions averaged per cell.
    """

    task_counts: Tuple[int, ...]
    transfer_sizes: Tuple[float, ...]
    bandwidth: np.ndarray
    bandwidth_std: np.ndarray
    nruns: int

    def optimal_task_count(self) -> int:
        """Task count maximizing bandwidth at the largest transfer size.

        The paper's conclusion from this experiment is "use 8 MPI tasks".
        """
        return int(self.task_counts[int(np.argmax(self.bandwidth[:, -1]))])


@dataclass(frozen=True)
class WeakScalingSweep:
    """Result of the weak-scaling node-count × transfer-size sweep (Fig 2c).

    Attributes
    ----------
    node_counts:
        Nodes writing concurrently, one per row.
    transfer_sizes:
        Per-node transfer sizes (bytes), one per column.
    bandwidth:
        Mean measured aggregate bandwidth (bytes/s), shape (nodes, sizes).
    bandwidth_std:
        Run-to-run standard deviation, same shape.
    nruns:
        Number of repetitions averaged per cell.
    """

    node_counts: Tuple[int, ...]
    transfer_sizes: Tuple[float, ...]
    bandwidth: np.ndarray
    bandwidth_std: np.ndarray
    nruns: int


def _measure(true_bw: np.ndarray, rng: np.random.Generator, nruns: int
             ) -> Tuple[np.ndarray, np.ndarray]:
    """Simulate *nruns* noisy measurements of each true bandwidth value."""
    noise = rng.lognormal(mean=0.0, sigma=_NOISE_SIGMA, size=(nruns,) + true_bw.shape)
    samples = true_bw[None, ...] * noise
    return samples.mean(axis=0), samples.std(axis=0)


def run_single_node_sweep(
    rng: np.random.Generator | None = None,
    task_counts: Sequence[int] = DEFAULT_TASK_COUNTS,
    transfer_sizes: Sequence[float] = DEFAULT_TRANSFER_SIZES,
    nruns: int = 10,
) -> SingleNodeSweep:
    """Re-run the Fig 2b experiment synthetically.

    Parameters
    ----------
    rng:
        Source of measurement noise; ``None`` disables noise entirely
        (returns the analytic truth, std 0).
    task_counts, transfer_sizes:
        Sweep axes.
    nruns:
        Repetitions per cell (the paper used 10).
    """
    tasks = np.asarray(task_counts, dtype=int)
    sizes = np.asarray(transfer_sizes, dtype=float)
    if np.any(tasks < 1) or np.any(tasks > MAX_TASKS_PER_NODE):
        raise ValueError(f"task counts must lie in [1, {MAX_TASKS_PER_NODE}]")
    true_bw = single_node_bandwidth(sizes[None, :], tasks[:, None])
    if rng is None:
        mean, std = true_bw, np.zeros_like(true_bw)
    else:
        mean, std = _measure(true_bw, rng, nruns)
    return SingleNodeSweep(
        task_counts=tuple(int(t) for t in tasks),
        transfer_sizes=tuple(float(s) for s in sizes),
        bandwidth=mean,
        bandwidth_std=std,
        nruns=nruns,
    )


def run_weak_scaling_sweep(
    rng: np.random.Generator | None = None,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    transfer_sizes: Sequence[float] = DEFAULT_TRANSFER_SIZES,
    nruns: int = 10,
) -> WeakScalingSweep:
    """Re-run the Fig 2c experiment synthetically (8 writer tasks/node)."""
    nodes = np.asarray(node_counts, dtype=int)
    sizes = np.asarray(transfer_sizes, dtype=float)
    if np.any(nodes < 1):
        raise ValueError("node counts must be >= 1")
    true_bw = aggregate_bandwidth(nodes[:, None], sizes[None, :])
    if rng is None:
        mean, std = true_bw, np.zeros_like(true_bw)
    else:
        mean, std = _measure(true_bw, rng, nruns)
    return WeakScalingSweep(
        node_counts=tuple(int(n) for n in nodes),
        transfer_sizes=tuple(float(s) for s in sizes),
        bandwidth=mean,
        bandwidth_std=std,
        nruns=nruns,
    )
