"""Analytic bandwidth laws for the Summit-like GPFS I/O performance model.

The paper characterizes the *application-realized* PFS bandwidth with two
experiments (Sec. IV):

* **Fig 2b** — on a single compute node, aggregate write bandwidth versus
  transfer size for 1..42 MPI writer tasks.  Bandwidth peaks at **8 tasks**
  and saturates at ≈13–13.5 GB/s for large transfers; small transfers are
  latency-dominated.
* **Fig 2c** — weak scaling: aggregate bandwidth versus node count and
  per-node transfer size.  Although the I/O servers can sustain 2.5 TB/s,
  the bandwidth *realized by one application* saturates well below that.

We reproduce those shapes with three composable laws.  All sizes are bytes,
all bandwidths bytes/second.  The constants are module-level and documented
so they can be recalibrated against a different machine.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "GiB",
    "MiB",
    "KiB",
    "TiB",
    "SINGLE_NODE_PEAK_BW",
    "OPTIMAL_TASKS_PER_NODE",
    "MAX_TASKS_PER_NODE",
    "LATENCY_EQUIV_BYTES",
    "AGGREGATE_SATURATION_BW",
    "task_efficiency",
    "size_efficiency",
    "single_node_bandwidth",
    "aggregate_bandwidth",
]

KiB: float = 1024.0
MiB: float = 1024.0**2
GiB: float = 1024.0**3
TiB: float = 1024.0**4

#: Peak realized single-node write bandwidth (paper: 13–13.5 GB/s).
SINGLE_NODE_PEAK_BW: float = 13.5 * GiB

#: Writer-task count at which single-node bandwidth peaks (paper: 8).
OPTIMAL_TASKS_PER_NODE: int = 8

#: Physical cores per Summit node (upper bound on writer tasks).
MAX_TASKS_PER_NODE: int = 42

#: Per-operation latency expressed as an equivalent transfer size: a write
#: of this many bytes achieves 50% of the asymptotic bandwidth.
LATENCY_EQUIV_BYTES: float = 64.0 * MiB

#: Application-realized aggregate saturation bandwidth.  The I/O servers
#: peak at 2.5 TB/s, but a single application realizes far less — this
#: constant is calibrated so that a ~1500-node job sees ≈1.25 TB/s,
#: matching the safeguard-checkpoint latencies implied by Table II.
AGGREGATE_SATURATION_BW: float = 1.35 * TiB

#: Degradation exponent for oversubscribed writer tasks (n > 8).
_OVERSUB_FLOOR: float = 0.70


def task_efficiency(ntasks: int | np.ndarray) -> float | np.ndarray:
    """Relative single-node bandwidth as a function of writer-task count.

    Equals 1.0 at :data:`OPTIMAL_TASKS_PER_NODE`, rises sub-linearly below
    it (one task reaches only ≈27%), and degrades gently above it due to
    device contention (42 tasks land at ≈70%), reproducing Fig 2b's
    ordering of curves.

    Parameters
    ----------
    ntasks:
        Number of concurrent writer tasks on the node, in [1, 42].
    """
    n = np.asarray(ntasks, dtype=float)
    if np.any(n < 1) or np.any(n > MAX_TASKS_PER_NODE):
        raise ValueError(f"ntasks must be within [1, {MAX_TASKS_PER_NODE}]")
    rising = (n / OPTIMAL_TASKS_PER_NODE) ** 0.63
    span = math.log(MAX_TASKS_PER_NODE / OPTIMAL_TASKS_PER_NODE)
    falling = 1.0 - (1.0 - _OVERSUB_FLOOR) * np.log(
        np.maximum(n, OPTIMAL_TASKS_PER_NODE) / OPTIMAL_TASKS_PER_NODE
    ) / span
    eff = np.where(n <= OPTIMAL_TASKS_PER_NODE, rising, falling)
    return float(eff) if np.isscalar(ntasks) else eff


def size_efficiency(nbytes: float | np.ndarray) -> float | np.ndarray:
    """Relative bandwidth as a function of transfer size (latency roll-off).

    A first-order saturation law ``s / (s + L)`` with
    ``L = LATENCY_EQUIV_BYTES``: tiny transfers are latency-dominated,
    multi-GiB transfers approach the asymptote.
    """
    s = np.asarray(nbytes, dtype=float)
    if np.any(s < 0):
        raise ValueError("transfer size must be non-negative")
    eff = s / (s + LATENCY_EQUIV_BYTES)
    return float(eff) if np.isscalar(nbytes) else eff


def single_node_bandwidth(
    nbytes: float | np.ndarray,
    ntasks: int | np.ndarray = OPTIMAL_TASKS_PER_NODE,
) -> float | np.ndarray:
    """Realized PFS write bandwidth of one node (Fig 2b).

    Parameters
    ----------
    nbytes:
        Aggregate transfer size issued by the node (bytes).
    ntasks:
        Number of writer tasks; the C/R model always uses the optimum (8).

    Returns
    -------
    Bandwidth in bytes/second.
    """
    return SINGLE_NODE_PEAK_BW * task_efficiency(ntasks) * size_efficiency(nbytes)


def aggregate_bandwidth(
    nnodes: int | np.ndarray,
    bytes_per_node: float | np.ndarray,
    ntasks: int = OPTIMAL_TASKS_PER_NODE,
) -> float | np.ndarray:
    """Application-realized aggregate PFS bandwidth (Fig 2c).

    The per-node curve is summed over nodes and passed through a smooth
    saturation toward :data:`AGGREGATE_SATURATION_BW`:

    .. math:: A(n, s) = \\frac{n\\,b_1(s)}{1 + n\\,b_1(s)/A_{sat}}

    so small jobs scale almost linearly while leadership-scale jobs level
    off near the realized ceiling — the paper's key observation that the
    server-side 2.5 TB/s is *not* what an application sees.

    Parameters
    ----------
    nnodes:
        Number of nodes writing concurrently (>= 1).
    bytes_per_node:
        Transfer size per node (bytes).
    ntasks:
        Writer tasks per node.

    Returns
    -------
    Aggregate bandwidth in bytes/second.
    """
    n = np.asarray(nnodes, dtype=float)
    if np.any(n < 1):
        raise ValueError("nnodes must be >= 1")
    linear = n * single_node_bandwidth(bytes_per_node, ntasks)
    agg = linear / (1.0 + linear / AGGREGATE_SATURATION_BW)
    return float(agg) if np.isscalar(nnodes) and np.isscalar(bytes_per_node) else agg
