"""Summit-like GPFS I/O performance model (paper Sec. IV, Fig 2b/2c).

Layers:

* :mod:`~repro.iomodel.bandwidth` — analytic laws: single-node task/size
  efficiency and application-realized aggregate saturation;
* :mod:`~repro.iomodel.calibration` — synthetic re-runs of the paper's two
  characterization experiments (10 noisy runs, averaged);
* :mod:`~repro.iomodel.matrix` — the :class:`PFSModel` backends the C/R
  simulation queries for write/read times.
"""

from .bandwidth import (
    AGGREGATE_SATURATION_BW,
    GiB,
    KiB,
    LATENCY_EQUIV_BYTES,
    MAX_TASKS_PER_NODE,
    MiB,
    OPTIMAL_TASKS_PER_NODE,
    SINGLE_NODE_PEAK_BW,
    TiB,
    aggregate_bandwidth,
    single_node_bandwidth,
    size_efficiency,
    task_efficiency,
)
from .calibration import (
    DEFAULT_NODE_COUNTS,
    DEFAULT_TASK_COUNTS,
    DEFAULT_TRANSFER_SIZES,
    SingleNodeSweep,
    WeakScalingSweep,
    run_single_node_sweep,
    run_weak_scaling_sweep,
)
from .congestion import CongestedPFSModel
from .matrix import AnalyticPFSModel, MatrixPFSModel, PFSModel

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "SINGLE_NODE_PEAK_BW",
    "OPTIMAL_TASKS_PER_NODE",
    "MAX_TASKS_PER_NODE",
    "LATENCY_EQUIV_BYTES",
    "AGGREGATE_SATURATION_BW",
    "task_efficiency",
    "size_efficiency",
    "single_node_bandwidth",
    "aggregate_bandwidth",
    "DEFAULT_TASK_COUNTS",
    "DEFAULT_TRANSFER_SIZES",
    "DEFAULT_NODE_COUNTS",
    "SingleNodeSweep",
    "WeakScalingSweep",
    "run_single_node_sweep",
    "run_weak_scaling_sweep",
    "PFSModel",
    "AnalyticPFSModel",
    "MatrixPFSModel",
    "CongestedPFSModel",
]
