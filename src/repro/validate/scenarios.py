"""Deterministic scenario fuzzer for the DES kernel.

A :class:`Scenario` is a *declarative* random DES program: store /
container / resource declarations plus a tree of process specs whose ops
are plain JSON-serializable lists.  Being declarative is what makes the
whole validation pipeline work:

* the same scenario can be interpreted on every backend (the inlined
  fast-path ``run()`` loops, the ``step()`` reference, real SimPy when
  installed) and the executions compared event for event;
* a failing scenario can be *shrunk* by structural edits (drop a
  process, drop an op, zero a delay) and re-run;
* a minimal reproducer can be committed to ``tests/corpus/`` as JSON and
  replayed forever by the test suite.

:func:`generate_scenario` derives everything from a single integer seed
via :class:`random.Random` — no global state, no wall clock — so case
*N* of a fuzz run is the same program on every machine.

Delays are drawn from a coarse grid (multiples of 0.25) on purpose:
same-time event collisions are where tie-break and ordering bugs live,
and a fuzzer drawing continuous delays would almost never produce one.
A minority of scenarios (:data:`OFF_GRID_SCENARIO_RATE`) additionally
jitter some delays *off* the grid: on the ``calendar`` backend those
programs start on the bucket queue and demote to the heap mid-run at the
first off-grid push, so the fuzzer exercises both queue implementations
**and** the live demotion hand-off between them, not just the pure
bucket path.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "StoreSpec",
    "ContainerSpec",
    "ResourceSpec",
    "ProcSpec",
    "Scenario",
    "generate_scenario",
]

#: Delay grid: multiples of this many simulated seconds.
DELAY_QUANTUM = 0.25
#: Largest generated delay (seconds).
MAX_DELAY = 3.0
#: Fraction of scenarios that draw *some* delays off the grid (the rest
#: stay pure-grid so the calendar backend's bucket path gets dense
#: coverage too).
OFF_GRID_SCENARIO_RATE = 0.25
#: Per-delay probability of leaving the grid within an off-grid scenario.
OFF_GRID_DELAY_RATE = 0.2
#: Off-grid offset: DELAY_QUANTUM/3 is representable but never a grid
#: multiple, so one jittered delay is guaranteed to demote a calendar
#: queue the moment it is scheduled.
OFF_GRID_JITTER = DELAY_QUANTUM / 3.0
#: Priorities are drawn from this small set so that ties are common.
PRIORITY_CHOICES = (0.0, 1.0, 2.0)

#: Ops that real SimPy cannot replay (kernel extensions).
_KERNEL_ONLY_OPS = frozenset({"cancel_get"})


@dataclass(frozen=True)
class StoreSpec:
    """One store declaration (``kind`` is ``"fifo"`` or ``"priority"``)."""

    id: str
    kind: str = "fifo"
    capacity: Optional[int] = None  # None = unbounded

    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.id, "kind": self.kind, "capacity": self.capacity}


@dataclass(frozen=True)
class ContainerSpec:
    """One container declaration."""

    id: str
    capacity: float = 10.0
    init: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.id, "capacity": self.capacity, "init": self.init}


@dataclass(frozen=True)
class ResourceSpec:
    """One resource declaration (``kind`` is ``"fifo"`` or ``"priority"``)."""

    id: str
    kind: str = "fifo"
    capacity: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.id, "kind": self.kind, "capacity": self.capacity}


@dataclass(frozen=True)
class ProcSpec:
    """One process: a pid, a start delay, and a list of ops.

    Ops are plain lists (JSON-ready).  The vocabulary, with arguments:

    ``["timeout", delay]``
        Sleep for *delay* simulated seconds.
    ``["put", store, token]`` / ``["get", store]``
        FIFO store traffic; tokens are ints.
    ``["pput", store, priority, token]``
        Priority-store put of ``PriorityItem(priority, token)``.
    ``["cancel_get", store, wait]``
        Issue a get, sleep *wait*, withdraw the get if still pending
        (kernel extension; not replayable on SimPy).
    ``["cput", container, amount]`` / ``["cget", container, amount]``
        Container deposit / withdrawal.
    ``["acquire", resource, priority_or_null, hold]``
        Request a slot (with *priority* on priority resources), hold it
        for *hold* seconds, release.
    ``["spawn", procspec_dict]``
        Start a child process (process trees).
    ``["join", pid]`` / ``["guard_join", pid]``
        Wait for a process; the guarded form records a raised exception
        instead of dying with it.
    ``["interrupt", pid]``
        Interrupt another process (skipped when the target is dead or
        self — keeps the op total and deterministic).
    ``["sleep_catch", delay]``
        Sleep, catching and recording an :class:`Interrupt`.
    ``["raise", message]``
        Raise ``RuntimeError(message)`` (failure injection).
    ``["allof", [delays]]`` / ``["anyof", [delays]]``
        Wait on a condition over fresh timeouts.
    """

    pid: str
    start_delay: float = 0.0
    ops: Tuple = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pid": self.pid,
            "start_delay": self.start_delay,
            "ops": _ops_to_jsonable(self.ops),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ProcSpec":
        return ProcSpec(
            pid=data["pid"],
            start_delay=float(data["start_delay"]),
            ops=_ops_from_jsonable(data["ops"]),
        )


def _ops_to_jsonable(ops) -> List:
    out = []
    for op in ops:
        if op[0] == "spawn":
            out.append(["spawn", op[1].to_dict()])
        else:
            out.append(list(op))
    return out


def _ops_from_jsonable(ops) -> Tuple:
    out = []
    for op in ops:
        if op[0] == "spawn":
            out.append(("spawn", ProcSpec.from_dict(op[1])))
        else:
            out.append(tuple(op))
    return tuple(out)


@dataclass(frozen=True)
class Scenario:
    """A complete randomized DES program plus its run mode.

    ``run_mode`` selects which ``Environment.run`` loop variant the case
    exercises: ``"drain"`` (``until=None``), ``"horizon"``
    (``until=<float>``), or ``"proc"`` (``until=<first process>``) — one
    scenario per inlined fast-path loop in ``des/core.py``.
    """

    seed: int
    run_mode: str = "drain"
    until: Optional[float] = None
    stores: Tuple[StoreSpec, ...] = ()
    containers: Tuple[ContainerSpec, ...] = ()
    resources: Tuple[ResourceSpec, ...] = ()
    processes: Tuple[ProcSpec, ...] = ()

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "run_mode": self.run_mode,
            "until": self.until,
            "stores": [s.to_dict() for s in self.stores],
            "containers": [c.to_dict() for c in self.containers],
            "resources": [r.to_dict() for r in self.resources],
            "processes": [p.to_dict() for p in self.processes],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Scenario":
        return Scenario(
            seed=int(data["seed"]),
            run_mode=data["run_mode"],
            until=None if data["until"] is None else float(data["until"]),
            stores=tuple(
                StoreSpec(s["id"], s["kind"], s["capacity"]) for s in data["stores"]
            ),
            containers=tuple(
                ContainerSpec(c["id"], float(c["capacity"]), float(c["init"]))
                for c in data["containers"]
            ),
            resources=tuple(
                ResourceSpec(r["id"], r["kind"], int(r["capacity"]))
                for r in data["resources"]
            ),
            processes=tuple(ProcSpec.from_dict(p) for p in data["processes"]),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "Scenario":
        return Scenario.from_dict(json.loads(text))

    # -- classification ----------------------------------------------------
    def on_grid(self) -> bool:
        """Whether every delay is an exact :data:`DELAY_QUANTUM` multiple.

        On-grid scenarios run the ``calendar`` backend entirely on the
        bucket queue; any off-grid delay demotes it to the heap the
        moment that delay is scheduled.  The fuzz coverage test asserts
        both classes appear in a default run.
        """

        def scan(ops) -> bool:
            for op in ops:
                kind = op[0]
                if kind in ("timeout", "sleep_catch"):
                    delays = (op[1],)
                elif kind == "cancel_get":
                    delays = (op[2],)
                elif kind == "acquire":
                    delays = (op[3],)
                elif kind in ("allof", "anyof"):
                    delays = tuple(op[1])
                elif kind == "spawn":
                    if op[1].start_delay % DELAY_QUANTUM != 0.0:
                        return False
                    if not scan(op[1].ops):
                        return False
                    continue
                else:
                    continue
                if any(d % DELAY_QUANTUM != 0.0 for d in delays):
                    return False
            return True

        return all(
            p.start_delay % DELAY_QUANTUM == 0.0 and scan(p.ops)
            for p in self.processes
        )

    def simpy_compatible(self) -> bool:
        """Whether real SimPy can replay this scenario faithfully.

        Kernel extensions (get cancellation) and equal-priority
        priority-store traffic (our kernel guarantees FIFO tie-breaking;
        SimPy orders by payload) are excluded.
        """
        prio_puts: Dict[str, List[float]] = {}

        def scan(ops) -> bool:
            for op in ops:
                if op[0] in _KERNEL_ONLY_OPS:
                    return False
                if op[0] == "pput":
                    prio_puts.setdefault(op[1], []).append(op[2])
                if op[0] == "spawn" and not scan(op[1].ops):
                    return False
            return True

        for proc in self.processes:
            if not scan(proc.ops):
                return False
        return all(len(set(ps)) == len(ps) for ps in prio_puts.values())


class _Gen:
    """Stateful helper threading the RNG and fresh-name counters."""

    def __init__(self, rng: random.Random, scenario_depth: int, max_ops: int,
                 off_grid_rate: float = 0.0) -> None:
        self.rng = rng
        self.max_depth = scenario_depth
        self.max_ops = max_ops
        #: Per-delay probability of adding :data:`OFF_GRID_JITTER` (0 in
        #: pure-grid scenarios).
        self.off_grid_rate = off_grid_rate
        self.next_token = 0
        self.next_pid = 0
        #: pids generated so far — interrupt/join targets.
        self.known_pids: List[str] = []

    def delay(self) -> float:
        d = self.rng.randint(0, int(MAX_DELAY / DELAY_QUANTUM)) * DELAY_QUANTUM
        if self.off_grid_rate and self.rng.random() < self.off_grid_rate:
            d += OFF_GRID_JITTER
        return d

    def token(self) -> int:
        self.next_token += 1
        return self.next_token

    def pid(self) -> str:
        self.next_pid += 1
        name = f"p{self.next_pid}"
        self.known_pids.append(name)
        return name


def _gen_ops(
    g: _Gen,
    self_pid: str,
    stores: Tuple[StoreSpec, ...],
    containers: Tuple[ContainerSpec, ...],
    resources: Tuple[ResourceSpec, ...],
    depth: int,
) -> Tuple:
    """Generate one process body (recursing for spawned children)."""
    rng = g.rng
    ops: List[Tuple] = []
    n_ops = rng.randint(1, g.max_ops)
    for _ in range(n_ops):
        choices: List[str] = ["timeout", "timeout", "sleep_catch"]
        if stores:
            choices += ["put", "get", "put", "get", "cancel_get"]
        if containers:
            choices += ["cput", "cget"]
        if resources:
            choices += ["acquire", "acquire"]
        if depth < g.max_depth:
            choices += ["spawn", "spawn_guarded"]
        if g.known_pids:
            choices += ["interrupt", "join"]
        choices += ["allof", "anyof"]
        kind = rng.choice(choices)

        if kind == "timeout":
            ops.append(("timeout", g.delay()))
        elif kind == "sleep_catch":
            ops.append(("sleep_catch", g.delay()))
        elif kind == "put":
            store = rng.choice(stores)
            if store.kind == "priority":
                ops.append(
                    ("pput", store.id, rng.choice(PRIORITY_CHOICES), g.token())
                )
            else:
                ops.append(("put", store.id, g.token()))
        elif kind == "get":
            ops.append(("get", rng.choice(stores).id))
        elif kind == "cancel_get":
            ops.append(("cancel_get", rng.choice(stores).id, g.delay()))
        elif kind == "cput":
            c = rng.choice(containers)
            ops.append(("cput", c.id, float(rng.randint(1, 4))))
        elif kind == "cget":
            c = rng.choice(containers)
            ops.append(("cget", c.id, float(rng.randint(1, 4))))
        elif kind == "acquire":
            res = rng.choice(resources)
            prio = rng.choice(PRIORITY_CHOICES) if res.kind == "priority" else None
            ops.append(("acquire", res.id, prio, g.delay()))
        elif kind in ("spawn", "spawn_guarded"):
            child_pid = g.pid()
            child_ops = _gen_ops(
                g, child_pid, stores, containers, resources, depth + 1
            )
            if kind == "spawn_guarded" and rng.random() < 0.5:
                # Failure injection: the child dies, the parent records it.
                child_ops = child_ops + (("raise", f"boom-{child_pid}"),)
            ops.append(("spawn", ProcSpec(child_pid, g.delay(), child_ops)))
            if kind == "spawn_guarded":
                ops.append(("guard_join", child_pid))
            elif rng.random() < 0.4:
                ops.append(("join", child_pid))
        elif kind == "interrupt":
            target = rng.choice(g.known_pids)
            if target != self_pid:
                ops.append(("interrupt", target))
        elif kind == "join":
            target = rng.choice(g.known_pids)
            if target != self_pid:
                ops.append(("guard_join", target))
        elif kind == "allof":
            ops.append(("allof", [g.delay(), g.delay()]))
        elif kind == "anyof":
            ops.append(("anyof", [g.delay(), g.delay()]))
    return tuple(ops)


def generate_scenario(
    seed: int,
    max_procs: int = 5,
    max_ops: int = 7,
    max_depth: int = 2,
    unguarded_raise_rate: float = 0.03,
) -> Scenario:
    """Generate the deterministic random scenario for *seed*.

    Parameters
    ----------
    seed:
        Sole source of randomness; equal seeds give equal scenarios.
    max_procs / max_ops / max_depth:
        Size bounds: top-level processes, ops per process, spawn depth.
    unguarded_raise_rate:
        Probability that the scenario ends one process with an uncaught
        ``raise`` — exercising exception propagation out of ``run()``.
    """
    rng = random.Random(f"pckpt-validate-{seed}")
    off_grid_rate = (
        OFF_GRID_DELAY_RATE if rng.random() < OFF_GRID_SCENARIO_RATE else 0.0
    )
    g = _Gen(rng, max_depth, max_ops, off_grid_rate)

    stores: List[StoreSpec] = []
    for i in range(rng.randint(0, 2)):
        kind = rng.choice(("fifo", "priority"))
        capacity = rng.choice((None, None, rng.randint(1, 3)))
        stores.append(StoreSpec(f"s{i}", kind, capacity))
    containers: List[ContainerSpec] = []
    if rng.random() < 0.5:
        cap = float(rng.randint(5, 20))
        containers.append(ContainerSpec("c0", cap, float(rng.randint(0, int(cap)))))
    resources: List[ResourceSpec] = []
    for i in range(rng.randint(0, 2)):
        kind = rng.choice(("fifo", "priority"))
        resources.append(ResourceSpec(f"r{i}", kind, rng.randint(1, 2)))

    processes: List[ProcSpec] = []
    for _ in range(rng.randint(2, max_procs)):
        pid = g.pid()
        ops = _gen_ops(g, pid, tuple(stores), tuple(containers), tuple(resources), 0)
        if rng.random() < unguarded_raise_rate:
            ops = ops + (("raise", f"unguarded-{pid}"),)
        processes.append(ProcSpec(pid, g.delay(), ops))

    run_mode = rng.choices(("drain", "horizon", "proc"), weights=(5, 3, 2))[0]
    until = None
    if run_mode == "horizon":
        until = rng.randint(2, 24) * DELAY_QUANTUM

    return Scenario(
        seed=seed,
        run_mode=run_mode,
        until=until,
        stores=tuple(stores),
        containers=tuple(containers),
        resources=tuple(resources),
        processes=tuple(processes),
    )
