"""Regression corpus: shrunk reproducers committed under ``tests/corpus/``.

Every scenario the fuzzer ever caught a bug with is saved here as JSON —
the scenario itself plus the violation report that condemned it — and
replayed forever by ``tests/test_validate_corpus.py`` and
``tools/check_corpus.py``.  File names are content-addressed
(``case-<seed>-<digest>.json``) so re-saving the same reproducer is
idempotent and names never collide.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from .scenarios import Scenario

__all__ = ["default_corpus_dir", "save_case", "load_corpus"]


def default_corpus_dir() -> Path:
    """The committed corpus directory (``tests/corpus`` at the repo root).

    Resolved relative to this file so it works regardless of the current
    working directory; falls back to ``tests/corpus`` under the cwd when
    the package is used outside the repository checkout.
    """
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / "tests" / "corpus"
    if candidate.parent.is_dir():
        return candidate
    return Path("tests") / "corpus"


def save_case(
    directory: Path,
    scenario: Scenario,
    violations: List[str],
    note: str = "",
) -> Path:
    """Persist one reproducer; returns the written path (idempotent)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload: Dict[str, Any] = {
        "scenario": scenario.to_dict(),
        "violations": violations,
        "note": note,
    }
    canonical = json.dumps(payload["scenario"], sort_keys=True)
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:10]
    path = directory / f"case-{scenario.seed}-{digest}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(directory: Path) -> List[Tuple[Path, Scenario, Dict[str, Any]]]:
    """Load every corpus file as ``(path, scenario, full payload)``."""
    directory = Path(directory)
    out: List[Tuple[Path, Scenario, Dict[str, Any]]] = []
    if not directory.is_dir():
        return out
    for path in sorted(directory.glob("*.json")):
        payload = json.loads(path.read_text())
        out.append((path, Scenario.from_dict(payload["scenario"]), payload))
    return out
