"""Validation campaign orchestration: the engine behind ``pckpt validate``.

One campaign, from a single seed:

1. runs the closed-form **model oracles** once (bandwidth monotonicity,
   Eq. 1/2 algebra, Fig 5 table sanity);
2. fuzzes ``--cases`` random DES **scenarios**, executing each on every
   requested backend, diffing the executions pairwise, and checking the
   scenario invariant oracles on each record;
3. fuzzes a bounded number of random **C/R configurations**, running
   each full simulation on the fast and reference kernels and diffing
   the flattened ``RunOutput`` fingerprints;
4. fuzzes a bounded number of random **batch-queue schedules**, holding
   each to the scheduling oracles (liveness, node-hours conservation,
   placement disjointness, FCFS causality) and to heap/calendar
   backend equivalence;
5. on any failure, **shrinks** the case to a minimal reproducer and
   (for scenarios, when a corpus directory is given) saves it to
   ``tests/corpus/``.

Everything is deterministic in the seed, so a CI failure's case number
is sufficient to reproduce it locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .backends import Backend
from .corpus import save_case
from .crdiff import diff_cr_case, generate_cr_case
from .executor import compare_records, execute
from .oracles import (
    check_analysis_consistency,
    check_bandwidth_monotonicity,
    check_record,
    check_statemachine_table,
)
from .scenarios import Scenario, generate_scenario
from .schedval import (
    check_sched_case,
    generate_sched_case,
    sched_case_size,
    shrink_sched_case,
)
from .shrink import scenario_size, shrink_scenario

__all__ = ["CaseFailure", "ValidationReport", "validate_scenario", "run_validation"]


@dataclass
class CaseFailure:
    """One failing case: what failed, why, and its minimal reproducer.

    ``scenario``/``shrunk`` hold a :class:`~.scenarios.Scenario` for
    scenario failures and a :class:`~.schedval.SchedCase` for sched
    failures (both shrink to the same minimal-reproducer contract).
    """

    kind: str  # "scenario" | "cr" | "sched" | "model-oracle"
    case_index: int
    violations: List[str]
    scenario: Optional[object] = None
    shrunk: Optional[object] = None
    corpus_path: Optional[Path] = None


@dataclass
class ValidationReport:
    """Outcome of one validation campaign."""

    seed: int
    backends: List[str]
    scenario_cases: int = 0
    cr_cases: int = 0
    sched_cases: int = 0
    simpy_skipped: int = 0
    failures: List[CaseFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def validate_scenario(
    scenario: Scenario, backends: Dict[str, Backend]
) -> List[str]:
    """All divergences and invariant violations for one scenario.

    Executes the scenario on every applicable backend, checks the
    invariant oracles on each record, then diffs the kernel executions
    strictly and any SimPy execution with relaxed exception messages.
    """
    problems: List[str] = []
    records = {}
    for name, backend in backends.items():
        if name == "simpy" and not scenario.simpy_compatible():
            continue
        record = execute(scenario, backend)
        records[name] = record
        problems += check_record(record, scenario)
    names = sorted(records)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            strict = records[a].kernel_stats is not None and (
                records[b].kernel_stats is not None
            )
            problems += compare_records(
                records[a], records[b], strict_messages=strict
            )
    return problems


def run_validation(
    seed: int,
    cases: int,
    backends: Dict[str, Backend],
    cr_cases: Optional[int] = None,
    sched_cases: Optional[int] = None,
    corpus_dir: Optional[Path] = None,
    shrink: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> ValidationReport:
    """Run one full validation campaign (see module docstring).

    Parameters
    ----------
    seed / cases:
        Scenario *i* of the campaign is ``generate_scenario(seed + i)``.
    backends:
        Name → backend mapping (from :func:`~.backends.resolve_backends`).
    cr_cases:
        Number of C/R differential cases; defaults to ``cases // 10``
        (min 2) — full simulations cost more than scenarios.
    sched_cases:
        Number of batch-queue oracle cases; same ``cases // 10``
        (min 2) default and for the same reason.
    corpus_dir:
        When given, shrunk reproducers are saved there.
    shrink:
        Disable to report failures without minimizing (faster triage).
    progress:
        Optional sink for one-line progress messages.
    """
    say = progress if progress is not None else (lambda _msg: None)
    report = ValidationReport(seed=seed, backends=sorted(backends))

    for oracle in (
        check_bandwidth_monotonicity,
        check_analysis_consistency,
        check_statemachine_table,
    ):
        violations = oracle()
        if violations:
            report.failures.append(
                CaseFailure(kind="model-oracle", case_index=-1,
                            violations=violations)
            )
            say(f"model oracle {oracle.__name__}: {len(violations)} violation(s)")

    for i in range(cases):
        scenario = generate_scenario(seed + i)
        if "simpy" in backends and not scenario.simpy_compatible():
            report.simpy_skipped += 1
        problems = validate_scenario(scenario, backends)
        report.scenario_cases += 1
        if not problems:
            continue
        say(f"case {i} (seed {seed + i}): {len(problems)} problem(s)")
        failure = CaseFailure(
            kind="scenario", case_index=i, violations=problems,
            scenario=scenario,
        )
        if shrink:
            failure.shrunk = shrink_scenario(
                scenario, lambda s: bool(validate_scenario(s, backends))
            )
            say(
                f"case {i}: shrunk {scenario_size(scenario)} -> "
                f"{scenario_size(failure.shrunk)} ops"
            )
            if corpus_dir is not None:
                failure.corpus_path = save_case(
                    corpus_dir,
                    failure.shrunk,
                    validate_scenario(failure.shrunk, backends)[:10],
                    note=f"shrunk from generate_scenario({seed + i})",
                )
                say(f"case {i}: reproducer saved to {failure.corpus_path}")
        report.failures.append(failure)

    n_cr = cr_cases if cr_cases is not None else max(2, cases // 10)
    for i in range(n_cr):
        case = generate_cr_case(seed + i)
        problems = diff_cr_case(case)
        report.cr_cases += 1
        if problems:
            say(f"cr case {i} (seed {seed + i}): {len(problems)} problem(s)")
            report.failures.append(
                CaseFailure(kind="cr", case_index=i, violations=problems)
            )

    n_sched = sched_cases if sched_cases is not None else max(2, cases // 10)
    for i in range(n_sched):
        case = generate_sched_case(seed + i)
        problems = check_sched_case(case)
        report.sched_cases += 1
        if not problems:
            continue
        say(f"sched case {i} (seed {seed + i}): {len(problems)} problem(s)")
        failure = CaseFailure(
            kind="sched", case_index=i, violations=problems, scenario=case,
        )
        if shrink:
            failure.shrunk = shrink_sched_case(
                case, lambda c: bool(check_sched_case(c))
            )
            say(
                f"sched case {i}: shrunk {sched_case_size(case)} -> "
                f"{sched_case_size(failure.shrunk)} jobs"
            )
        report.failures.append(failure)
    return report
