"""Differential validation subsystem (``pckpt validate``).

Turns "fast and probably right" into "fast and continuously verified":
a deterministic scenario fuzzer (:mod:`.scenarios`), a differential
executor running each case on the inlined fast-path kernel, the
``step()`` reference, and real SimPy when installed (:mod:`.backends`,
:mod:`.executor`), an invariant-oracle library (:mod:`.oracles`), a
whole-simulation C/R differential (:mod:`.crdiff`), a batch-queue
scheduling-oracle fuzzer (:mod:`.schedval`), and a shrinker +
regression corpus (:mod:`.shrink`, :mod:`.corpus`) feeding
``tests/corpus/``.  :mod:`.runner` orchestrates a campaign; see
``docs/TESTING.md`` for the workflow.
"""

from .backends import (
    Backend,
    ReferenceEnvironment,
    available_backends,
    resolve_backends,
    run_reference,
)
from .corpus import default_corpus_dir, load_corpus, save_case
from .crdiff import CRCase, diff_cr_case, generate_cr_case, run_cr_case
from .executor import ExecutionRecord, compare_records, execute
from .oracles import (
    check_analysis_consistency,
    check_bandwidth_monotonicity,
    check_record,
    check_statemachine_table,
)
from .runner import CaseFailure, ValidationReport, run_validation, validate_scenario
from .scenarios import Scenario, generate_scenario
from .schedval import (
    SchedCase,
    check_sched_case,
    check_sched_output,
    generate_sched_case,
    run_sched_case,
    sched_case_size,
    shrink_sched_case,
)
from .shrink import scenario_size, shrink_scenario

__all__ = [
    "Backend",
    "CRCase",
    "CaseFailure",
    "ExecutionRecord",
    "ReferenceEnvironment",
    "Scenario",
    "SchedCase",
    "ValidationReport",
    "available_backends",
    "check_analysis_consistency",
    "check_bandwidth_monotonicity",
    "check_record",
    "check_sched_case",
    "check_sched_output",
    "check_statemachine_table",
    "compare_records",
    "default_corpus_dir",
    "diff_cr_case",
    "execute",
    "generate_cr_case",
    "generate_scenario",
    "generate_sched_case",
    "load_corpus",
    "resolve_backends",
    "run_cr_case",
    "run_reference",
    "run_sched_case",
    "run_validation",
    "save_case",
    "scenario_size",
    "sched_case_size",
    "shrink_scenario",
    "shrink_sched_case",
    "validate_scenario",
]
