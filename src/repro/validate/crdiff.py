"""C/R-level differential validation: whole simulations, both loop paths.

The scenario fuzzer exercises the kernel with adversarial random
programs; this module exercises it with the *real* workload — a full
:class:`~repro.models.base.CRSimulation` run under a randomized
p-ckpt/C/R configuration — executed twice:

* once on the production fast-path ``Environment.run`` loops,
* once on :class:`~.backends.ReferenceEnvironment` (pure ``step()``
  dispatch), substituted into ``repro.models.base`` for the duration.

Both runs share the seed, so the injected failure schedule is identical
and the flattened :class:`~repro.models.base.RunOutput` fingerprints
(floats compared bit-exactly via ``float.hex``) plus the kernel event
counts must match exactly.

Both runs also swap :class:`~repro.cr.checkpoint.SnapshotLedger` for a
checking subclass that validates ledger conservation on every update
(PFS snapshots never regress, recovery never restores below the PFS
generation, rollback really forfeits newer BB generations), and a
Fig 5 legality sweep: ``CRSimulation`` routes every node state change
through ``core.statemachine.transition``, so an illegal interleaving
raises ``IllegalTransition`` and surfaces here as a violation.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type

from ..cr.checkpoint import SnapshotLedger
from .backends import ReferenceEnvironment

__all__ = ["CRCase", "generate_cr_case", "run_cr_case", "diff_cr_case"]


@dataclass(frozen=True)
class CRCase:
    """One randomized C/R differential configuration."""

    seed: int
    model: str
    nodes: int
    ckpt_gib_per_node: float
    compute_hours: float
    weibull_shape: float
    weibull_scale_hours: float
    sim_seed: int

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def generate_cr_case(seed: int) -> CRCase:
    """Deterministic random C/R configuration for *seed*.

    Sizes are kept small (tens of nodes, an hour or two of compute, a
    hot failure distribution) so one case simulates in well under a
    second while still exercising predictions, failures, proactive
    protocols, recovery, and drain cancellation.
    """
    rng = random.Random(f"pckpt-crdiff-{seed}")
    model = rng.choice(("B", "M1", "M2", "P1", "P2"))
    nodes = rng.choice((8, 16, 32))
    return CRCase(
        seed=seed,
        model=model,
        nodes=nodes,
        ckpt_gib_per_node=rng.choice((2.0, 4.0, 8.0)),
        compute_hours=rng.choice((0.5, 1.0, 2.0)),
        weibull_shape=rng.choice((0.6, 0.7, 0.9)),
        weibull_scale_hours=rng.choice((0.25, 0.4, 0.7)),
        sim_seed=rng.randint(0, 2**31 - 1),
    )


def _make_checked_ledger(violations: List[str]) -> Type[SnapshotLedger]:
    """A SnapshotLedger subclass appending invariant breaches to *violations*."""

    class CheckedLedger(SnapshotLedger):
        def __init__(self, metrics=None) -> None:
            super().__init__(metrics=metrics)
            self._max_pfs_work = float("-inf")
            self._last_update_time = float("-inf")

        def _clock(self, time: float, what: str) -> None:
            if time < self._last_update_time - 1e-9:
                violations.append(
                    f"ledger: {what} at t={time} before previous update "
                    f"t={self._last_update_time}"
                )
            self._last_update_time = max(self._last_update_time, time)

        def _pfs_monotone(self, what: str) -> None:
            if self.pfs is not None:
                if self.pfs.work < self._max_pfs_work - 1e-9:
                    violations.append(
                        f"ledger: PFS snapshot regressed from work="
                        f"{self._max_pfs_work} after {what}"
                    )
                self._max_pfs_work = max(self._max_pfs_work, self.pfs.work)

        def record_periodic(self, work: float, time: float):
            if work < 0:
                violations.append(f"ledger: periodic snapshot of negative work {work}")
            self._clock(time, "record_periodic")
            return super().record_periodic(work, time)

        def record_drained(self, snap) -> None:
            super().record_drained(snap)
            self._pfs_monotone("record_drained")

        def record_proactive(self, work: float, time: float):
            if work < 0:
                violations.append(
                    f"ledger: proactive snapshot of negative work {work}"
                )
            self._clock(time, "record_proactive")
            snap = super().record_proactive(work, time)
            self._pfs_monotone("record_proactive")
            return snap

        def rollback(self, work: float) -> None:
            if self.pfs is not None and self.pfs.work > work + 1e-9:
                violations.append(
                    f"ledger: recovery restored work={work} below the "
                    f"PFS snapshot work={self.pfs.work}"
                )
            super().rollback(work)
            if self.bb is not None and self.bb.work > work + 1e-9:
                violations.append(
                    f"ledger: rollback({work}) kept a newer BB generation "
                    f"(work={self.bb.work})"
                )

    return CheckedLedger


def _flatten(obj: Any, prefix: str = "") -> Dict[str, Any]:
    """Dataclass → flat dict fingerprint; floats rendered exactly via hex."""
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        name = f"{prefix}{f.name}"
        if dataclasses.is_dataclass(value):
            out.update(_flatten(value, prefix=name + "."))
        elif isinstance(value, float):
            out[name] = value.hex()
        elif isinstance(value, (int, str)):
            out[name] = value
    return out


def run_cr_case(
    case: CRCase, *, reference: bool = False
) -> Tuple[Optional[Dict[str, Any]], List[str]]:
    """Run one C/R case; return (flattened fingerprint, violations).

    With ``reference=True`` the whole simulation executes on
    :class:`ReferenceEnvironment` — the kernel substitution the
    ROADMAP's multi-backend direction calls for, done by patching the
    ``Environment`` symbol ``repro.models.base`` instantiates.

    A fingerprint of ``None`` means the run itself raised; the exception
    is reported as a violation (e.g. ``IllegalTransition`` from the
    Fig 5 guard).
    """
    import numpy as np

    from ..failures.weibull import WeibullParams
    from ..iomodel.bandwidth import GiB
    from ..models import base as base_mod
    from ..models.registry import PAPER_MODELS
    from ..workloads.applications import ApplicationSpec

    violations: List[str] = []
    app = ApplicationSpec(
        name=f"crdiff-{case.seed}",
        nodes=case.nodes,
        checkpoint_bytes_total=case.nodes * case.ckpt_gib_per_node * GiB,
        compute_hours=case.compute_hours,
    )
    weibull = WeibullParams(
        f"crdiff-{case.seed}",
        shape=case.weibull_shape,
        scale_hours=case.weibull_scale_hours,
        system_nodes=case.nodes,
    )
    config = PAPER_MODELS[case.model]

    saved_env = base_mod.Environment
    saved_ledger = base_mod.SnapshotLedger
    try:
        if reference:
            base_mod.Environment = ReferenceEnvironment
        base_mod.SnapshotLedger = _make_checked_ledger(violations)
        sim = base_mod.CRSimulation(
            app,
            config,
            weibull=weibull,
            rng=np.random.default_rng(case.sim_seed),
        )
        try:
            output = sim.run()
        except Exception as exc:  # noqa: BLE001 - reported, not fatal
            violations.append(
                f"simulation raised {type(exc).__name__}: {exc}"
            )
            return None, violations
        fingerprint = _flatten(output)
        fingerprint["env.events_processed"] = sim.env.events_processed
        fingerprint["env.now"] = float(sim.env.now).hex()
        return fingerprint, violations
    finally:
        base_mod.Environment = saved_env
        base_mod.SnapshotLedger = saved_ledger


def diff_cr_case(case: CRCase) -> List[str]:
    """Differential + oracle report for one C/R case (empty = clean)."""
    fast_fp, fast_violations = run_cr_case(case, reference=False)
    ref_fp, ref_violations = run_cr_case(case, reference=True)
    problems = [f"[fast] {v}" for v in fast_violations]
    problems += [f"[step] {v}" for v in ref_violations]
    if fast_fp is None or ref_fp is None:
        return problems
    if fast_fp != ref_fp:
        for key in sorted(set(fast_fp) | set(ref_fp)):
            a, b = fast_fp.get(key), ref_fp.get(key)
            if a != b:
                problems.append(
                    f"fast vs step: RunOutput.{key} differs: {a!r} != {b!r}"
                )
    return problems
