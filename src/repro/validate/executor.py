"""Differential executor: interpret a scenario on a backend and compare.

The interpreter turns a declarative :class:`~.scenarios.Scenario` into
live processes against a :class:`~.backends.Backend`'s classes, runs it,
and captures an :class:`ExecutionRecord` — every observable the
determinism contract covers:

* the **trace**: one entry per completed op, ``(pid, op_index, opname,
  time, payload)``, in completion order;
* **service logs** per store / container / resource, captured by event
  callbacks, i.e. in kernel processing order;
* **final state**: clock, leftover store items, container levels;
* the **propagated exception** (type, normalized message, sim time) when
  the run died;
* **kernel self-stats** (events processed, heap high-water) on kernel
  backends.

:func:`compare_records` diffs two records field by field; any difference
between the ``fast`` and ``step`` backends is a kernel bug.  Exception
*messages* are only compared between kernel backends (SimPy words its
errors differently); object addresses in messages are normalized away.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .backends import Backend
from .scenarios import ProcSpec, Scenario

__all__ = ["ExecutionRecord", "execute", "compare_records"]

_HEX_ADDR = re.compile(r"0x[0-9a-fA-F]+")


def _normalize_message(text: str) -> str:
    """Strip run-specific object addresses from an exception message."""
    return _HEX_ADDR.sub("0x_", text)


@dataclass
class ExecutionRecord:
    """Everything observable about one scenario execution."""

    backend: str
    trace: List[Tuple] = field(default_factory=list)
    store_log: Dict[str, List[Tuple]] = field(default_factory=dict)
    container_log: Dict[str, List[Tuple]] = field(default_factory=dict)
    resource_log: Dict[str, List[Tuple]] = field(default_factory=dict)
    store_served: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    container_served: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    store_final: Dict[str, List] = field(default_factory=dict)
    container_final: Dict[str, float] = field(default_factory=dict)
    final_now: float = 0.0
    error: Optional[Tuple[str, str, float]] = None
    kernel_stats: Optional[Dict[str, float]] = None


class _Interpreter:
    """Drives one scenario against one backend's classes."""

    def __init__(self, scenario: Scenario, backend: Backend) -> None:
        self.scenario = scenario
        self.backend = backend
        self.classes = backend.classes
        self.env = backend.env_factory()
        self.record = ExecutionRecord(backend=backend.name)
        self.procs: Dict[str, Any] = {}
        self.stores: Dict[str, Any] = {}
        self.containers: Dict[str, Any] = {}
        self.resources: Dict[str, Any] = {}
        #: (kind, event, payload) per store — end-of-run conservation.
        self._store_events: Dict[str, List[Tuple[str, Any, Any]]] = {}
        self._container_events: Dict[str, List[Tuple[str, Any, float]]] = {}
        self._cancelled: set = set()
        self._req_seq: Dict[str, int] = {}

        for spec in scenario.stores:
            cls = self.classes[
                "PriorityStore" if spec.kind == "priority" else "Store"
            ]
            capacity = float("inf") if spec.capacity is None else spec.capacity
            self.stores[spec.id] = cls(self.env, capacity=capacity)
            self.record.store_log[spec.id] = []
            self._store_events[spec.id] = []
        for spec in scenario.containers:
            self.containers[spec.id] = self.classes["Container"](
                self.env, capacity=spec.capacity, init=spec.init
            )
            self.record.container_log[spec.id] = []
            self._container_events[spec.id] = []
        for spec in scenario.resources:
            cls = self.classes[
                "PriorityResource" if spec.kind == "priority" else "Resource"
            ]
            self.resources[spec.id] = cls(self.env, capacity=spec.capacity)
            self.record.resource_log[spec.id] = []
            self._req_seq[spec.id] = 0

    # -- value encoding ----------------------------------------------------
    def _encode(self, value: Any) -> Any:
        """Backend-neutral JSON-able encoding of op payloads."""
        if hasattr(value, "priority") and hasattr(value, "item"):
            return ["prio", float(value.priority), self._encode(value.item)]
        if isinstance(value, float) and value.is_integer():
            return value
        return value

    # -- process bodies ----------------------------------------------------
    def _start(self, spec: ProcSpec) -> Any:
        proc = self.env.process(self._body(spec))
        self.procs[spec.pid] = proc
        return proc

    def _body(self, spec: ProcSpec):
        env = self.env
        trace = self.record.trace
        pid = spec.pid
        if spec.start_delay > 0:
            yield env.timeout(spec.start_delay)
        for idx, op in enumerate(spec.ops):
            kind = op[0]
            if kind == "timeout":
                yield env.timeout(op[1])
                trace.append((pid, idx, "timeout", env.now))
            elif kind == "sleep_catch":
                try:
                    yield env.timeout(op[1])
                    trace.append((pid, idx, "slept", env.now))
                except self.classes["Interrupt"] as intr:
                    trace.append((pid, idx, "interrupted", env.now, str(intr.cause)))
            elif kind in ("put", "pput"):
                sid = op[1]
                if kind == "pput":
                    item = self.classes["PriorityItem"](op[2], op[3])
                else:
                    item = op[2]
                ev = self.stores[sid].put(item)
                self._store_events[sid].append(("put", ev, self._encode(item)))
                log = self.record.store_log[sid]
                ev.callbacks.append(
                    lambda e, log=log, v=self._encode(item): log.append(
                        ("put", e.env.now, v)
                    )
                )
                yield ev
                trace.append((pid, idx, "put", env.now, self._encode(item)))
            elif kind == "get":
                sid = op[1]
                ev = self.stores[sid].get()
                self._store_events[sid].append(("get", ev, None))
                log = self.record.store_log[sid]
                enc = self._encode
                ev.callbacks.append(
                    lambda e, log=log: log.append(("get", e.env.now, enc(e.value)))
                )
                value = yield ev
                trace.append((pid, idx, "get", env.now, self._encode(value)))
            elif kind == "cancel_get":
                sid = op[1]
                ev = self.stores[sid].get()
                self._store_events[sid].append(("get", ev, None))
                log = self.record.store_log[sid]
                enc = self._encode
                ev.callbacks.append(
                    lambda e, log=log: log.append(("get", e.env.now, enc(e.value)))
                )
                if op[2] > 0:
                    yield env.timeout(op[2])
                if ev.triggered:
                    trace.append(
                        (pid, idx, "cancel_late", env.now, self._encode(ev.value))
                    )
                else:
                    ev.cancel()
                    self._cancelled.add(id(ev))
                    trace.append((pid, idx, "cancelled", env.now))
            elif kind == "cput":
                cid, amount = op[1], op[2]
                ev = self.containers[cid].put(amount)
                self._container_events[cid].append(("put", ev, amount))
                log = self.record.container_log[cid]
                ev.callbacks.append(
                    lambda e, log=log, a=amount: log.append(("put", e.env.now, a))
                )
                yield ev
                trace.append((pid, idx, "cput", env.now, amount))
            elif kind == "cget":
                cid, amount = op[1], op[2]
                ev = self.containers[cid].get(amount)
                self._container_events[cid].append(("get", ev, amount))
                log = self.record.container_log[cid]
                ev.callbacks.append(
                    lambda e, log=log, a=amount: log.append(("get", e.env.now, a))
                )
                yield ev
                trace.append((pid, idx, "cget", env.now, amount))
            elif kind == "acquire":
                rid, prio, hold = op[1], op[2], op[3]
                res = self.resources[rid]
                seq = self._req_seq[rid]
                self._req_seq[rid] = seq + 1
                req = res.request() if prio is None else res.request(priority=prio)
                log = self.record.resource_log[rid]
                log.append(("req", env.now, seq, prio))
                req.callbacks.append(
                    lambda e, log=log, s=seq: log.append(("grant", e.env.now, s))
                )
                try:
                    yield req
                    trace.append((pid, idx, "acquired", env.now))
                    if hold > 0:
                        yield env.timeout(hold)
                finally:
                    if req.triggered:
                        res.release(req)
                        log.append(("release", env.now, seq))
                    else:
                        req.cancel()
                        self._cancelled.add(id(req))
                        log.append(("cancel", env.now, seq))
                trace.append((pid, idx, "released", env.now))
            elif kind == "spawn":
                child = op[1]
                self._start(child)
                trace.append((pid, idx, "spawned", env.now, child.pid))
            elif kind == "join":
                target = self.procs.get(op[1])
                if target is None:
                    trace.append((pid, idx, "join_missing", env.now, op[1]))
                    continue
                value = yield target
                trace.append((pid, idx, "joined", env.now, self._encode(value)))
            elif kind == "guard_join":
                target = self.procs.get(op[1])
                if target is None:
                    trace.append((pid, idx, "join_missing", env.now, op[1]))
                    continue
                try:
                    value = yield target
                    trace.append(
                        (pid, idx, "joined", env.now, self._encode(value))
                    )
                except Exception as exc:
                    trace.append(
                        (
                            pid,
                            idx,
                            "join_failed",
                            env.now,
                            type(exc).__name__,
                            _normalize_message(str(exc)),
                        )
                    )
            elif kind == "interrupt":
                target = self.procs.get(op[1])
                if (
                    target is not None
                    and target.is_alive
                    and target is not env.active_process
                ):
                    target.interrupt(f"int-from-{pid}")
                    trace.append((pid, idx, "interrupt", env.now, op[1]))
                else:
                    trace.append((pid, idx, "interrupt_skipped", env.now, op[1]))
            elif kind == "raise":
                trace.append((pid, idx, "raise", env.now, op[1]))
                raise RuntimeError(op[1])
            elif kind in ("allof", "anyof"):
                events = [env.timeout(d) for d in op[1]]
                cond = env.all_of(events) if kind == "allof" else env.any_of(events)
                yield cond
                trace.append((pid, idx, kind, env.now))
            else:  # pragma: no cover - fuzzer never emits unknown ops
                raise ValueError(f"unknown op {kind!r}")

    # -- running -----------------------------------------------------------
    def run(self) -> ExecutionRecord:
        scenario = self.scenario
        first_proc = None
        for spec in scenario.processes:
            proc = self._start(spec)
            if first_proc is None:
                first_proc = proc

        if scenario.run_mode == "horizon":
            until: Any = scenario.until
        elif scenario.run_mode == "proc":
            until = first_proc
        else:
            until = None

        record = self.record
        try:
            self.backend.drive(self.env, until)
        except BaseException as exc:  # noqa: BLE001 - recorded, compared
            record.error = (
                type(exc).__name__,
                _normalize_message(str(exc)),
                float(self.env.now),
            )
        record.final_now = float(self.env.now)

        for sid, store in self.stores.items():
            record.store_final[sid] = [self._encode(v) for v in list(store.items)]
            puts: List[Any] = []
            gets: List[Any] = []
            cancelled = 0
            for kind, ev, payload in self._store_events[sid]:
                if id(ev) in self._cancelled:
                    cancelled += 1
                elif ev.triggered:
                    if kind == "put":
                        puts.append(payload)
                    else:
                        gets.append(self._encode(ev.value))
            record.store_served[sid] = {
                "puts": puts,
                "gets": gets,
                "cancelled_gets": cancelled,
            }
        for cid, container in self.containers.items():
            record.container_final[cid] = float(container.level)
            record.container_served[cid] = {
                "put_amounts": [
                    a
                    for kind, ev, a in self._container_events[cid]
                    if kind == "put" and ev.triggered
                ],
                "get_amounts": [
                    a
                    for kind, ev, a in self._container_events[cid]
                    if kind == "get" and ev.triggered
                ],
            }
        if self.backend.kernel:
            record.kernel_stats = {
                "events_processed": float(self.env.events_processed),
                "queue_high_water": float(self.env.queue_high_water),
            }
        # Detach the record from the interpreter's live lists.  Processes
        # left suspended at run end are plain generators whose ``finally``
        # blocks (resource release bookkeeping) execute whenever the
        # cyclic GC finalizes them — a nondeterministic instant that must
        # not be able to mutate an already-returned record.
        record.trace = list(record.trace)
        record.store_log = {k: list(v) for k, v in record.store_log.items()}
        record.container_log = {
            k: list(v) for k, v in record.container_log.items()
        }
        record.resource_log = {
            k: list(v) for k, v in record.resource_log.items()
        }
        return record


def execute(scenario: Scenario, backend: Backend) -> ExecutionRecord:
    """Interpret *scenario* on *backend* and return its execution record."""
    return _Interpreter(scenario, backend).run()


def compare_records(
    a: ExecutionRecord, b: ExecutionRecord, *, strict_messages: bool = True
) -> List[str]:
    """Describe every observable difference between two executions.

    An empty list means the executions are equivalent.  *strict_messages*
    compares exception messages verbatim (kernel backends); when off
    (SimPy involved) only the exception type and time must agree.
    """
    diffs: List[str] = []
    pair = f"{a.backend} vs {b.backend}"

    def check(label: str, x: Any, y: Any) -> None:
        if x != y:
            diffs.append(f"{pair}: {label} differ: {x!r} != {y!r}")

    if len(a.trace) != len(b.trace):
        diffs.append(
            f"{pair}: trace lengths differ: {len(a.trace)} != {len(b.trace)}"
        )
    for i, (ea, eb) in enumerate(zip(a.trace, b.trace)):
        if tuple(ea) != tuple(eb):
            diffs.append(f"{pair}: trace[{i}] differs: {ea!r} != {eb!r}")
            break
    check("final clock", a.final_now, b.final_now)
    check("store logs", a.store_log, b.store_log)
    check("container logs", a.container_log, b.container_log)
    check("resource logs", a.resource_log, b.resource_log)
    check("store leftovers", a.store_final, b.store_final)
    check("store accounting", a.store_served, b.store_served)
    check("container levels", a.container_final, b.container_final)
    check("container accounting", a.container_served, b.container_served)

    if (a.error is None) != (b.error is None):
        diffs.append(f"{pair}: error presence differs: {a.error!r} != {b.error!r}")
    elif a.error is not None and b.error is not None:
        if strict_messages:
            check("error", a.error, b.error)
        else:
            check("error type", a.error[0], b.error[0])
            check("error time", a.error[2], b.error[2])

    if a.kernel_stats is not None and b.kernel_stats is not None:
        check("kernel stats", a.kernel_stats, b.kernel_stats)
    return diffs
