"""Greedy structural shrinker for failing scenarios.

Given a scenario and a failure predicate, repeatedly try structural
simplifications — drop a process, drop an op (anywhere in the spawn
tree), zero a delay, drop an unreferenced declaration, simplify the run
mode — keeping any variant that still fails, until no simplification
preserves the failure.  The result is the minimal reproducer committed
to ``tests/corpus/``.

Everything operates on the JSON dict form, so a shrunk scenario is
byte-identical to what the corpus stores, and the shrinker needs no
knowledge of op semantics beyond where delays and spawns live.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterator, List

from .scenarios import Scenario

__all__ = ["scenario_size", "shrink_scenario"]


def scenario_size(scenario: Scenario) -> int:
    """Complexity measure: total ops across the whole spawn tree."""
    data = scenario.to_dict()
    return sum(len(proc["ops"]) for proc in _walk_procs(data))


def _walk_procs(data: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Every process dict in *data*, spawn children included."""
    stack = list(data["processes"])
    while stack:
        proc = stack.pop(0)
        yield proc
        for op in proc["ops"]:
            if op[0] == "spawn":
                stack.append(op[1])


def _referenced_ids(data: Dict[str, Any]) -> set:
    refs: set = set()
    for proc in _walk_procs(data):
        for op in proc["ops"]:
            if op[0] in ("put", "pput", "get", "cancel_get", "cput", "cget",
                         "acquire"):
                refs.add(op[1])
    return refs


def _variants(data: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """All one-step simplifications of *data*, simplest-first."""
    # Drop a whole top-level process.
    if len(data["processes"]) > 1:
        for i in range(len(data["processes"])):
            v = copy.deepcopy(data)
            del v["processes"][i]
            yield v

    # Drop a single op anywhere in the spawn tree.
    n_procs = sum(1 for _ in _walk_procs(data))
    for pi in range(n_procs):
        proc = list(_walk_procs(data))[pi]
        for oi in range(len(proc["ops"])):
            v = copy.deepcopy(data)
            vproc = list(_walk_procs(v))[pi]
            del vproc["ops"][oi]
            yield v

    # Zero a delay (start delays; delay-bearing op arguments).
    for pi in range(n_procs):
        proc = list(_walk_procs(data))[pi]
        if proc["start_delay"] > 0:
            v = copy.deepcopy(data)
            list(_walk_procs(v))[pi]["start_delay"] = 0.0
            yield v
        for oi, op in enumerate(proc["ops"]):
            delay_arg = {
                "timeout": 1, "sleep_catch": 1, "cancel_get": 2, "acquire": 3
            }.get(op[0])
            if delay_arg is not None and op[delay_arg] > 0:
                v = copy.deepcopy(data)
                list(_walk_procs(v))[pi]["ops"][oi][delay_arg] = 0.0
                yield v

    # Drop declarations nothing references any more.
    refs = _referenced_ids(data)
    for section in ("stores", "containers", "resources"):
        for i, spec in enumerate(data[section]):
            if spec["id"] not in refs:
                v = copy.deepcopy(data)
                del v[section][i]
                yield v

    # Simplify the run mode down to a full drain.
    if data["run_mode"] != "drain":
        v = copy.deepcopy(data)
        v["run_mode"] = "drain"
        v["until"] = None
        yield v


def shrink_scenario(
    scenario: Scenario,
    fails: Callable[[Scenario], bool],
    max_attempts: int = 2000,
) -> Scenario:
    """Greedily minimize *scenario* while ``fails(candidate)`` stays true.

    *fails* must be deterministic (replaying the same candidate gives the
    same verdict) — true for every check in this package.  Candidates
    whose replay raises are skipped, never accepted.  ``max_attempts``
    bounds total candidate executions, so shrinking always terminates
    quickly even for adversarial predicates.
    """
    if not fails(scenario):
        raise ValueError("shrink_scenario needs a failing scenario to start from")
    current = scenario
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for cand_data in _variants(current.to_dict()):
            attempts += 1
            candidate = Scenario.from_dict(cand_data)
            try:
                still_failing = fails(candidate)
            except Exception:  # noqa: BLE001 - malformed variant, skip
                still_failing = False
            if still_failing:
                current = candidate
                improved = True
                break
            if attempts >= max_attempts:
                break
    return current
