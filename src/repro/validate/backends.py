"""Execution backends for the differential validator.

A backend bundles the kernel classes a scenario is interpreted against
plus the ``drive`` function that runs the environment.  Three backends
exist:

``fast``
    The production kernel driven through :meth:`Environment.run` — the
    three inlined hot-path loop variants PR 3 introduced.
``step``
    The same kernel driven through :func:`run_reference`, a loop built
    exclusively on :meth:`Environment.step` (the documented reference
    semantics).  Any fast-path/reference divergence is a kernel bug by
    definition (``docs/PERFORMANCE.md``, "Determinism contract").
``calendar``
    The production kernel with the :class:`~repro.des.core.CalendarQueue`
    selected (``delay_grid`` = the scenario generator's delay quantum),
    driven through :meth:`Environment.run`.  Scenario delays are grid
    multiples by construction, so generated programs exercise the
    bucket-queue dispatch loop; scenarios that schedule off-grid exercise
    the runtime demotion path.  Kernel stats are compared bit-exactly
    against the heap backends.
``simpy``
    Real SimPy, when installed (the ROADMAP's multi-backend direction).
    Our kernel is SimPy-compatible by design, so the same interpreter
    drives ``simpy.Environment`` unchanged; scenarios using kernel
    extensions are skipped (:meth:`Scenario.simpy_compatible`).

:class:`ReferenceEnvironment` additionally lets whole C/R simulations
run on the step reference (``repro.validate.crdiff`` swaps it into
``repro.models.base``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..des import (
    Container,
    Environment,
    Event,
    Infinity,
    Interrupt,
    PriorityItem,
    PriorityResource,
    PriorityStore,
    Resource,
    SimulationError,
    Store,
)
from ..des.core import _StopFlag

__all__ = [
    "Backend",
    "ReferenceEnvironment",
    "run_reference",
    "available_backends",
    "resolve_backends",
]


def run_reference(env: Environment, until: Any = None) -> Any:
    """Run *env* with :meth:`Environment.run` semantics via ``step()`` only.

    This is the executable specification of the three inlined loop
    variants in ``des/core.py``: same ``until`` contract, same
    exceptions, same message strings, same clock/stat updates — but
    every event dispatch goes through the single-event reference
    implementation.  The differential executor asserts that the fast
    paths and this loop produce identical observable behavior.
    """
    if until is None:
        at = Infinity
        stop_event: Optional[Event] = None
    elif isinstance(until, Event):
        stop_event = until
        at = Infinity
        if stop_event.callbacks is None:
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        stop_event.callbacks.append(_StopFlag())
    else:
        at = float(until)
        if at <= env._now:
            raise ValueError(f"until ({at}) must be greater than now ({env._now})")
        stop_event = None

    # queue_size/peek() instead of env._queue directly: the reference
    # loop must drive a calendar-queue environment identically.
    if stop_event is not None:
        while env.queue_size:
            env.step()
            if stop_event.callbacks is None:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
        raise SimulationError(
            f"simulation ended before the until-event {stop_event!r} was triggered"
        )
    while env.queue_size:
        if env.peek() > at:
            env._now = at
            break
        env.step()
    if at != Infinity and env._now < at:
        env._now = at
    return None


class ReferenceEnvironment(Environment):
    """An :class:`Environment` whose ``run`` is the step-by-step reference.

    Substituting this class for ``Environment`` (e.g. inside
    ``repro.models.base``) reruns an entire C/R simulation on reference
    dispatch without touching the simulation code.
    """

    __slots__ = ()

    def run(self, until: Any = None) -> Any:
        return run_reference(self, until)


@dataclass(frozen=True)
class Backend:
    """One executable target for scenario interpretation.

    Attributes
    ----------
    name:
        ``"fast"``, ``"step"``, ``"calendar"``, or ``"simpy"``.
    kernel:
        True for the in-repo kernel (enables kernel-stat comparison and
        strict exception-message comparison).
    env_factory / drive:
        Create an environment; run it (``drive(env, until)``).
    classes:
        Name → class mapping the interpreter instantiates
        (``Store``, ``PriorityStore``, ``PriorityItem``, ``Container``,
        ``Resource``, ``PriorityResource``, ``Interrupt``).
    """

    name: str
    kernel: bool
    env_factory: Callable[[], Any]
    drive: Callable[[Any, Any], Any]
    classes: Dict[str, Any]


_KERNEL_CLASSES: Dict[str, Any] = {
    "Store": Store,
    "PriorityStore": PriorityStore,
    "PriorityItem": PriorityItem,
    "Container": Container,
    "Resource": Resource,
    "PriorityResource": PriorityResource,
    "Interrupt": Interrupt,
}

FAST_BACKEND = Backend(
    name="fast",
    kernel=True,
    env_factory=Environment,
    drive=lambda env, until: env.run(until=until),
    classes=_KERNEL_CLASSES,
)

STEP_BACKEND = Backend(
    name="step",
    kernel=True,
    env_factory=Environment,
    drive=run_reference,
    classes=_KERNEL_CLASSES,
)


def _calendar_environment() -> Environment:
    # The scenario generator quantizes every delay to DELAY_QUANTUM
    # (a power of two), so this grid qualifies and generated programs
    # run on the calendar dispatch loop unless they demote themselves.
    from .scenarios import DELAY_QUANTUM

    return Environment(delay_grid=DELAY_QUANTUM)


CALENDAR_BACKEND = Backend(
    name="calendar",
    kernel=True,
    env_factory=_calendar_environment,
    drive=lambda env, until: env.run(until=until),
    classes=_KERNEL_CLASSES,
)


def _make_simpy_backend() -> Optional[Backend]:
    """Build the SimPy backend, or ``None`` when SimPy is not installed."""
    try:
        import simpy
    except ImportError:
        return None
    classes = {
        "Store": simpy.Store,
        "PriorityStore": simpy.PriorityStore,
        "PriorityItem": simpy.PriorityItem,
        "Container": simpy.Container,
        "Resource": simpy.Resource,
        "PriorityResource": simpy.PriorityResource,
        "Interrupt": simpy.Interrupt,
    }
    return Backend(
        name="simpy",
        kernel=False,
        env_factory=simpy.Environment,
        drive=lambda env, until: env.run(until=until),
        classes=classes,
    )


def available_backends() -> Dict[str, Backend]:
    """All backends runnable in this interpreter, keyed by name."""
    backends = {
        "fast": FAST_BACKEND,
        "step": STEP_BACKEND,
        "calendar": CALENDAR_BACKEND,
    }
    simpy_backend = _make_simpy_backend()
    if simpy_backend is not None:
        backends["simpy"] = simpy_backend
    return backends


def resolve_backends(names) -> Dict[str, Backend]:
    """Resolve user-requested backend *names* (``["all"]`` = everything).

    Raises
    ------
    ValueError
        For an unknown name, or for ``simpy`` when SimPy is missing.
    """
    have = available_backends()
    if not names or "all" in names:
        return have
    chosen: Dict[str, Backend] = {}
    for name in names:
        if name not in ("fast", "step", "calendar", "simpy"):
            raise ValueError(f"unknown backend {name!r}")
        if name not in have:
            raise ValueError("backend 'simpy' requires SimPy to be installed")
        chosen[name] = have[name]
    return chosen
