"""Invariant oracles for the validation subsystem.

Two families of checks, both returning a list of human-readable
violation strings (empty = all invariants hold):

**Scenario oracles** (:func:`check_record`) inspect one
:class:`~.executor.ExecutionRecord` against its scenario — properties
that must hold on *every* backend regardless of what the random program
did: a monotonic clock, store token conservation, capacity bounds,
FIFO / priority-ordered drains, container level conservation and bounds,
and resource grant legality.

**Model oracles** cross-check the C/R layers against their closed
forms: :func:`check_bandwidth_monotonicity` (the ``iomodel`` laws are
monotone and saturate), :func:`check_analysis_consistency` (Eq. 1/Eq. 2
algebra and the :func:`~repro.analysis.expected.expected_base_overheads`
accounting identity), and :func:`check_statemachine_table` (structural
sanity of the Fig 5 transition table).  :mod:`repro.validate.crdiff`
adds the runtime SnapshotLedger / state-machine checks that need a live
simulation.

Replay oracles work on the service logs, which record events in kernel
*processing* order.  Requests created in the lag between an event being
serviced and being processed would look like bypassed waiters, so the
resource-priority oracle only flags a bypassed waiter from a strictly
earlier timestep — same-timestep inversions are instead caught by the
cross-backend differential comparison.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from .executor import ExecutionRecord
from .scenarios import Scenario

__all__ = [
    "check_record",
    "check_monotonic_clock",
    "check_store_invariants",
    "check_container_invariants",
    "check_resource_invariants",
    "check_bandwidth_monotonicity",
    "check_analysis_consistency",
    "check_statemachine_table",
]

_TOL = 1e-9


def _key(value: Any) -> str:
    """Stable sort/multiset key for encoded payloads (lists, ints)."""
    return repr(value)


# ---------------------------------------------------------------------------
# scenario oracles
# ---------------------------------------------------------------------------

def check_monotonic_clock(record: ExecutionRecord) -> List[str]:
    """The clock never moves backwards across trace or service logs."""
    out: List[str] = []
    last = -math.inf
    for entry in record.trace:
        t = entry[3]
        if t < last:
            out.append(f"clock moved backwards in trace at {entry!r}")
        last = t
    for name, logs in (
        ("store", record.store_log),
        ("container", record.container_log),
        ("resource", record.resource_log),
    ):
        for rid, log in logs.items():
            last = -math.inf
            for entry in log:
                t = entry[1]
                if t < last:
                    out.append(
                        f"clock moved backwards in {name} {rid} log at {entry!r}"
                    )
                last = t
    if record.trace and record.final_now < max(e[3] for e in record.trace) - _TOL:
        out.append("final clock precedes the last trace entry")
    return out


def check_store_invariants(
    record: ExecutionRecord, scenario: Scenario
) -> List[str]:
    """Token conservation, capacity bounds, and drain order per store."""
    out: List[str] = []
    specs = {s.id: s for s in scenario.stores}
    for sid, served in record.store_served.items():
        spec = specs[sid]
        # Conservation: every accepted token is either retrieved or left
        # over; nothing is duplicated or lost.  Holds in every run mode
        # because it counts *serviced* requests, not processed events.
        accepted = sorted(served["puts"], key=_key)
        accounted = sorted(
            served["gets"] + record.store_final.get(sid, []), key=_key
        )
        if accepted != accounted:
            out.append(
                f"store {sid}: conservation violated: accepted {accepted!r} "
                f"!= retrieved+leftover {accounted!r}"
            )

        # Capacity and drain order, replayed from the service log.
        capacity = math.inf if spec.capacity is None else spec.capacity
        buffer: List[Any] = []
        for entry in record.store_log.get(sid, []):
            kind, _t, value = entry
            if kind == "put":
                buffer.append(value)
                if len(buffer) > capacity:
                    out.append(
                        f"store {sid}: capacity {capacity} exceeded at {entry!r}"
                    )
            else:
                if not buffer:
                    out.append(f"store {sid}: get from empty store at {entry!r}")
                    continue
                if spec.kind == "priority":
                    # Lowest priority first; FIFO among equals.
                    expect_i = min(
                        range(len(buffer)), key=lambda i: (buffer[i][1], i)
                    )
                else:
                    expect_i = 0
                expected = buffer[expect_i]
                if _key(expected) != _key(value):
                    out.append(
                        f"store {sid}: out-of-order drain: expected "
                        f"{expected!r}, got {value!r} at t={_t}"
                    )
                    # Resynchronize so one bug yields one violation.
                    matches = [
                        i for i, v in enumerate(buffer) if _key(v) == _key(value)
                    ]
                    expect_i = matches[0] if matches else expect_i
                buffer.pop(expect_i)
    return out


def check_container_invariants(
    record: ExecutionRecord, scenario: Scenario
) -> List[str]:
    """Level conservation and [0, capacity] bounds per container."""
    out: List[str] = []
    specs = {c.id: c for c in scenario.containers}
    for cid, served in record.container_served.items():
        spec = specs[cid]
        expected = spec.init + sum(served["put_amounts"]) - sum(
            served["get_amounts"]
        )
        final = record.container_final[cid]
        if abs(expected - final) > _TOL:
            out.append(
                f"container {cid}: conservation violated: expected level "
                f"{expected!r}, found {final!r}"
            )
        level = spec.init
        for entry in record.container_log.get(cid, []):
            kind, _t, amount = entry
            level += amount if kind == "put" else -amount
            if level < -_TOL or level > spec.capacity + _TOL:
                out.append(
                    f"container {cid}: level {level!r} outside "
                    f"[0, {spec.capacity}] at {entry!r}"
                )
    return out


def check_resource_invariants(
    record: ExecutionRecord, scenario: Scenario
) -> List[str]:
    """Grant legality per resource: capacity bound and queue discipline."""
    out: List[str] = []
    specs = {r.id: r for r in scenario.resources}
    for rid, log in record.resource_log.items():
        spec = specs[rid]
        waiting: Dict[int, tuple] = {}  # seq -> (prio, request_time)
        granted: set = set()
        # Grants are logged at event *processing*; releases synchronously.
        # A request granted and immediately interrupted in the same
        # timestep therefore logs its release first — track those seqs so
        # the late grant entry nets out instead of flagging.
        pre_released: set = set()
        in_use = 0
        for entry in log:
            kind, t, seq = entry[0], entry[1], entry[2]
            if kind == "req":
                waiting[seq] = (entry[3], t)
            elif kind == "cancel":
                waiting.pop(seq, None)
            elif kind == "release":
                if seq in granted:
                    granted.discard(seq)
                    in_use -= 1
                elif seq in waiting:
                    pre_released.add(seq)
                    waiting.pop(seq)
                else:
                    out.append(f"resource {rid}: release without grant at {entry!r}")
            elif kind == "grant":
                if seq in pre_released:
                    pre_released.discard(seq)
                    continue
                if seq not in waiting:
                    out.append(f"resource {rid}: grant without request at {entry!r}")
                    continue
                granted.add(seq)
                prio, req_t = waiting.pop(seq)
                in_use += 1
                if in_use > spec.capacity:
                    out.append(
                        f"resource {rid}: capacity {spec.capacity} exceeded "
                        f"at {entry!r}"
                    )
                granted_key = (
                    (prio, req_t, seq) if spec.kind == "priority" else (seq,)
                )
                for w_seq, (w_prio, w_t) in waiting.items():
                    if w_t >= t:
                        continue  # same-timestep arrival: processing lag
                    w_key = (
                        (w_prio, w_t, w_seq)
                        if spec.kind == "priority"
                        else (w_seq,)
                    )
                    if w_key < granted_key:
                        out.append(
                            f"resource {rid}: waiter {w_seq} (prio {w_prio}, "
                            f"t={w_t}) bypassed by grant {entry!r}"
                        )
    return out


def check_record(record: ExecutionRecord, scenario: Scenario) -> List[str]:
    """Run every scenario oracle over one execution record."""
    out = check_monotonic_clock(record)
    out += check_store_invariants(record, scenario)
    out += check_container_invariants(record, scenario)
    out += check_resource_invariants(record, scenario)
    return [f"[{record.backend}] {v}" for v in out]


# ---------------------------------------------------------------------------
# model oracles (closed-form cross-checks)
# ---------------------------------------------------------------------------

def check_bandwidth_monotonicity() -> List[str]:
    """The ``iomodel`` bandwidth laws are monotone and saturate.

    Realized bandwidth must never *decrease* with a larger transfer, and
    aggregate bandwidth must never decrease with more nodes while staying
    below the application-realized ceiling — the monotonicity the C/R
    timing model relies on when it sizes checkpoint writes.
    """
    from ..iomodel.bandwidth import (
        AGGREGATE_SATURATION_BW,
        GiB,
        MiB,
        OPTIMAL_TASKS_PER_NODE,
        aggregate_bandwidth,
        single_node_bandwidth,
        size_efficiency,
        task_efficiency,
    )

    out: List[str] = []
    sizes = [64.0 * 1024, 1.0 * MiB, 64.0 * MiB, 1.0 * GiB, 64.0 * GiB]
    for prev, cur in zip(sizes, sizes[1:]):
        if size_efficiency(cur) < size_efficiency(prev) - _TOL:
            out.append(f"size_efficiency not monotone between {prev} and {cur}")
        if single_node_bandwidth(cur) < single_node_bandwidth(prev) - _TOL:
            out.append(
                f"single_node_bandwidth not monotone between {prev} and {cur}"
            )
    nodes = [1, 4, 16, 128, 1024, 4096]
    for prev, cur in zip(nodes, nodes[1:]):
        a_prev = aggregate_bandwidth(prev, 8.0 * GiB)
        a_cur = aggregate_bandwidth(cur, 8.0 * GiB)
        if a_cur < a_prev - _TOL:
            out.append(f"aggregate_bandwidth not monotone between {prev} and {cur}")
        if a_cur > AGGREGATE_SATURATION_BW:
            out.append(f"aggregate_bandwidth exceeds saturation at {cur} nodes")
    peak = task_efficiency(OPTIMAL_TASKS_PER_NODE)
    for n in (1, 2, 4, 16, 42):
        if task_efficiency(n) > peak + _TOL:
            out.append(f"task_efficiency({n}) exceeds the optimum-task peak")
    return out


def check_analysis_consistency() -> List[str]:
    """Eq. 1 / Eq. 2 algebra and the expected-overhead accounting identity.

    * ``sigma_adjusted_oci == young_oci / sqrt(1 - sigma)`` (Eq. 2 is
      Eq. 1 with the discounted rate);
    * ``oci_elongation_percent`` matches that ratio;
    * :func:`~repro.analysis.expected.expected_base_overheads` satisfies
      ``makespan = compute + checkpoint + recomputation + recovery`` and
      its OCI equals Young's formula for the same inputs.
    """
    from ..analysis.expected import expected_base_overheads
    from ..analysis.young import (
        oci_elongation_percent,
        sigma_adjusted_oci,
        young_oci,
    )
    from ..failures.weibull import WeibullParams
    from ..platform.system import SUMMIT
    from ..workloads.applications import ApplicationSpec

    out: List[str] = []
    for t_bb, rate, nodes, sigma in (
        (30.0, 1e-6, 128, 0.3),
        (120.0, 5e-7, 2048, 0.8),
    ):
        base = young_oci(t_bb, rate, nodes)
        adjusted = sigma_adjusted_oci(t_bb, rate, nodes, sigma)
        expect = base / math.sqrt(1.0 - sigma)
        if abs(adjusted - expect) > 1e-6 * expect:
            out.append(f"sigma_adjusted_oci inconsistent with Eq. 1 at sigma={sigma}")
        elong = oci_elongation_percent(sigma)
        if abs(elong - (adjusted / base - 1.0) * 100.0) > 1e-6:
            out.append(f"oci_elongation_percent inconsistent at sigma={sigma}")

    from ..iomodel.bandwidth import GiB

    app = ApplicationSpec("oracle", 64, 64 * 4.0 * GiB, 8.0)
    weibull = WeibullParams("oracle", shape=0.7, scale_hours=8.0, system_nodes=64)
    exp = expected_base_overheads(app, SUMMIT, weibull)
    identity = app.compute_seconds + exp.total
    if abs(exp.makespan - identity) > 1e-6 * exp.makespan:
        out.append(
            f"expected makespan {exp.makespan} != compute+overheads {identity}"
        )
    bb = SUMMIT.node.burst_buffer
    oci = young_oci(
        bb.write_time(app.checkpoint_bytes_per_node),
        weibull.per_node_rate(),
        app.nodes,
    )
    if abs(exp.oci - oci) > 1e-9 * oci:
        out.append("expected_base_overheads OCI disagrees with young_oci")
    return out


def check_statemachine_table() -> List[str]:
    """Structural sanity of the Fig 5 transition table.

    Every health state appears as a source, no state transitions to
    itself, a FAILED node can only be replaced (→ NORMAL), and
    ``transition()`` enforces exactly the table.
    """
    from ..core.statemachine import (
        ALLOWED_TRANSITIONS,
        IllegalTransition,
        can_transition,
        transition,
    )
    from ..platform.node import NodeHealth

    out: List[str] = []
    for state in NodeHealth:
        if state not in ALLOWED_TRANSITIONS:
            out.append(f"state {state} missing from the transition table")
    for src, dsts in ALLOWED_TRANSITIONS.items():
        if src in dsts:
            out.append(f"self-transition allowed for {src}")
    if ALLOWED_TRANSITIONS[NodeHealth.FAILED] != frozenset({NodeHealth.NORMAL}):
        out.append("FAILED must transition only to NORMAL (replacement)")
    for src in NodeHealth:
        for dst in NodeHealth:
            legal = can_transition(src, dst)
            try:
                transition(src, dst)
                enforced = True
            except IllegalTransition:
                enforced = False
            if legal != enforced:
                out.append(f"transition({src}, {dst}) disagrees with the table")
    return out
