"""Scheduler-level validation: fuzzed schedules checked against oracles.

The scenario fuzzer proves the kernel; :mod:`~.crdiff` proves one job's
C/R loop; this module proves the *batch queue* built on both.  Each case
is a randomized small machine plus a randomized trace workload, executed
by :class:`~repro.sched.engine.SchedSimulation` on **both** kernel
backends (binary heap and calendar queue) and held to the scheduling
invariants no policy is allowed to break:

* **liveness** — every admitted job starts and finishes (EASY backfill
  must not starve wide jobs behind a stream of narrow ones);
* **conservation** — node-seconds of executed work never exceed
  ``total_nodes × makespan``, and utilization stays in ``[0, 1]``;
* **placement** — a job's node intervals cover exactly its request,
  stay on the machine, and never overlap another job running at the
  same time;
* **causality** — no job starts before it is submitted, and under FCFS
  no job starts before an earlier-submitted one;
* **accounting** — per-job ``FTStats`` pass their own consistency
  check, and both backends produce bit-identical schedules.

Failures shrink to a minimal reproducer by greedy job deletion, the
same contract the scenario shrinker follows.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "SchedCase",
    "generate_sched_case",
    "run_sched_case",
    "check_sched_output",
    "check_sched_case",
    "shrink_sched_case",
    "sched_case_size",
]

#: Applications the fuzzer draws from — the narrow end of Table I, so a
#: 16..64-node fuzz machine sees realistic contention without CHIMERA's
#: quarter-terabyte checkpoints stretching a case into minutes.
_FUZZ_APPS = ("GYRO", "POP", "VULCAN")
_FUZZ_MODELS = ("B", "M1", "M2", "P1", "P2")


@dataclass(frozen=True)
class SchedCase:
    """One randomized batch-queue configuration (fully deterministic)."""

    seed: int
    policy: str
    total_nodes: int
    drain_lanes: int
    background_load: float
    hours_scale: float
    weibull_shape: float
    weibull_scale_hours: float
    sim_seed: int
    entries: Tuple[Dict[str, Any], ...]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def generate_sched_case(seed: int) -> SchedCase:
    """Deterministic random batch-queue case for *seed*.

    Machines are small (16–64 nodes) and compute hours heavily scaled
    down, so a case runs in tens of milliseconds while still producing
    queueing, backfill decisions, checkpoint drains, and failures.
    """
    rng = random.Random(f"pckpt-schedval-{seed}")
    from ..sched.jobs import POLICY_NAMES

    total_nodes = rng.choice((16, 32, 64))
    n_jobs = rng.randint(3, 10)
    entries: List[Dict[str, Any]] = []
    at = 0.0
    for i in range(n_jobs):
        at += rng.uniform(0.0, 600.0)
        entries.append({
            "app": rng.choice(_FUZZ_APPS),
            "at": round(at, 3),
            "model": rng.choice(_FUZZ_MODELS),
            "user": f"u{rng.randint(0, 2)}",
            # Mix narrow and wide requests: wide jobs are what EASY
            # backfill can starve, narrow ones are what starves them.
            "nodes": (rng.randint(1, max(1, total_nodes // 4))
                      if rng.random() < 0.6
                      else rng.randint(total_nodes // 2, total_nodes)),
        })
    return SchedCase(
        seed=seed,
        policy=rng.choice(POLICY_NAMES),
        total_nodes=total_nodes,
        drain_lanes=rng.choice((1, 2, 4)),
        background_load=rng.choice((0.0, 0.25, 0.5)),
        hours_scale=rng.choice((0.002, 0.005, 0.01)),
        weibull_shape=rng.choice((0.6, 0.7, 0.9)),
        weibull_scale_hours=rng.choice((0.25, 0.5, 1.0)),
        sim_seed=rng.randint(0, 2**31 - 1),
        entries=tuple(entries),
    )


def _case_with_entries(case: SchedCase,
                       entries: Tuple[Dict[str, Any], ...]) -> SchedCase:
    return dataclasses.replace(case, entries=entries)


def run_sched_case(case: SchedCase, policy: Optional[object] = None,
                   delay_grid: Optional[float] = None):
    """Execute one case; returns a :class:`~repro.sched.engine.SchedRunOutput`.

    *policy* accepts a :class:`~repro.sched.policy.SchedulingPolicy`
    instance to substitute for the case's named policy — the hook the
    mutation tests use to run a deliberately broken scheduler through
    the same oracles.
    """
    import numpy as np

    from ..failures.leadtime import PAPER_LEAD_TIME_MODEL
    from ..failures.predictor import DEFAULT_PREDICTOR
    from ..failures.weibull import WeibullParams
    from ..platform.system import SUMMIT
    from ..sched.engine import SchedSimulation
    from ..sched.workload import trace_workload

    workload = trace_workload(
        case.entries, _FUZZ_MODELS,
        hours_scale=case.hours_scale, max_nodes=case.total_nodes,
    )
    platform = dataclasses.replace(SUMMIT, total_nodes=case.total_nodes)
    weibull = WeibullParams(
        f"schedval-{case.seed}",
        shape=case.weibull_shape,
        scale_hours=case.weibull_scale_hours,
        system_nodes=case.total_nodes,
    )
    sim = SchedSimulation(
        workload,
        policy=case.policy if policy is None else policy,
        platform=platform,
        weibull=weibull,
        lead_model=PAPER_LEAD_TIME_MODEL,
        predictor=DEFAULT_PREDICTOR,
        seed_seq=np.random.SeedSequence(case.sim_seed),
        drain_lanes=case.drain_lanes,
        background_load=case.background_load,
        delay_grid=delay_grid,
    )
    return sim.run()


def _fingerprint(output) -> List[Tuple]:
    """Bit-exact per-job schedule fingerprint (floats via ``hex``)."""
    rows = []
    for r in output.records:
        ft = r.ft
        rows.append((
            r.job.name,
            None if r.start is None else float(r.start).hex(),
            None if r.end is None else float(r.end).hex(),
            r.checkpoints,
            r.drains,
            r.intervals,
            (ft.failures, ft.predicted, ft.mitigated_lm, ft.mitigated_pckpt,
             ft.mitigated_safeguard, ft.false_alarms, ft.lm_aborts),
        ))
    return rows


def check_sched_output(output, case: SchedCase,
                       policy_name: Optional[str] = None) -> List[str]:
    """Scheduling-invariant violations for one executed case (empty = clean)."""
    problems: List[str] = []
    policy_name = policy_name if policy_name is not None else case.policy
    records = output.records

    # Liveness: every admitted job starts and finishes.
    for r in records:
        if r.start is None:
            problems.append(f"starvation: {r.job.name} never started")
        elif r.end is None:
            problems.append(f"liveness: {r.job.name} started but never ended")

    placed = [r for r in records if r.start is not None and r.end is not None]

    # Causality: starts respect submissions; FCFS admits in order.
    for r in placed:
        if r.start < r.job.arrival - 1e-9:
            problems.append(
                f"causality: {r.job.name} started at {r.start} before its "
                f"submission at {r.job.arrival}"
            )
    if policy_name == "fcfs":
        ordered = sorted(placed, key=lambda r: (r.job.arrival, r.job.id))
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start < earlier.start - 1e-9:
                problems.append(
                    f"fcfs: {later.job.name} (submitted later) started at "
                    f"{later.start} before {earlier.job.name} at "
                    f"{earlier.start}"
                )

    # Placement: intervals cover the request, fit the machine, and
    # time-concurrent jobs never share a node.
    for r in placed:
        width = sum(hi - lo for lo, hi in r.intervals)
        if width != r.job.nodes:
            problems.append(
                f"placement: {r.job.name} holds {width} nodes, "
                f"requested {r.job.nodes}"
            )
        for lo, hi in r.intervals:
            if lo < 0 or hi > case.total_nodes or lo >= hi:
                problems.append(
                    f"placement: {r.job.name} interval [{lo}, {hi}) is off "
                    f"the {case.total_nodes}-node machine"
                )
    for i, a in enumerate(placed):
        for b in placed[i + 1:]:
            if a.start < b.end - 1e-9 and b.start < a.end - 1e-9:
                for lo_a, hi_a in a.intervals:
                    for lo_b, hi_b in b.intervals:
                        if lo_a < hi_b and lo_b < hi_a:
                            problems.append(
                                f"overlap: {a.job.name} [{lo_a},{hi_a}) and "
                                f"{b.job.name} [{lo_b},{hi_b}) share nodes "
                                f"while both running"
                            )

    # Conservation: executed node-seconds fit the machine-time envelope.
    busy = sum(r.job.nodes * r.run_seconds for r in placed)
    envelope = case.total_nodes * output.makespan_seconds
    if busy > envelope * (1 + 1e-9) + 1e-6:
        problems.append(
            f"conservation: {busy:.3f} node-seconds executed inside a "
            f"{envelope:.3f} node-second envelope"
        )
    if not 0.0 <= output.utilization <= 1.0 + 1e-9:
        problems.append(
            f"conservation: utilization {output.utilization} outside [0, 1]"
        )

    # Accounting: per-job FT counters stay internally consistent.
    for r in records:
        if r.ft is None:
            continue
        try:
            r.ft.validate()
        except ValueError as exc:
            problems.append(f"ftstats: {r.job.name}: {exc}")
        if r.run_seconds < 0:
            problems.append(f"accounting: {r.job.name} negative run time")
        if r.start is not None and r.wait_seconds < -1e-9:
            problems.append(f"accounting: {r.job.name} negative wait time")
    return problems


def check_sched_case(case: SchedCase,
                     policy: Optional[object] = None) -> List[str]:
    """All violations for one case: invariant oracles + backend diff.

    Runs the case on the heap kernel, checks every scheduling oracle,
    then re-runs it on the calendar-queue kernel and requires the two
    schedules to be bit-identical (the sched layer inherits the kernel's
    backend-equivalence contract).  With an injected *policy* the
    backend diff is skipped — mutants only face the invariants.
    """
    try:
        output = run_sched_case(case, policy=policy)
    except Exception as exc:  # noqa: BLE001 - reported, not fatal
        return [f"simulation raised {type(exc).__name__}: {exc}"]
    problems = check_sched_output(
        output, case,
        policy_name=None if policy is None else type(policy).__name__,
    )
    if policy is None:
        try:
            calendar = run_sched_case(case, delay_grid=1.0)
        except Exception as exc:  # noqa: BLE001
            return problems + [
                f"calendar backend raised {type(exc).__name__}: {exc}"
            ]
        heap_fp, cal_fp = _fingerprint(output), _fingerprint(calendar)
        if heap_fp != cal_fp:
            for h, c in zip(heap_fp, cal_fp):
                if h != c:
                    problems.append(
                        f"backend diff: {h[0]} heap={h[1:]} calendar={c[1:]}"
                    )
    return problems


def sched_case_size(case: SchedCase) -> int:
    """Shrinker size metric: number of jobs in the workload."""
    return len(case.entries)


def shrink_sched_case(
    case: SchedCase, still_fails: Callable[[SchedCase], bool]
) -> SchedCase:
    """Greedy minimization: drop jobs while the case still fails.

    Repeatedly tries removing each job (ids re-densify positionally via
    ``trace_workload``); keeps any deletion that preserves the failure,
    to a fixed point.  Same contract as ``shrink_scenario``: the result
    fails *still_fails* whenever the input did.
    """
    current = case
    shrunk = True
    while shrunk and len(current.entries) > 1:
        shrunk = False
        for i in range(len(current.entries)):
            candidate = _case_with_entries(
                current, current.entries[:i] + current.entries[i + 1:]
            )
            if still_fails(candidate):
                current = candidate
                shrunk = True
                break
    return current
