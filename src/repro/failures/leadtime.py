"""Desh-style failure-chain lead-time model (paper Fig 2a).

The paper mines six months of logs from three HPC systems with the Desh
technique: recurring *failure chains* (sequences of log phrases that end in
a failure) define per-sequence **lead times** — the gap between the first
phrase of the chain and the failure.  Fig 2a summarizes ten recurring
sequences as box plots with their occurrence counts.

We do not have the proprietary logs, so this module encodes a
**shape-faithful mixture model**: ten lognormal components whose means,
spreads and occurrence weights were reverse-engineered from the constraints
the paper's own results impose (the FT ratios of Tables II and IV pin down
the complementary CDF of the lead-time marginal at a dozen points — see
DESIGN.md).  The hallmark features are:

* a **dominant sequence near 43 s** holding ≈50% of the mass — this is what
  makes live migration collapse for CHIMERA at −10% lead-time change while
  p-ckpt keeps working;
* a probability *gap* between ≈28 s and ≈37 s — the reason M2's FT ratio
  plateaus for CHIMERA between +10% and +50%;
* two rare long-lead sequences (ids 3 and 4 in Fig 2a) with large whiskers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "FailureSequenceSpec",
    "LeadTimeModel",
    "PAPER_SEQUENCES",
    "PAPER_LEAD_TIME_MODEL",
]


@dataclass(frozen=True)
class FailureSequenceSpec:
    """One recurring failure chain (one box in Fig 2a).

    Attributes
    ----------
    sequence_id:
        1-based id, matching the paper's x-axis ordering.
    occurrences:
        How many times the chain occurred in the mined logs (weight).
    mean_lead:
        Mean lead time in seconds.
    sd_lead:
        Standard deviation of the lead time in seconds.
    """

    sequence_id: int
    occurrences: int
    mean_lead: float
    sd_lead: float

    def __post_init__(self) -> None:
        if self.occurrences < 1:
            raise ValueError("occurrences must be >= 1")
        if self.mean_lead <= 0:
            raise ValueError("mean lead time must be positive")
        if self.sd_lead <= 0:
            raise ValueError("lead-time spread must be positive")

    # Lognormal parameterization matching the requested mean/sd.
    @property
    def _sigma(self) -> float:
        return math.sqrt(math.log(1.0 + (self.sd_lead / self.mean_lead) ** 2))

    @property
    def _mu(self) -> float:
        return math.log(self.mean_lead) - 0.5 * self._sigma**2

    def sample(self, rng: np.random.Generator, n: int | None = None):
        """Draw lead time(s) in seconds."""
        return rng.lognormal(self._mu, self._sigma, size=n)

    def survival(self, t: float | np.ndarray) -> float | np.ndarray:
        """P(lead > t) for this sequence."""
        from scipy.stats import lognorm

        t = np.asarray(t, dtype=float)
        s = lognorm.sf(np.maximum(t, 1e-300), s=self._sigma, scale=math.exp(self._mu))
        return float(s) if s.ndim == 0 else s

    def quantile(self, q: float | np.ndarray) -> float | np.ndarray:
        """Lead-time quantile (for box-plot statistics)."""
        from scipy.stats import lognorm

        return lognorm.ppf(q, s=self._sigma, scale=math.exp(self._mu))


#: The ten Fig 2a sequences.  Occurrence counts are per 10 000 mined
#: failures; means/sds chosen to satisfy the Table II / Table IV CDF
#: constraints (see module docstring and DESIGN.md §2).
PAPER_SEQUENCES: Tuple[FailureSequenceSpec, ...] = (
    FailureSequenceSpec(1, 200, mean_lead=9.0, sd_lead=3.0),
    FailureSequenceSpec(2, 1700, mean_lead=18.5, sd_lead=1.2),
    FailureSequenceSpec(3, 400, mean_lead=240.0, sd_lead=60.0),
    FailureSequenceSpec(4, 80, mean_lead=800.0, sd_lead=350.0),
    FailureSequenceSpec(5, 1000, mean_lead=25.0, sd_lead=0.6),
    FailureSequenceSpec(6, 5000, mean_lead=43.2, sd_lead=1.0),
    FailureSequenceSpec(7, 1200, mean_lead=39.2, sd_lead=0.8),
    FailureSequenceSpec(8, 100, mean_lead=26.8, sd_lead=0.3),
    FailureSequenceSpec(9, 300, mean_lead=22.6, sd_lead=0.4),
    FailureSequenceSpec(10, 20, mean_lead=1800.0, sd_lead=600.0),
)


class LeadTimeModel:
    """Occurrence-weighted mixture over failure sequences.

    This plays two roles, matching the paper's "failure prediction &
    analysis model":

    * **generation** — each injected failure draws a sequence (by
      occurrence weight) and a lead time from it;
    * **analysis** — the C/R models query :meth:`survival` to estimate σ,
      the fraction of failures predictable early enough for live migration
      (Eq. 2), exactly as the paper derives σ from its log analysis.
    """

    def __init__(self, sequences: Sequence[FailureSequenceSpec] = PAPER_SEQUENCES) -> None:
        if not sequences:
            raise ValueError("at least one failure sequence is required")
        ids = [s.sequence_id for s in sequences]
        if len(set(ids)) != len(ids):
            raise ValueError("sequence ids must be unique")
        self.sequences: Tuple[FailureSequenceSpec, ...] = tuple(sequences)
        counts = np.array([s.occurrences for s in self.sequences], dtype=float)
        self._weights = counts / counts.sum()
        self._by_id: Dict[int, FailureSequenceSpec] = {s.sequence_id: s for s in self.sequences}

    @property
    def weights(self) -> np.ndarray:
        """Mixture weights (occurrence-normalized), aligned with sequences."""
        return self._weights.copy()

    def sequence(self, sequence_id: int) -> FailureSequenceSpec:
        """Look up a sequence spec by id."""
        return self._by_id[sequence_id]

    # -- generation ----------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> Tuple[int, float]:
        """Draw one (sequence_id, lead_time_seconds) pair."""
        idx = rng.choice(len(self.sequences), p=self._weights)
        seq = self.sequences[idx]
        return seq.sequence_id, float(seq.sample(rng))

    def sample_many(self, rng: np.random.Generator, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized draw of *n* (sequence_id, lead_time) pairs."""
        idx = rng.choice(len(self.sequences), size=n, p=self._weights)
        leads = np.empty(n, dtype=float)
        for i, seq in enumerate(self.sequences):
            mask = idx == i
            if mask.any():
                leads[mask] = seq.sample(rng, int(mask.sum()))
        ids = np.array([self.sequences[i].sequence_id for i in idx], dtype=int)
        return ids, leads

    # -- analysis --------------------------------------------------------------
    def survival(self, t: float | np.ndarray) -> float | np.ndarray:
        """Marginal P(lead > t) over the mixture (seconds)."""
        t_arr = np.asarray(t, dtype=float)
        s = np.zeros_like(t_arr, dtype=float)
        for w, seq in zip(self._weights, self.sequences):
            s = s + w * np.asarray(seq.survival(t_arr))
        return float(s) if np.isscalar(t) else s

    def mean_lead(self) -> float:
        """Mean lead time of the mixture (seconds)."""
        return float(sum(w * seq.mean_lead for w, seq in zip(self._weights, self.sequences)))

    def boxplot_stats(self) -> Dict[int, Dict[str, float]]:
        """Per-sequence five-number summaries + mean (Fig 2a's boxes).

        Returns ``{sequence_id: {mean, q1, median, q3, lo_whisker,
        hi_whisker, occurrences}}`` with whiskers at Q1−1.5·IQR / Q3+1.5·IQR
        clamped to the distribution support.
        """
        stats: Dict[int, Dict[str, float]] = {}
        for seq in self.sequences:
            q1, med, q3 = (float(seq.quantile(q)) for q in (0.25, 0.5, 0.75))
            iqr = q3 - q1
            stats[seq.sequence_id] = {
                "mean": seq.mean_lead,
                "q1": q1,
                "median": med,
                "q3": q3,
                "lo_whisker": max(q1 - 1.5 * iqr, 0.0),
                "hi_whisker": q3 + 1.5 * iqr,
                "occurrences": float(seq.occurrences),
            }
        return stats


#: The calibrated Fig 2a model used by all experiments.
PAPER_LEAD_TIME_MODEL = LeadTimeModel(PAPER_SEQUENCES)


class UniformLeadTimeModel:
    """Uniformly distributed lead times (the paper's Eq. 6 assumption).

    Provides the same duck-typed interface as :class:`LeadTimeModel`
    (``sample`` / ``sample_many`` / ``survival`` / ``mean_lead``), so it
    plugs directly into the injector and the C/R models.  Used by the
    Eq. (6) validation benchmark: under uniform leads and equal
    inter-node / single-node-PFS bandwidths, the fraction of failures
    p-ckpt can handle must equal β = (α−1+σ)/α.
    """

    def __init__(self, low: float = 0.0, high: float = 60.0) -> None:
        if not (0.0 <= low < high):
            raise ValueError("need 0 <= low < high")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> Tuple[int, float]:
        """Draw one (sequence_id, lead) pair; the id is always 0."""
        return 0, float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized draw of *n* pairs."""
        leads = rng.uniform(self.low, self.high, size=n)
        return np.zeros(n, dtype=int), leads

    def survival(self, t: float | np.ndarray) -> float | np.ndarray:
        """P(lead > t) for the uniform distribution."""
        t_arr = np.asarray(t, dtype=float)
        s = np.clip((self.high - t_arr) / (self.high - self.low), 0.0, 1.0)
        s = np.where(t_arr < self.low, 1.0, s)
        return float(s) if np.isscalar(t) else s

    def mean_lead(self) -> float:
        """Mean of the uniform distribution."""
        return 0.5 * (self.low + self.high)
