"""Failure/prediction event generation for the C/R simulation.

Produces a lazy, seeded stream of three event kinds:

* :class:`FailureEvent` — a real node failure (Weibull renewal arrivals,
  uniform node selection), optionally carrying a prediction whose lead
  time comes from the Desh-style :class:`~repro.failures.leadtime.LeadTimeModel`;
* the implied *prediction notification* ``lead`` seconds earlier;
* :class:`FalseAlarmEvent` — predictions with no subsequent failure
  (Poisson arrivals at the rate implied by the predictor's FP fraction).

The stream is lazy because the simulation clock stretches as overheads
accrue — we cannot pre-generate a fixed horizon of failures without either
wasting samples or running out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .leadtime import LeadTimeModel, PAPER_LEAD_TIME_MODEL
from .predictor import DEFAULT_PREDICTOR, PredictorSpec
from .weibull import SECONDS_PER_HOUR, WeibullParams

__all__ = ["FailureEvent", "FalseAlarmEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """One real failure hitting the application.

    Attributes
    ----------
    time:
        Absolute simulation time of the failure (seconds).
    node:
        Index of the failing node within the application (0..c−1).
    sequence_id:
        Failure chain that produced it (None if unpredicted — the chain
        was not recognized, so no lead time is observable).
    predicted:
        Whether the predictor caught it.
    lead:
        Effective (scaled) lead time; 0 when unpredicted.
    provenance:
        Causal id assigned by the injector (monotonic across the mixed
        failure/false-alarm stream of one injector).  Every trace record
        a simulation emits *because of* this event carries the same id in
        its detail dict under ``"prov"`` — see ``repro.obs.timeline``.
        ``-1`` means "not injector-assigned" (hand-built events in tests).
    """

    time: float
    node: int
    sequence_id: Optional[int]
    predicted: bool
    lead: float
    provenance: int = -1

    @property
    def prediction_time(self) -> float:
        """When the prediction notification fires (= time − lead)."""
        return self.time - self.lead


@dataclass(frozen=True)
class FalseAlarmEvent:
    """A prediction that no failure follows.

    Attributes
    ----------
    prediction_time:
        When the (false) prediction notification fires.
    node:
        Node it implicates.
    claimed_lead:
        Lead time the predictor claims; drives the proactive-action choice
        just like a true prediction's lead.
    provenance:
        Causal id assigned by the injector (same counter as
        :attr:`FailureEvent.provenance`; ``-1`` = not injector-assigned).
    """

    prediction_time: float
    node: int
    claimed_lead: float
    provenance: int = -1


class FailureInjector:
    """Seeded lazy generator of failures and false alarms for one job.

    Parameters
    ----------
    weibull:
        System-level Weibull parameters (Table III); scaled internally to
        the application's node count.
    app_nodes:
        Number of nodes the application occupies.
    lead_model:
        Lead-time mixture used for both true predictions and false alarms.
    predictor:
        Predictor statistics (recall, FP rate, lead scaling).
    rng:
        Dedicated generator; the injector owns its stream.
    """

    def __init__(
        self,
        weibull: WeibullParams,
        app_nodes: int,
        lead_model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
        predictor: PredictorSpec = DEFAULT_PREDICTOR,
        rng: np.random.Generator | None = None,
    ) -> None:
        if app_nodes < 1:
            raise ValueError("app_nodes must be >= 1")
        self.weibull_app = weibull.scaled_to(app_nodes)
        self.app_nodes = int(app_nodes)
        self.lead_model = lead_model
        self.predictor = predictor
        base = rng if rng is not None else np.random.default_rng()
        # Independent child streams so failure arrival times are common
        # random numbers across C/R models: whether a model consumes
        # prediction or false-alarm draws cannot perturb the failures.
        self._rng_failures, self._rng_predict, self._rng_alarms = base.spawn(3)
        self._last_failure_time = 0.0
        self._last_alarm_time = 0.0
        # Monotonic causal-id counter shared by both event streams.  Pure
        # bookkeeping — consumes no RNG draws, so adding provenance ids
        # cannot perturb the common-random-numbers contract above.
        self._next_provenance = 0

    # -- rates -----------------------------------------------------------
    @property
    def app_failure_rate(self) -> float:
        """Mean failures per second for this job."""
        return 1.0 / (self.weibull_app.mtbf_hours * SECONDS_PER_HOUR)

    @property
    def false_alarm_rate(self) -> float:
        """False alarms per second implied by the predictor's FP fraction."""
        return self.predictor.false_alarm_rate(
            self.predictor.recall * self.app_failure_rate
        )

    # -- event streams -------------------------------------------------------
    def next_failure(self) -> FailureEvent:
        """Sample the next failure after the previous one (renewal)."""
        gap = self.weibull_app.sample_interarrival_seconds(self._rng_failures)
        t = self._last_failure_time + gap
        self._last_failure_time = t
        node = int(self._rng_failures.integers(0, self.app_nodes))
        prov = self._next_provenance
        self._next_provenance += 1
        if self.predictor.predicts(self._rng_predict):
            seq_id, raw_lead = self.lead_model.sample(self._rng_predict)
            lead = self.predictor.effective_lead(raw_lead)
            # The prediction cannot precede the previous failure's time
            # (the chain starts after the machine is back in service).
            lead = min(lead, gap)
            return FailureEvent(t, node, seq_id, True, lead, provenance=prov)
        return FailureEvent(t, node, None, False, 0.0, provenance=prov)

    def next_false_alarm(self) -> Optional[FalseAlarmEvent]:
        """Sample the next false alarm, or None if FP rate is zero."""
        rate = self.false_alarm_rate
        if rate <= 0.0:
            return None
        gap = float(self._rng_alarms.exponential(1.0 / rate))
        t = self._last_alarm_time + gap
        self._last_alarm_time = t
        node = int(self._rng_alarms.integers(0, self.app_nodes))
        _, raw_lead = self.lead_model.sample(self._rng_alarms)
        prov = self._next_provenance
        self._next_provenance += 1
        return FalseAlarmEvent(
            t, node, self.predictor.effective_lead(raw_lead), provenance=prov
        )

    # -- analysis shortcuts -----------------------------------------------------
    def predictable_fraction(self, threshold_lead: float) -> float:
        """σ-style estimate: P(failure predicted AND scaled lead ≥ θ).

        This is what the C/R models' "failure analysis model" computes to
        plug into Eq. (2).
        """
        if threshold_lead < 0:
            raise ValueError("threshold_lead must be non-negative")
        if threshold_lead == 0.0:
            return self.predictor.recall
        return float(
            self.predictor.recall
            * self.lead_model.survival(threshold_lead / self.predictor.lead_scale)
        )
