"""Desh-style failure-chain mining over synthetic system logs.

Desh [7] characterizes failures by recurring *chains* of log phrases; the
time from a chain's first phrase to its terminal (fatal) phrase is the
prediction **lead time**.  The paper consumes only the resulting lead-time
distribution, but to exercise the full pipeline we also implement:

1. :func:`synthesize_log` — generate a stream of timestamped log records
   for a cluster, mixing benign noise with embedded failure chains whose
   first-to-last phrase gap is drawn from a
   :class:`~repro.failures.leadtime.LeadTimeModel`;
2. :func:`mine_chains` — recover the chains per node (Desh's extraction
   step) and measure their lead times;
3. :func:`fit_lead_time_model` — re-estimate per-sequence statistics from
   mined chains, closing the loop (tests assert the round trip recovers
   the generating model).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .leadtime import FailureSequenceSpec, LeadTimeModel, PAPER_LEAD_TIME_MODEL

__all__ = [
    "LogRecord",
    "MinedChain",
    "chain_phrases",
    "synthesize_log",
    "mine_chains",
    "fit_lead_time_model",
]

#: Benign phrases injected as background noise between chains.
_NOISE_PHRASES: Tuple[str, ...] = (
    "job_started",
    "job_completed",
    "lustre_ping_ok",
    "ib_port_counter_rollover",
    "ecc_scrub_pass",
    "power_cap_adjusted",
    "fan_speed_changed",
)

#: Number of phrases making up every failure chain (first .. fatal).
CHAIN_LENGTH = 4


@dataclass(frozen=True)
class LogRecord:
    """One log line: when, where, what."""

    time: float
    node: int
    phrase: str


@dataclass(frozen=True)
class MinedChain:
    """A recovered failure chain.

    Attributes
    ----------
    sequence_id:
        Which chain vocabulary matched.
    node:
        Node the chain occurred on.
    start_time / end_time:
        Timestamps of the first and fatal phrases.
    """

    sequence_id: int
    node: int
    start_time: float
    end_time: float

    @property
    def lead_time(self) -> float:
        """Observed lead time (first phrase → failure)."""
        return self.end_time - self.start_time


def chain_phrases(sequence_id: int) -> Tuple[str, ...]:
    """The phrase vocabulary of a failure sequence.

    Deterministic per id so synthesis and mining agree without shared
    state; the final phrase is the fatal one.
    """
    base = f"seq{sequence_id}"
    return (
        f"{base}_warn_sensor",
        f"{base}_err_correctable",
        f"{base}_err_uncorrectable",
        f"{base}_fatal",
    )


def synthesize_log(
    rng: np.random.Generator,
    n_failures: int,
    nodes: int = 64,
    model: LeadTimeModel = PAPER_LEAD_TIME_MODEL,
    noise_per_failure: float = 20.0,
    horizon: float | None = None,
) -> List[LogRecord]:
    """Generate a synthetic cluster log containing *n_failures* chains.

    Chain start times are uniform over the horizon; the gap between a
    chain's first and fatal phrase is the sampled lead time, with the two
    intermediate phrases placed at random positions inside the gap.

    Returns records sorted by time (as a real log would be).
    """
    if n_failures < 0:
        raise ValueError("n_failures must be non-negative")
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if horizon is None:
        # Space chains out so overlap on a single node is rare.
        horizon = max(3600.0, n_failures * 600.0)

    records: List[LogRecord] = []
    seq_ids, leads = model.sample_many(rng, n_failures) if n_failures else (
        np.array([], dtype=int), np.array([]))
    starts = rng.uniform(0.0, horizon, size=n_failures)
    chain_nodes = rng.integers(0, nodes, size=n_failures)

    for sid, lead, start, node in zip(seq_ids, leads, starts, chain_nodes):
        phrases = chain_phrases(int(sid))
        inner = np.sort(rng.uniform(0.0, lead, size=CHAIN_LENGTH - 2))
        times = [start, *(start + inner), start + lead]
        for t, phrase in zip(times, phrases):
            records.append(LogRecord(float(t), int(node), phrase))

    n_noise = rng.poisson(noise_per_failure * max(n_failures, 1))
    noise_times = rng.uniform(0.0, horizon, size=n_noise)
    noise_nodes = rng.integers(0, nodes, size=n_noise)
    noise_idx = rng.integers(0, len(_NOISE_PHRASES), size=n_noise)
    for t, node, pi in zip(noise_times, noise_nodes, noise_idx):
        records.append(LogRecord(float(t), int(node), _NOISE_PHRASES[pi]))

    records.sort(key=lambda r: r.time)
    return records


def mine_chains(records: Sequence[LogRecord]) -> List[MinedChain]:
    """Recover failure chains from a log (Desh's extraction step).

    A chain is recognized when the four phrases of some sequence vocabulary
    appear on one node in order.  Interleaved noise is ignored; interleaved
    chains of *different* sequences on the same node are disambiguated by
    the phrase vocabulary; repeated chains of the same sequence on one node
    must not overlap (true in our synthesizer's regime and asserted by
    property tests).
    """
    # progress[(node, sequence_id)] = (next_phrase_index, start_time)
    progress: Dict[Tuple[int, int], Tuple[int, float]] = {}
    mined: List[MinedChain] = []

    for rec in records:
        if not rec.phrase.startswith("seq"):
            continue
        head, _, _ = rec.phrase.partition("_")
        try:
            sid = int(head[3:])
        except ValueError:
            continue
        phrases = chain_phrases(sid)
        if rec.phrase not in phrases:
            continue
        idx = phrases.index(rec.phrase)
        key = (rec.node, sid)
        if idx == 0:
            progress[key] = (1, rec.time)
            continue
        state = progress.get(key)
        if state is None or state[0] != idx:
            # Out-of-order phrase: reset this chain's progress.
            progress.pop(key, None)
            continue
        if idx == CHAIN_LENGTH - 1:
            mined.append(MinedChain(sid, rec.node, state[1], rec.time))
            progress.pop(key, None)
        else:
            progress[key] = (idx + 1, state[1])

    return mined


def fit_lead_time_model(chains: Sequence[MinedChain],
                        min_occurrences: int = 2) -> LeadTimeModel:
    """Re-estimate a :class:`LeadTimeModel` from mined chains.

    Sequences observed fewer than *min_occurrences* times are dropped (a
    mixture component cannot be fit from one sample).
    """
    by_seq: Dict[int, List[float]] = defaultdict(list)
    for ch in chains:
        if ch.lead_time <= 0:
            continue
        by_seq[ch.sequence_id].append(ch.lead_time)

    specs: List[FailureSequenceSpec] = []
    for sid in sorted(by_seq):
        leads = np.asarray(by_seq[sid], dtype=float)
        if len(leads) < min_occurrences:
            continue
        sd = float(leads.std(ddof=1))
        specs.append(
            FailureSequenceSpec(
                sequence_id=sid,
                occurrences=len(leads),
                mean_lead=float(leads.mean()),
                sd_lead=max(sd, 1e-6 * float(leads.mean())),
            )
        )
    if not specs:
        raise ValueError("no sequence occurred often enough to fit")
    return LeadTimeModel(specs)
