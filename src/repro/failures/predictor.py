"""Online failure predictor model (Aarohi-like, paper Sec. II).

Each node runs a lightweight predictor that watches the log stream and
raises a prediction *lead time* seconds before a failure.  We model its
statistical behaviour, not its internals:

* **recall** — fraction of real failures that are predicted at all
  (1 − false-negative rate).  Desh-class predictors achieve ≈85%, which is
  what caps every FT ratio in Tables II/IV near 0.83–0.88.
* **false-positive rate** — fraction of emitted predictions that are false
  alarms (paper holds this at 18% for Observation 9).  False alarms still
  trigger proactive actions and hence cost real overhead.
* **detection latency** — Aarohi classifies within 0.31 ms; the paper
  ignores it and so do we by default, but it is modeled for completeness.
* **lead-time scale** — the variability knob of Figs 4/7/8: scale 1.5
  means "failures are predicted 1.5× earlier".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["PredictorSpec", "DEFAULT_PREDICTOR"]


@dataclass(frozen=True)
class PredictorSpec:
    """Statistical model of the per-node failure predictor.

    Attributes
    ----------
    recall:
        P(a real failure is predicted); 1 − FN rate.
    false_positive_rate:
        Fraction of all emitted predictions that are false alarms.
    detection_latency:
        Seconds between chain onset and the prediction being available
        (subtracted from the usable lead time).
    lead_scale:
        Multiplier on every lead time: 1.0 = reference, 1.5 = "+50%",
        0.5 = "−50%" in the paper's variability experiments.
    """

    recall: float = 0.85
    false_positive_rate: float = 0.18
    detection_latency: float = 0.31e-3
    lead_scale: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.recall <= 1.0):
            raise ValueError("recall must be in [0, 1]")
        if not (0.0 <= self.false_positive_rate < 1.0):
            raise ValueError("false_positive_rate must be in [0, 1)")
        if self.detection_latency < 0:
            raise ValueError("detection_latency must be non-negative")
        if self.lead_scale <= 0:
            raise ValueError("lead_scale must be positive")

    @property
    def false_negative_rate(self) -> float:
        """FN rate = 1 − recall (the Observation 9 sweep variable)."""
        return 1.0 - self.recall

    def with_lead_change(self, percent_change: float) -> "PredictorSpec":
        """Copy with lead times changed by *percent_change* (e.g. −50)."""
        scale = 1.0 + percent_change / 100.0
        if scale <= 0:
            raise ValueError("lead-time change must keep scale positive")
        return replace(self, lead_scale=scale)

    def with_false_negative_rate(self, fn_rate: float) -> "PredictorSpec":
        """Copy with a different FN rate (FP held constant, per Obs 9)."""
        return replace(self, recall=1.0 - fn_rate)

    # -- behaviour ---------------------------------------------------------
    def predicts(self, rng: np.random.Generator) -> bool:
        """Whether one particular real failure gets predicted."""
        return bool(rng.random() < self.recall)

    def effective_lead(self, raw_lead: float) -> float:
        """Usable lead time after scaling and detection latency."""
        return max(self.lead_scale * raw_lead - self.detection_latency, 0.0)

    def false_alarm_rate(self, true_prediction_rate: float) -> float:
        """False alarms per second, given the rate of true predictions.

        Chosen so false alarms form the configured fraction of all
        predictions: ``fp / (tp + fp) = false_positive_rate``.
        """
        if true_prediction_rate < 0:
            raise ValueError("true_prediction_rate must be non-negative")
        p = self.false_positive_rate
        if p == 0.0:
            return 0.0
        return true_prediction_rate * p / (1.0 - p)


#: The reference predictor configuration (recall 85%, FP 18%).
DEFAULT_PREDICTOR = PredictorSpec()
