"""Weibull failure-arrival models (paper Table III).

Failure inter-arrival times on HPC systems follow Weibull distributions
with shape < 1 (decreasing hazard — failures cluster).  Table III gives
the fitted parameters for three real systems; the paper applies each of
them to the Summit-like platform to test robustness (Observation 7).

Scaling to an application's node count
--------------------------------------
The fitted distribution describes the *whole reference system* (``N``
nodes).  An application occupies ``c`` nodes, so its failure process is the
system process thinned/accelerated by ``c / N``.  For a Weibull renewal
process, scaling event *rate* by ``m`` is achieved by scaling the scale
parameter by ``1/m`` (shape is preserved) — the standard treatment in the
C/R literature, and the reason the paper can apply a 164-node system's
distribution to a 2272-node job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "WeibullParams",
    "TITAN_WEIBULL",
    "LANL_SYSTEM8_WEIBULL",
    "LANL_SYSTEM18_WEIBULL",
    "FAILURE_DISTRIBUTIONS",
]

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class WeibullParams:
    """A system-wide Weibull failure-arrival distribution.

    Attributes
    ----------
    name:
        System identifier (used in reports).
    shape:
        Weibull shape parameter *k* (< 1 on all three reference systems).
    scale_hours:
        Weibull scale parameter λ in hours, for the whole reference system.
    system_nodes:
        Node count of the reference system the fit describes.
    """

    name: str
    shape: float
    scale_hours: float
    system_nodes: int

    def __post_init__(self) -> None:
        if self.shape <= 0:
            raise ValueError("Weibull shape must be positive")
        if self.scale_hours <= 0:
            raise ValueError("Weibull scale must be positive")
        if self.system_nodes < 1:
            raise ValueError("system_nodes must be >= 1")

    # -- moments -----------------------------------------------------------
    @property
    def mtbf_hours(self) -> float:
        """Mean time between failures of the reference system (hours)."""
        return self.scale_hours * math.gamma(1.0 + 1.0 / self.shape)

    @property
    def per_node_mtbf_hours(self) -> float:
        """Mean time between failures of a single node (hours)."""
        return self.mtbf_hours * self.system_nodes

    def per_node_rate(self) -> float:
        """Per-node failure rate λ (failures/second) — the λ of Eq. (1)."""
        return 1.0 / (self.per_node_mtbf_hours * SECONDS_PER_HOUR)

    # -- scaling -----------------------------------------------------------
    def scaled_to(self, app_nodes: int) -> "WeibullParams":
        """Distribution of failure arrivals hitting an *app_nodes* job.

        Rate multiplies by ``app_nodes / system_nodes``; shape preserved.
        """
        if app_nodes < 1:
            raise ValueError("app_nodes must be >= 1")
        factor = self.system_nodes / app_nodes
        return replace(
            self,
            name=f"{self.name}[c={app_nodes}]",
            scale_hours=self.scale_hours * factor,
            system_nodes=app_nodes,
        )

    def app_mtbf_hours(self, app_nodes: int) -> float:
        """MTBF experienced by a job running on *app_nodes* nodes."""
        return self.scaled_to(app_nodes).mtbf_hours

    # -- sampling ----------------------------------------------------------
    def sample_interarrivals_hours(
        self, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """Draw *n* i.i.d. inter-arrival times (hours) for the system."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return self.scale_hours * rng.weibull(self.shape, size=n)

    def sample_interarrival_seconds(self, rng: np.random.Generator) -> float:
        """Draw one inter-arrival time in seconds (simulation clock unit)."""
        return float(self.scale_hours * rng.weibull(self.shape) * SECONDS_PER_HOUR)

    def survival_hours(self, t_hours: float | np.ndarray) -> float | np.ndarray:
        """P(inter-arrival > t) for t in hours."""
        t = np.asarray(t_hours, dtype=float)
        s = np.exp(-((np.maximum(t, 0.0) / self.scale_hours) ** self.shape))
        return float(s) if np.isscalar(t_hours) else s


#: OLCF Titan (18 868 nodes) — the distribution assumed for Summit (Fig 6a).
TITAN_WEIBULL = WeibullParams("titan", shape=0.6885, scale_hours=5.4527, system_nodes=18868)

#: LANL System 8 (164 nodes) — Fig 6 robustness study.
LANL_SYSTEM8_WEIBULL = WeibullParams(
    "lanl-system8", shape=0.7111, scale_hours=67.375, system_nodes=164
)

#: LANL System 18 (1024 nodes) — Fig 6b.
LANL_SYSTEM18_WEIBULL = WeibullParams(
    "lanl-system18", shape=0.8170, scale_hours=6.6293, system_nodes=1024
)

#: All Table III distributions by name.
FAILURE_DISTRIBUTIONS = {
    d.name: d for d in (TITAN_WEIBULL, LANL_SYSTEM8_WEIBULL, LANL_SYSTEM18_WEIBULL)
}
