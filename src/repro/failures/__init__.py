"""Failure modeling: Weibull arrivals, Desh-style lead times, prediction.

* :mod:`~repro.failures.weibull` — Table III inter-arrival distributions
  and their scaling to application node counts;
* :mod:`~repro.failures.leadtime` — the ten-sequence lead-time mixture
  calibrated to Fig 2a / Tables II & IV;
* :mod:`~repro.failures.chains` — the full Desh pipeline on synthetic
  logs (synthesize → mine → refit);
* :mod:`~repro.failures.predictor` — recall / false-positive / lead-scale
  statistics of the Aarohi-like online predictor;
* :mod:`~repro.failures.injector` — the lazy seeded event stream the C/R
  simulation consumes.
"""

from .chains import (
    LogRecord,
    MinedChain,
    chain_phrases,
    fit_lead_time_model,
    mine_chains,
    synthesize_log,
)
from .injector import FailureEvent, FailureInjector, FalseAlarmEvent
from .leadtime import (
    PAPER_LEAD_TIME_MODEL,
    PAPER_SEQUENCES,
    FailureSequenceSpec,
    LeadTimeModel,
    UniformLeadTimeModel,
)
from .predictor import DEFAULT_PREDICTOR, PredictorSpec
from .weibull import (
    FAILURE_DISTRIBUTIONS,
    LANL_SYSTEM8_WEIBULL,
    LANL_SYSTEM18_WEIBULL,
    SECONDS_PER_HOUR,
    TITAN_WEIBULL,
    WeibullParams,
)

__all__ = [
    "WeibullParams",
    "TITAN_WEIBULL",
    "LANL_SYSTEM8_WEIBULL",
    "LANL_SYSTEM18_WEIBULL",
    "FAILURE_DISTRIBUTIONS",
    "SECONDS_PER_HOUR",
    "FailureSequenceSpec",
    "LeadTimeModel",
    "PAPER_SEQUENCES",
    "PAPER_LEAD_TIME_MODEL",
    "UniformLeadTimeModel",
    "PredictorSpec",
    "DEFAULT_PREDICTOR",
    "FailureEvent",
    "FalseAlarmEvent",
    "FailureInjector",
    "LogRecord",
    "MinedChain",
    "chain_phrases",
    "synthesize_log",
    "mine_chains",
    "fit_lead_time_model",
]
