"""Kernel benchmark harness: the repo's tracked perf trajectory.

The DES event loop in :mod:`repro.des` is the substrate every result in
this reproduction rests on, so its speed is *measured and recorded*, not
assumed.  This module defines

* a fixed set of **kernel microbenchmarks** — pure :mod:`repro.des`
  workloads (timeout chains, event ping-pong, resource contention, store
  traffic, condition fan-in) that isolate the hot paths one at a time;
* two **end-to-end simulation benchmarks** — single fixed-seed
  :class:`~repro.models.base.CRSimulation` replications whose
  ``wall_per_sim_second`` (from :meth:`Environment.kernel_stats`) is the
  figure of merit the ROADMAP tracks;
* a **schema-versioned result writer** producing ``BENCH_<git-sha>.json``
  files that successive PRs compare against each other (see
  ``docs/PERFORMANCE.md`` for the workflow and
  ``tools/check_bench_schema.py`` for the sync check).

Wall-clock numbers are measurements of the host, not of the simulation:
they never enter the deterministic metrics registry and two machines will
disagree.  Comparisons are only meaningful between files produced on the
same machine — which is exactly the regression-checking workflow: run
``pckpt bench`` before and after a change, then ``pckpt bench --baseline
BENCH_<old-sha>.json`` to print the speedups.

Every benchmark is deterministic in its *event schedule* (fixed seeds,
fixed iteration counts), so ``events_processed`` acts as a cross-check
that two compared runs executed the same workload.
"""

from __future__ import annotations

import json
import platform as _platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .des import Environment, PriorityItem, PriorityStore, Resource, Store

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchResult",
    "KERNEL_BENCHMARKS",
    "SIM_BENCHMARKS",
    "run_benchmark",
    "profile_benchmark",
    "run_suite",
    "build_payload",
    "validate_payload",
    "write_payload",
    "bench_filename",
    "compare_payloads",
    "kernel_geomean",
    "format_payload",
    "format_comparison",
    "git_sha",
]

#: Version of the ``BENCH_*.json`` schema.  Bump when the payload shape
#: changes; ``tools/check_bench_schema.py`` keeps code, docs, and any
#: committed files agreeing on this number.
BENCH_SCHEMA_VERSION = 1

#: Marker distinguishing bench payloads from other JSON artifacts.
PAYLOAD_KIND = "pckpt-bench"

#: Keys every per-benchmark entry must carry (enforced by
#: :func:`validate_payload` and the schema tool).
ENTRY_KEYS = (
    "events",
    "wall_seconds",
    "events_per_sec",
    "sim_seconds",
    "wall_per_sim_second",
)


# ---------------------------------------------------------------------------
# kernel microbenchmark workloads
# ---------------------------------------------------------------------------
# Each builder returns a ready-to-run Environment; the harness times
# env.run() to exhaustion and reads the kernel self-profile.  Iteration
# counts are scaled by the harness (full vs --quick), so builders take a
# single size parameter n.


def _timeout_chain(n: int) -> Environment:
    """One process yielding *n* sequential timeouts.

    The purest hot-path probe: every event is a Timeout created, scheduled,
    popped, and dispatched straight back into the same generator.
    """
    env = Environment()

    def proc(env: Environment):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc(env))
    return env


def _parallel_timers(n: int) -> Environment:
    """100 interleaved processes sharing the heap (deep-queue dispatch)."""
    env = Environment()
    procs = 100
    each = max(n // procs, 1)

    def proc(env: Environment, offset: float):
        for _ in range(each):
            yield env.timeout(1.0 + offset)

    for i in range(procs):
        env.process(proc(env, i / procs))
    return env


def _ping_pong(n: int) -> Environment:
    """Two processes signalling each other through bare events.

    Exercises Event.succeed, callback subscription, and the processed-event
    fast path in Process._resume (no heap time advance).  The workload is
    one long same-time cascade, so it opts into the calendar queue
    (``delay_grid``) and runs on the batched bucket-drain dispatch loop.
    """
    env = Environment(delay_grid=1.0)
    box: List[Any] = [env.event(), env.event()]

    def player(env: Environment, me: int):
        for _ in range(n // 2):
            yield box[me]
            box[me] = env.event()
            box[1 - me].succeed()

    env.process(player(env, 0))
    env.process(player(env, 1))
    box[0].succeed()
    return env


def _resource_cycle(n: int) -> Environment:
    """Ten processes contending for a two-slot Resource.

    Exercises request/grant/release bookkeeping and the FIFO wait queue.
    """
    env = Environment()
    res = Resource(env, capacity=2)
    procs = 10
    each = max(n // procs, 1)

    def worker(env: Environment):
        for _ in range(each):
            with res.request() as req:
                yield req
                yield env.timeout(1.0)

    for _ in range(procs):
        env.process(worker(env))
    return env


def _store_traffic(n: int) -> Environment:
    """A producer/consumer pair through a priority store.

    Exercises the put/get dispatcher and the priority-ordered retrieval
    path (the node-local queue primitive of the p-ckpt protocol).  All
    traffic happens at t=0, so the builder opts into the calendar queue
    and the whole run is one batched bucket drain.
    """
    env = Environment(delay_grid=1.0)
    store = PriorityStore(env)

    def producer(env: Environment):
        for i in range(n // 2):
            yield store.put(PriorityItem(float(i % 17), i))

    def consumer(env: Environment):
        for _ in range(n // 2):
            yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    return env


def _condition_fanin(n: int) -> Environment:
    """Repeated AllOf/AnyOf over fresh timeout fan-ins.

    Exercises condition subscription, eager callback pruning, and
    ConditionValue assembly.
    """
    env = Environment()
    rounds = max(n // 12, 1)

    def proc(env: Environment):
        for i in range(rounds):
            ts = [env.timeout(1.0 + j * 0.25) for j in range(5)]
            if i % 2:
                yield env.all_of(ts)
            else:
                yield env.any_of(ts)
                yield env.all_of(ts)  # drain the stragglers deterministically

    env.process(proc(env))
    return env


def _store_backlog(n: int) -> Environment:
    """Deep-occupancy priority store: fill-then-drain cycles.

    The node-local priority queue under sustained load — hundreds of
    prioritized entries resident while puts and gets keep arriving.
    Exercises ordered retrieval at depth, where maintaining the
    retrieval order costs O(log n) per operation in the current kernel
    (an earlier revision rebuilt the sorted view on every put/get,
    which makes exactly this workload quadratic).  Same-time cascade
    workload: opts into the calendar queue like ping_pong.
    """
    env = Environment(delay_grid=1.0)
    store = PriorityStore(env)
    backlog = 512
    cycles = max(n // (2 * backlog), 1)

    def proc(env: Environment):
        for c in range(cycles):
            for i in range(backlog):
                yield store.put(PriorityItem(float((i * 7919) % backlog), i))
            for _ in range(backlog):
                yield store.get()

    env.process(proc(env))
    return env


def _fifo_store(n: int) -> Environment:
    """Bounded FIFO store with backpressure (put blocks at capacity)."""
    env = Environment()
    store = Store(env, capacity=8)

    def producer(env: Environment):
        for i in range(n // 2):
            yield store.put(i)

    def consumer(env: Environment):
        for _ in range(n // 2):
            yield store.get()
            yield env.timeout(0.5)

    env.process(producer(env))
    env.process(consumer(env))
    return env


@dataclass(frozen=True)
class _KernelBench:
    """One kernel microbenchmark: a builder plus its workload size."""

    name: str
    build: Callable[[int], Environment]
    size: int
    quick_size: int


#: The fixed kernel microbenchmark set, in reporting order.  Sizes are
#: chosen so each full run takes a fraction of a second on a laptop.
KERNEL_BENCHMARKS: Tuple[_KernelBench, ...] = (
    _KernelBench("kernel.timeout_chain", _timeout_chain, 200_000, 20_000),
    _KernelBench("kernel.parallel_timers", _parallel_timers, 200_000, 20_000),
    _KernelBench("kernel.ping_pong", _ping_pong, 200_000, 20_000),
    _KernelBench("kernel.resource_cycle", _resource_cycle, 100_000, 10_000),
    _KernelBench("kernel.store_traffic", _store_traffic, 100_000, 10_000),
    _KernelBench("kernel.fifo_store", _fifo_store, 100_000, 10_000),
    _KernelBench("kernel.store_backlog", _store_backlog, 60_000, 6_000),
    _KernelBench("kernel.condition_fanin", _condition_fanin, 60_000, 6_000),
)

#: End-to-end simulation benchmarks: (name, application, model, seed).
#: Small Table-I applications so one replication stays sub-second; P2
#: exercises the full protocol stack, M2 the live-migration paths.
SIM_BENCHMARKS: Tuple[Tuple[str, str, str, int], ...] = (
    ("sim.vulcan_p2", "VULCAN", "P2", 2022),
    ("sim.pop_m2", "POP", "M2", 2022),
)


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------
@dataclass
class BenchResult:
    """Measured outcome of one benchmark (best of *repeats* runs).

    ``events`` and ``sim_seconds`` are deterministic workload facts;
    ``wall_seconds`` (and the derived rates) are host measurements.
    """

    name: str
    events: int
    wall_seconds: float
    sim_seconds: float
    repeats: int

    @property
    def events_per_sec(self) -> float:
        """Dispatched events per wall second — the kernel figure of merit."""
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def wall_per_sim_second(self) -> float:
        """Wall seconds per simulated second (lower is better)."""
        return (
            self.wall_seconds / self.sim_seconds if self.sim_seconds > 0 else 0.0
        )

    def entry(self) -> Dict[str, Any]:
        """The payload dict stored under ``benchmarks[name]``."""
        return {
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "events_per_sec": self.events_per_sec,
            "sim_seconds": self.sim_seconds,
            "wall_per_sim_second": self.wall_per_sim_second,
            "repeats": self.repeats,
        }


def _run_kernel_bench(bench: _KernelBench, size: int, repeats: int) -> BenchResult:
    best: Optional[Environment] = None
    best_wall = float("inf")
    for _ in range(repeats):
        env = bench.build(size)
        start = time.perf_counter()
        env.run()
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall = wall
            best = env
    assert best is not None
    stats = best.kernel_stats()
    return BenchResult(
        name=bench.name,
        events=int(stats["events_processed"]),
        wall_seconds=best_wall,
        sim_seconds=stats["sim_seconds"],
        repeats=repeats,
    )


def _run_sim_bench(name: str, app_name: str, model: str, seed: int,
                   repeats: int) -> BenchResult:
    # Imported lazily: the kernel microbenchmarks must stay importable
    # without the full model stack (and its numpy/scipy cost).
    from .failures.weibull import TITAN_WEIBULL
    from .models.base import CRSimulation
    from .models.registry import get_model
    from .workloads.applications import APPLICATIONS
    import numpy as np

    best: Optional[Environment] = None
    best_wall = float("inf")
    for _ in range(repeats):
        child = np.random.SeedSequence(seed).spawn(1)[0]
        sim = CRSimulation(
            APPLICATIONS[app_name],
            get_model(model),
            weibull=TITAN_WEIBULL,
            rng=np.random.default_rng(child),
        )
        start = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall = wall
            best = sim.env
    assert best is not None
    stats = best.kernel_stats()
    return BenchResult(
        name=name,
        events=int(stats["events_processed"]),
        wall_seconds=best_wall,
        sim_seconds=stats["sim_seconds"],
        repeats=repeats,
    )


def run_benchmark(name: str, quick: bool = False,
                  repeats: int = 3) -> BenchResult:
    """Run a single benchmark by name (kernel or sim)."""
    for bench in KERNEL_BENCHMARKS:
        if bench.name == name:
            return _run_kernel_bench(
                bench, bench.quick_size if quick else bench.size, repeats
            )
    for sim_name, app, model, seed in SIM_BENCHMARKS:
        if sim_name == name:
            return _run_sim_bench(sim_name, app, model, seed, repeats)
    raise KeyError(f"unknown benchmark {name!r}")


def profile_benchmark(name: str, quick: bool = False):
    """Run one kernel microbenchmark with the attribution profiler on.

    Returns ``(BenchResult, KernelProfiler)`` for the single profiled
    run.  This is the instrumented counterpart of :func:`run_benchmark`
    over the same deterministic workload, so callers can check the
    profiler's accounting identities against the benchmark's kernel
    counters (``profiler.total_count() == result.events``) or A/B the
    wall cost of enabling attribution.  Only kernel benchmarks are
    profiled this way — the simulation benchmarks go through
    ``pckpt profile`` instead.
    """
    from .obs.profiler import KernelProfiler

    for bench in KERNEL_BENCHMARKS:
        if bench.name == name:
            env = bench.build(bench.quick_size if quick else bench.size)
            profiler = KernelProfiler()
            env.attach_profiler(profiler)
            start = time.perf_counter()
            env.run()
            wall = time.perf_counter() - start
            stats = env.kernel_stats()
            result = BenchResult(
                name=bench.name,
                events=int(stats["events_processed"]),
                wall_seconds=wall,
                sim_seconds=stats["sim_seconds"],
                repeats=1,
            )
            return result, profiler
    raise KeyError(f"unknown kernel benchmark {name!r}")


def run_suite(quick: bool = False, repeats: int = 3,
              kernel_only: bool = False,
              progress: Optional[Callable[[str], None]] = None
              ) -> List[BenchResult]:
    """Run the full fixed benchmark set, in reporting order.

    Parameters
    ----------
    quick:
        Use the reduced workload sizes (CI smoke scale).
    repeats:
        Timed runs per benchmark; the best (minimum wall) is kept, the
        standard guard against scheduler noise.
    kernel_only:
        Skip the end-to-end simulation benchmarks (pure-kernel mode).
    progress:
        Optional callable invoked with each benchmark name before it runs.
    """
    results: List[BenchResult] = []
    for bench in KERNEL_BENCHMARKS:
        if progress is not None:
            progress(bench.name)
        results.append(
            _run_kernel_bench(
                bench, bench.quick_size if quick else bench.size, repeats
            )
        )
    if not kernel_only:
        for name, app, model, seed in SIM_BENCHMARKS:
            if progress is not None:
                progress(name)
            results.append(_run_sim_bench(name, app, model, seed, repeats))
    return results


# ---------------------------------------------------------------------------
# payload (BENCH_<sha>.json)
# ---------------------------------------------------------------------------
def git_sha(root: Optional[Path] = None) -> Tuple[str, bool]:
    """``(short-sha, dirty)`` of the repo at *root* (defaults to the cwd).

    Falls back to ``("unknown", False)`` outside a git checkout so the
    harness stays usable from an sdist.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, check=True,
        ).stdout.strip()
        dirty = bool(subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, check=True,
        ).stdout.strip())
        return sha, dirty
    except (OSError, subprocess.CalledProcessError):
        return "unknown", False


def build_payload(results: Sequence[BenchResult], sha: str, dirty: bool,
                  quick: bool) -> Dict[str, Any]:
    """Assemble the schema-versioned payload for a suite run."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": PAYLOAD_KIND,
        "git_sha": sha,
        "dirty": dirty,
        "quick": quick,
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "benchmarks": {r.name: r.entry() for r in results},
    }


def validate_payload(payload: Dict[str, Any]) -> List[str]:
    """Return every schema violation in *payload* (empty = valid).

    Mirrored (dependency-free) by ``tools/check_bench_schema.py`` so CI
    can validate committed files without importing this package.
    """
    problems: List[str] = []
    if payload.get("kind") != PAYLOAD_KIND:
        problems.append(f"kind is {payload.get('kind')!r}, not {PAYLOAD_KIND!r}")
    if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {payload.get('schema_version')!r}, "
            f"code declares {BENCH_SCHEMA_VERSION}"
        )
    for key in ("git_sha", "python", "benchmarks"):
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        problems.append("benchmarks must be a non-empty object")
        return problems
    for name, entry in benchmarks.items():
        if not isinstance(entry, dict):
            problems.append(f"{name}: entry is not an object")
            continue
        for key in ENTRY_KEYS:
            value = entry.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{name}: {key} must be a non-negative number")
    return problems


def bench_filename(sha: str) -> str:
    """Canonical result-file name for a given (short) git sha."""
    return f"BENCH_{sha}.json"


def write_payload(payload: Dict[str, Any], directory: Path) -> Path:
    """Write the payload as ``BENCH_<sha>.json`` under *directory*."""
    problems = validate_payload(payload)
    if problems:
        raise ValueError("refusing to write invalid payload: "
                         + "; ".join(problems))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / bench_filename(payload["git_sha"])
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# comparison & reporting
# ---------------------------------------------------------------------------
def compare_payloads(old: Dict[str, Any],
                     new: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Per-benchmark speedups of *new* over *old* (shared names only).

    ``speedup`` is new events/sec over old (higher is better);
    ``wall_ratio`` is old wall over new wall for the same workload.  A
    mismatched event count is flagged (the workloads differ, so the
    numbers are not comparable).
    """
    out: Dict[str, Dict[str, float]] = {}
    old_benchmarks = old.get("benchmarks", {})
    for name, entry in new.get("benchmarks", {}).items():
        base = old_benchmarks.get(name)
        if base is None:
            continue
        comparable = (base.get("events") == entry.get("events"))
        speedup = (
            entry["events_per_sec"] / base["events_per_sec"]
            if base.get("events_per_sec") else 0.0
        )
        out[name] = {
            "old_events_per_sec": base.get("events_per_sec", 0.0),
            "new_events_per_sec": entry.get("events_per_sec", 0.0),
            "speedup": speedup,
            "comparable": float(comparable),
        }
    return out


def format_payload(payload: Dict[str, Any]) -> str:
    """Render a payload as the aligned table ``pckpt bench`` prints."""
    lines = [
        f"bench @ {payload['git_sha']}"
        + ("+dirty" if payload.get("dirty") else "")
        + (" (quick)" if payload.get("quick") else "")
        + f" py{payload.get('python')}",
        f"{'benchmark':<26s} {'events':>10s} {'wall s':>9s} "
        f"{'events/s':>12s} {'wall/sim-s':>11s}",
    ]
    for name, e in payload["benchmarks"].items():
        lines.append(
            f"{name:<26s} {e['events']:>10d} {e['wall_seconds']:>9.4f} "
            f"{e['events_per_sec']:>12.0f} {e['wall_per_sim_second']:>11.3e}"
        )
    return "\n".join(lines)


def kernel_geomean(cmp: Dict[str, Dict[str, float]]) -> Optional[float]:
    """Geometric-mean kernel speedup of a :func:`compare_payloads` result.

    Only ``kernel.*`` rows with matching workloads participate; returns
    ``None`` when the comparison has no such row (e.g. disjoint suites).
    This is the number the CI regression gate (``pckpt bench
    --fail-below``) and the committed-baseline acceptance check read.
    """
    kernel = [r["speedup"] for n, r in cmp.items()
              if n.startswith("kernel.") and r["comparable"]]
    if not kernel:
        return None
    geo = 1.0
    for s in kernel:
        geo *= s
    return geo ** (1.0 / len(kernel))


def format_comparison(cmp: Dict[str, Dict[str, float]]) -> str:
    """Render :func:`compare_payloads` output as an aligned table."""
    lines = [
        f"{'benchmark':<26s} {'old ev/s':>12s} {'new ev/s':>12s} "
        f"{'speedup':>8s}",
    ]
    for name, row in cmp.items():
        flag = "" if row["comparable"] else "  [workload changed]"
        lines.append(
            f"{name:<26s} {row['old_events_per_sec']:>12.0f} "
            f"{row['new_events_per_sec']:>12.0f} {row['speedup']:>7.2f}x{flag}"
        )
    geo = kernel_geomean(cmp)
    if geo is not None:
        lines.append(f"{'kernel geomean':<26s} {'':>12s} {'':>12s} "
                     f"{geo:>7.2f}x")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    """Standalone entry point (``python -m repro.bench``)."""
    from .cli import main as cli_main

    return cli_main(["bench", *(argv or sys.argv[1:])])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
