"""The six Table I application profiles.

Checkpoint sizes are the *Summit-scaled* values from Table I (the authors
applied Eq. 3 to the Titan-era characterizations of [15], [30]); the
rescaling function itself lives in :mod:`repro.workloads.scaling`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..iomodel.bandwidth import GiB

__all__ = ["ApplicationSpec", "APPLICATIONS", "APPLICATION_ORDER"]

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class ApplicationSpec:
    """Static characterization of one scientific application.

    Attributes
    ----------
    name:
        Application name (Table I).
    nodes:
        Number of compute nodes the job occupies.
    checkpoint_bytes_total:
        Aggregate checkpoint size across all nodes (bytes, Summit-scaled).
    compute_hours:
        Useful computation the job must complete (hours).
    """

    name: str
    nodes: int
    checkpoint_bytes_total: float
    compute_hours: float

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("application needs at least one node")
        if self.checkpoint_bytes_total < 0:
            raise ValueError("checkpoint size must be non-negative")
        if self.compute_hours <= 0:
            raise ValueError("compute time must be positive")

    @property
    def checkpoint_bytes_per_node(self) -> float:
        """Per-node checkpoint footprint (bytes)."""
        return self.checkpoint_bytes_total / self.nodes

    @property
    def compute_seconds(self) -> float:
        """Useful computation in seconds (simulation clock unit)."""
        return self.compute_hours * SECONDS_PER_HOUR

    def with_nodes(self, nodes: int) -> "ApplicationSpec":
        """Copy at a different scale, keeping per-node checkpoint size."""
        per_node = self.checkpoint_bytes_per_node
        return replace(
            self,
            name=f"{self.name}@{nodes}",
            nodes=nodes,
            checkpoint_bytes_total=per_node * nodes,
        )


def _app(name: str, nodes: int, ckpt_gb_total: float, hours: float) -> ApplicationSpec:
    return ApplicationSpec(name, nodes, ckpt_gb_total * GiB, hours)


#: Table I, in the paper's (descending size) order.
_APP_LIST: Tuple[ApplicationSpec, ...] = (
    _app("CHIMERA", 2272, 646_382.0, 360.0),
    _app("XGC", 1515, 149_625.0, 240.0),
    _app("S3D", 505, 20_199.0, 240.0),
    _app("GYRO", 126, 197.2, 120.0),
    _app("POP", 126, 102.5, 480.0),
    _app("VULCAN", 64, 3.27, 720.0),
)

#: Name → spec for the six Table I applications.
APPLICATIONS: Dict[str, ApplicationSpec] = {a.name: a for a in _APP_LIST}

#: Paper ordering (largest checkpoint first), used by reports.
APPLICATION_ORDER: Tuple[str, ...] = tuple(a.name for a in _APP_LIST)
