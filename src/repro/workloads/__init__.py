"""Workload catalogue (Table I) and cross-platform rescaling (Eq. 3)."""

from .applications import APPLICATION_ORDER, APPLICATIONS, ApplicationSpec
from .scaling import rescale_application, scale_checkpoint_size

__all__ = [
    "ApplicationSpec",
    "APPLICATIONS",
    "APPLICATION_ORDER",
    "scale_checkpoint_size",
    "rescale_application",
]
