"""Checkpoint-size rescaling between platforms (paper Eq. 3).

The Table I applications were characterized on OLCF Titan; the paper
rescales their checkpoint sizes to Summit proportionally to the change in
node count and per-node DRAM:

.. math::

    Size_{new} = \\frac{Size_{old} \\cdot \\#Nodes_{new} \\cdot DRAM_{new}}
                      {\\#Nodes_{old} \\cdot DRAM_{old}}
"""

from __future__ import annotations

from dataclasses import replace

from .applications import ApplicationSpec

__all__ = ["scale_checkpoint_size", "rescale_application"]


def scale_checkpoint_size(
    size_old: float,
    nodes_old: int,
    dram_old: float,
    nodes_new: int,
    dram_new: float,
) -> float:
    """Apply Eq. (3) to one aggregate checkpoint size.

    Parameters
    ----------
    size_old:
        Aggregate checkpoint size on the old platform (bytes).
    nodes_old, nodes_new:
        Job node counts on the old/new platforms.
    dram_old, dram_new:
        Per-node DRAM sizes on the old/new platforms (bytes).
    """
    if size_old < 0:
        raise ValueError("size must be non-negative")
    if nodes_old < 1 or nodes_new < 1:
        raise ValueError("node counts must be >= 1")
    if dram_old <= 0 or dram_new <= 0:
        raise ValueError("DRAM sizes must be positive")
    return size_old * (nodes_new * dram_new) / (nodes_old * dram_old)


def rescale_application(
    app: ApplicationSpec,
    nodes_new: int,
    dram_old: float,
    dram_new: float,
) -> ApplicationSpec:
    """Rescale an application spec to a new platform via Eq. (3).

    The per-node checkpoint size on the new platform must not exceed the
    new DRAM (the paper's standing assumption); violations raise.
    """
    new_total = scale_checkpoint_size(
        app.checkpoint_bytes_total, app.nodes, dram_old, nodes_new, dram_new
    )
    if new_total / nodes_new > dram_new:
        raise ValueError(
            f"{app.name}: rescaled per-node checkpoint "
            f"({new_total / nodes_new:.3e} B) exceeds DRAM ({dram_new:.3e} B)"
        )
    return replace(
        app,
        nodes=nodes_new,
        checkpoint_bytes_total=new_total,
    )
