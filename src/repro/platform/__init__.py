"""Platform models: compute nodes, burst buffers, interconnect, PFS.

The reference platform is :data:`~repro.platform.system.SUMMIT`, matching
the paper's Sec. II system model (512 GB DRAM, 1.6 TB BB at 2.1/5.5 GB/s,
12.5 GB/s interconnect, GPFS with application-realized saturation).
"""

from .burstbuffer import SUMMIT_BURST_BUFFER, BurstBufferSpec
from .interconnect import SUMMIT_INTERCONNECT, InterconnectSpec
from .node import SUMMIT_NODE, NodeHealth, NodeSpec, NodeState
from .pfs import PFSSpec
from .system import SUMMIT, PlatformSpec

__all__ = [
    "BurstBufferSpec",
    "SUMMIT_BURST_BUFFER",
    "InterconnectSpec",
    "SUMMIT_INTERCONNECT",
    "NodeSpec",
    "NodeState",
    "NodeHealth",
    "SUMMIT_NODE",
    "PFSSpec",
    "PlatformSpec",
    "SUMMIT",
]
