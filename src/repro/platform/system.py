"""Whole-platform specification binding nodes, network, BB and PFS.

:data:`SUMMIT` is the reference platform every experiment in the paper runs
on; alternative platforms (different BB speeds, PFS ceilings, node counts)
can be constructed for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from .interconnect import SUMMIT_INTERCONNECT, InterconnectSpec
from .node import SUMMIT_NODE, NodeSpec
from .pfs import PFSSpec

__all__ = ["PlatformSpec", "SUMMIT"]


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of the HPC platform.

    Attributes
    ----------
    name:
        Human-readable platform name.
    total_nodes:
        Nodes in the whole machine (Summit: 4608); informational — failure
        scaling uses the failure distribution's own reference node count.
    node:
        Per-node hardware spec.
    interconnect:
        Node-to-node network spec (live migration path).
    pfs:
        PFS spec; mutable backend wrapped in a frozen dataclass via field.
    restart_delay:
        Fixed job-restart latency after an unmitigated failure (allocation
        of the replacement node, relaunch, MPI wire-up), seconds.
    lm_slowdown:
        Fractional application slowdown while a live migration is in
        flight (paper cites 0.08–2.98%; we default to 1%).
    """

    name: str = "summit"
    total_nodes: int = 4608
    node: NodeSpec = SUMMIT_NODE
    interconnect: InterconnectSpec = SUMMIT_INTERCONNECT
    pfs: PFSSpec = field(default_factory=PFSSpec)
    restart_delay: float = 60.0
    lm_slowdown: float = 0.01

    def __post_init__(self) -> None:
        if self.total_nodes < 1:
            raise ValueError("platform needs at least one node")
        if self.restart_delay < 0:
            raise ValueError("restart_delay must be non-negative")
        if not (0.0 <= self.lm_slowdown < 1.0):
            raise ValueError("lm_slowdown must be in [0, 1)")

    def with_pfs(self, pfs: PFSSpec) -> "PlatformSpec":
        """Copy of this platform with a different PFS configuration."""
        return replace(self, pfs=pfs)

    def lm_transfer_bytes(self, ckpt_bytes_per_node: float, alpha: float = 3.0) -> float:
        """Data moved by one live migration (Sec. II).

        ``alpha`` × the per-node checkpoint size (the paper argues 3× for a
        three-time-level stencil), bounded above by DRAM — a process image
        cannot exceed memory.
        """
        if ckpt_bytes_per_node < 0:
            raise ValueError("checkpoint size must be non-negative")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        return min(alpha * ckpt_bytes_per_node, self.node.dram_bytes)

    def lm_transfer_time(self, ckpt_bytes_per_node: float, alpha: float = 3.0) -> float:
        """Seconds a live migration needs to move the process image."""
        return self.interconnect.transfer_time(
            self.lm_transfer_bytes(ckpt_bytes_per_node, alpha)
        )


#: The Summit-like reference platform used throughout the paper.
SUMMIT = PlatformSpec()
