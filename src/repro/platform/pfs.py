"""Parallel-file-system front end for the C/R simulation.

Wraps a :class:`~repro.iomodel.matrix.PFSModel` backend with the
checkpoint-specific queries the C/R models issue: proactive all-node
writes, single-vulnerable-node prioritized writes, asynchronous drain
bandwidth, and recovery reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..iomodel.matrix import AnalyticPFSModel, PFSModel

__all__ = ["PFSSpec"]


@dataclass
class PFSSpec:
    """PFS configuration plus its performance backend.

    Attributes
    ----------
    model:
        The performance model answering bandwidth/time queries.
    drain_fraction:
        Fraction of an application's nodes allowed to drain BB→PFS
        concurrently ("the asynchronous bleed off is optimized by limiting
        the number of nodes that transfer data to the PFS at any time").
    drain_min_nodes:
        Lower bound on concurrent drainers regardless of job size.
    """

    model: PFSModel = field(default_factory=AnalyticPFSModel)
    drain_fraction: float = 0.10
    drain_min_nodes: int = 8

    def __post_init__(self) -> None:
        if not (0.0 < self.drain_fraction <= 1.0):
            raise ValueError("drain_fraction must be in (0, 1]")
        if self.drain_min_nodes < 1:
            raise ValueError("drain_min_nodes must be >= 1")

    def drain_concurrency(self, nnodes: int) -> int:
        """Number of nodes draining concurrently for a *nnodes*-node job."""
        if nnodes < 1:
            raise ValueError("nnodes must be >= 1")
        return min(nnodes, max(self.drain_min_nodes, int(self.drain_fraction * nnodes)))

    # -- write paths -------------------------------------------------------
    def proactive_write_time(self, nnodes: int, bytes_per_node: float) -> float:
        """Blocked time for *nnodes* nodes to synchronously commit to PFS.

        Used by safeguard checkpoints (all nodes) and p-ckpt phase 2
        (healthy nodes).
        """
        if nnodes == 0 or bytes_per_node == 0:
            return 0.0
        return self.model.write_time(nnodes, bytes_per_node)

    def priority_write_time(self, bytes_per_node: float) -> float:
        """Time for a single vulnerable node's prioritized PFS commit.

        The p-ckpt protocol guarantees this node contention-free access,
        so it sees the full single-node realized bandwidth.
        """
        if bytes_per_node == 0:
            return 0.0
        return self.model.write_time(1, bytes_per_node)

    def drain_time(self, nnodes: int, bytes_per_node: float) -> float:
        """Wall time to drain one full periodic checkpoint BB→PFS.

        Drainers proceed in waves of :meth:`drain_concurrency` nodes; each
        wave writes at the aggregate bandwidth for that many nodes.
        """
        if bytes_per_node == 0 or nnodes == 0:
            return 0.0
        k = self.drain_concurrency(nnodes)
        waves, remainder = divmod(nnodes, k)
        t = waves * self.model.write_time(k, bytes_per_node)
        if remainder:
            t += self.model.write_time(remainder, bytes_per_node)
        return t

    # -- read paths ----------------------------------------------------------
    def replacement_read_time(self, bytes_per_node: float) -> float:
        """Recovery read of one node's checkpoint by the replacement node."""
        if bytes_per_node == 0:
            return 0.0
        return self.model.read_time(1, bytes_per_node)

    def full_restore_read_time(self, nnodes: int, bytes_per_node: float) -> float:
        """All-node PFS restore after a proactively mitigated failure."""
        if nnodes == 0 or bytes_per_node == 0:
            return 0.0
        return self.model.read_time(nnodes, bytes_per_node)
