"""Compute-node model: static spec and per-node dynamic simulation state.

The C/R simulation keeps the *application* as a single process (as the
paper's SimPy framework does) but tracks per-node state where the protocol
depends on it: which nodes are vulnerable, their predicted failure times,
and what checkpoint data their BB holds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..iomodel.bandwidth import GiB
from .burstbuffer import SUMMIT_BURST_BUFFER, BurstBufferSpec

__all__ = ["NodeSpec", "NodeHealth", "NodeState", "SUMMIT_NODE"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one compute node.

    Attributes
    ----------
    dram_bytes:
        DRAM capacity (bytes); bounds live-migration transfer size.
    cores:
        Physical cores; one may be set aside for the failure predictor.
    burst_buffer:
        The node-local BB device.
    """

    dram_bytes: float = 512.0 * GiB
    cores: int = 42
    burst_buffer: BurstBufferSpec = SUMMIT_BURST_BUFFER

    def __post_init__(self) -> None:
        if self.dram_bytes <= 0:
            raise ValueError("DRAM size must be positive")
        if self.cores < 1:
            raise ValueError("node needs at least one core")


class NodeHealth(enum.Enum):
    """Health states of a node in the hybrid C/R state machine (Fig 5)."""

    #: Normal periodic computation + checkpointing.
    NORMAL = "normal"
    #: A failure has been predicted for this node.
    VULNERABLE = "vulnerable"
    #: Process is being live-migrated off this node.
    MIGRATING = "migrating"
    #: Healthy node waiting for vulnerable nodes' pfs-commit (p-ckpt phase 1).
    WAITING = "waiting"
    #: The node has failed.
    FAILED = "failed"


@dataclass
class NodeState:
    """Dynamic per-node bookkeeping during a simulation run.

    Attributes
    ----------
    index:
        Node rank within the application (0..c-1).
    health:
        Current :class:`NodeHealth` state.
    predicted_failure_time:
        Absolute simulation time of the predicted failure, when vulnerable.
    prediction_time:
        When the prediction was received.
    bb_checkpoint_work:
        Application progress (useful seconds) captured by the newest
        checkpoint resident in this node's BB, or ``None`` if none.
    """

    index: int
    health: NodeHealth = NodeHealth.NORMAL
    predicted_failure_time: Optional[float] = None
    prediction_time: Optional[float] = None
    bb_checkpoint_work: Optional[float] = None

    @property
    def is_vulnerable(self) -> bool:
        """True while a failure is predicted and not yet resolved."""
        return self.health in (NodeHealth.VULNERABLE, NodeHealth.MIGRATING)

    def lead_time_remaining(self, now: float) -> float:
        """Seconds until the predicted failure; requires a live prediction."""
        if self.predicted_failure_time is None:
            raise ValueError(f"node {self.index} has no pending prediction")
        return self.predicted_failure_time - now

    def mark_vulnerable(self, now: float, failure_time: float) -> None:
        """Transition to VULNERABLE on a prediction notification."""
        self.health = NodeHealth.VULNERABLE
        self.prediction_time = now
        self.predicted_failure_time = failure_time

    def clear_prediction(self) -> None:
        """Return to NORMAL after the prediction is resolved or expires."""
        self.health = NodeHealth.NORMAL
        self.prediction_time = None
        self.predicted_failure_time = None


#: A Summit compute node.
SUMMIT_NODE = NodeSpec()
