"""Inter-node network model used by live migration.

Summit nodes connect via dual-rail EDR InfiniBand at ≈12.5 GB/s realized
per node pair (paper Sec. VII, Observation 8).  Live migration streams a
process image from the vulnerable node to its replacement over this link.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..iomodel.bandwidth import GiB

__all__ = ["InterconnectSpec", "SUMMIT_INTERCONNECT"]


@dataclass(frozen=True)
class InterconnectSpec:
    """Static description of the node-to-node network.

    Attributes
    ----------
    node_bw:
        Realized point-to-point bandwidth between two nodes (bytes/s).
    latency:
        One-way message latency (seconds); negligible for bulk transfers
        but kept for completeness (barrier cost estimates).
    """

    node_bw: float = 12.5 * GiB
    latency: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.node_bw <= 0:
            raise ValueError("interconnect bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to stream *nbytes* between a node pair."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.node_bw

    def barrier_time(self, nnodes: int) -> float:
        """Estimated global-barrier latency for *nnodes* participants.

        The paper reports ≈8 µs for 2048 Summit nodes and deliberately
        ignores it in the simulation; we model it as a log-depth tree of
        point-to-point latencies so callers *can* account for it.
        """
        if nnodes < 1:
            raise ValueError("nnodes must be >= 1")
        import math

        depth = max(1, math.ceil(math.log2(max(nnodes, 2))))
        return 2.0 * depth * self.latency


#: Summit's inter-node network.
SUMMIT_INTERCONNECT = InterconnectSpec()
