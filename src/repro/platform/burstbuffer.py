"""Node-local burst-buffer (BB) device model.

On Summit every compute node carries a 1.6 TB NVMe burst buffer with
roughly 2.1 GB/s write and 5.5 GB/s read bandwidth (paper Sec. II).  In
the C/R model the BB absorbs periodic checkpoints synchronously and serves
them back during recovery; draining BB→PFS is handled by
:mod:`repro.cr.drain`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..iomodel.bandwidth import GiB, TiB

__all__ = ["BurstBufferSpec", "SUMMIT_BURST_BUFFER"]


@dataclass(frozen=True)
class BurstBufferSpec:
    """Static description of one node's burst buffer.

    Attributes
    ----------
    capacity_bytes:
        Usable capacity (bytes).
    write_bw:
        Sequential write bandwidth (bytes/s).
    read_bw:
        Sequential read bandwidth (bytes/s).
    """

    capacity_bytes: float = 1.6 * TiB
    write_bw: float = 2.1 * GiB
    read_bw: float = 5.5 * GiB

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("BB capacity must be positive")
        if self.write_bw <= 0 or self.read_bw <= 0:
            raise ValueError("BB bandwidths must be positive")

    def write_time(self, nbytes: float) -> float:
        """Seconds to write *nbytes* to this node's BB."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.write_bw

    def read_time(self, nbytes: float) -> float:
        """Seconds to read *nbytes* back from this node's BB."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.read_bw

    def fits(self, nbytes: float, copies: int = 1) -> bool:
        """Whether *copies* checkpoint copies of *nbytes* each fit."""
        return copies * nbytes <= self.capacity_bytes


#: Summit's per-node burst buffer.
SUMMIT_BURST_BUFFER = BurstBufferSpec()
