"""Shared-pool campaign execution with dynamic scheduling and caching.

:func:`run_campaign` is the engine under every sweep driver: it takes a
flat list of cells, serves what it can from the result store, slices the
rest into replication shards, and runs **all** shards of **all** cells on
one shared :class:`~concurrent.futures.ProcessPoolExecutor` — no
per-cell pool churn, no idle cores while a small cell finishes.

Determinism is identical to the serial path by construction:

* replication *i* of a cell always runs from the same
  ``SeedSequence.spawn`` child (workers reconstruct child *i* as
  ``SeedSequence(entropy=seed, spawn_key=(i,))``, exactly what
  ``SeedSequence(seed).spawn(n)[i]`` produces);
* per-cell outputs are reassembled in replication order before
  aggregation, and aggregation is the runner's own ``_aggregate`` — so a
  campaign result is **bit-identical** to ``run_replications`` for every
  worker count, and a cached result is bit-identical to a computed one
  (the store round-trips floats exactly).

Robustness: a shard that crashes in a worker is re-run serially in the
parent, replication by replication, so completed work is never discarded
and a genuinely failing replication is reported by cell, replication
index, and seed.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.sweeps import evaluate_analytical_batch
from ..experiments.runner import SimulationResult, _aggregate, _run_once
from ..obs.context import SpanWriter, current as current_trace, \
    trace_fragment_dir
from ..obs.telemetry import TELEMETRY_FILENAME, CampaignTelemetry
from ..sched.engine import aggregate_sched, run_sched_once
from .plan import AnalyticalCellSpec, CampaignPlan, CellSpec, SchedCellSpec, WorkUnit
from .progress import CampaignProgress
from .store import ResultStore, StoredResult

__all__ = ["CampaignExecutionError", "run_campaign"]


class CampaignExecutionError(RuntimeError):
    """A replication failed even after the serial retry."""


def _spawn_child(seed: int, index: int) -> np.random.SeedSequence:
    """Child *index* of ``SeedSequence(seed)`` without spawning the rest."""
    return np.random.SeedSequence(entropy=seed, spawn_key=(index,))


def _run_one(cell, k: int):
    """Replication *k* of one cell, dispatched by cell family."""
    if isinstance(cell, SchedCellSpec):
        return run_sched_once(
            cell.workload, cell.policy, cell.platform, cell.weibull,
            cell.lead_model, cell.predictor, _spawn_child(cell.seed, k),
            drain_lanes=cell.drain_lanes,
            background_load=cell.background_load,
            collect_metrics=cell.collect_metrics,
        )
    return _run_once(
        cell.app, cell.model, cell.platform, cell.weibull,
        cell.lead_model, cell.predictor,
        _spawn_child(cell.seed, k), cell.collect_metrics,
    )


def _run_shard(cell: CellSpec, rep_start: int, rep_stop: int,
               obs: Optional[Tuple[str, str, str]] = None) -> List:
    """Worker: replications [rep_start, rep_stop) of one cell.

    Top-level for pickling.  Ships one ``CellSpec`` instead of a child
    seed per replication, so IPC cost is per-shard, not per-replication.

    *obs* is ``None`` (the zero-overhead default) or a picklable
    ``(trace_id, parent_span_id, fragment_dir)`` triple: each
    replication is then wall-clock timed and appended as one
    ``kernel.run`` span to this worker process's own fragment file
    (``worker-<pid>.jsonl``) — span ids come from :mod:`secrets`, so
    tracing consumes no simulation RNG and results stay bit-identical.
    """
    if obs is None:
        return [_run_one(cell, k) for k in range(rep_start, rep_stop)]
    trace_id, parent_id, frag_dir = obs
    pid = os.getpid()
    writer = SpanWriter(Path(frag_dir) / f"worker-{pid}.jsonl",
                        trace_id, f"worker/{pid}")
    cell_label = "/".join(str(part) for part in cell.key)
    outputs: List = []
    try:
        for k in range(rep_start, rep_stop):
            t0 = time.time()
            outputs.append(_run_one(cell, k))
            writer.span("kernel.run", t0, time.time(), parent_id=parent_id,
                        args={"cell": cell_label, "replication": k,
                              "seed": cell.seed})
    finally:
        writer.close()
    return outputs


def _rerun_serially(cell: CellSpec, unit: WorkUnit,
                    cause: BaseException) -> List:
    """Serial retry of a crashed shard, isolating the failing replication."""
    outputs = []
    for k in range(unit.rep_start, unit.rep_stop):
        try:
            outputs.append(_run_one(cell, k))
        except Exception as exc:
            raise CampaignExecutionError(
                f"cell {cell.key!r}: replication {k} "
                f"(seed={cell.seed}, spawn_key=({k},)) failed in a worker "
                f"({cause!r}) and again on serial retry"
            ) from exc
    return outputs


def _default_workers(pending_replications: int) -> int:
    """Same heuristic as ``run_replications``: serial below 8 runs."""
    if pending_replications < 8:
        return 1
    return min(os.cpu_count() or 1, pending_replications)


def run_campaign(
    cells: Sequence[CellSpec],
    store: Optional[ResultStore] = None,
    workers: Optional[int] = None,
    resume: bool = True,
    progress: Optional[CampaignProgress] = None,
    max_shard: Optional[int] = None,
) -> Dict[tuple, StoredResult]:
    """Execute a campaign; returns ``{cell.key: result}``.

    Simulated cells yield :class:`SimulationResult` aggregates;
    analytical cells (:class:`~repro.campaign.plan.AnalyticalCellSpec`)
    yield :class:`~repro.analysis.sweeps.AnalyticalResult` objects,
    evaluated in one vectorized closed-form pass with zero DES
    replications.

    Parameters
    ----------
    cells:
        Grid cells in presentation order, simulated and analytical
        freely mixed (duplicate configurations are rejected — see
        :class:`~repro.campaign.plan.CampaignPlan`).
    store:
        Result store for cache hits and persistence (``None`` = compute
        everything, persist nothing).
    workers:
        Shared-pool width; ``None`` = serial below 8 pending
        replications, else one process per core; 1 forces in-process
        execution.
    resume:
        When ``False``, ignore existing store entries (they are
        recomputed and overwritten).
    progress:
        Observer for metrics/trace/status (created internally if
        omitted; pass your own to read the counters afterwards).
    max_shard:
        Upper bound on replications per work unit.
    """
    plan = CampaignPlan(cells)
    ctx = current_trace()
    if progress is None:
        progress = CampaignProgress()
    if store is not None and progress.telemetry is None:
        # A campaign with a store streams live telemetry next to its
        # results; `pckpt top --store <dir>` tails exactly this file.
        progress.telemetry = CampaignTelemetry(
            store.root / TELEMETRY_FILENAME,
            trace_id=ctx.trace_id if ctx is not None else None,
        )

    # Active trace context + store -> span fragments for `obs stitch`.
    # `obs` ships to workers (picklable strings); the campaign span
    # itself is written at the end, parenting every kernel span.
    obs: Optional[Tuple[str, str, str]] = None
    obs_writer: Optional[SpanWriter] = None
    run_ctx = None
    t_campaign = time.time()
    if ctx is not None and store is not None:
        frag_dir = trace_fragment_dir(store.root, ctx.trace_id)
        run_ctx = ctx.child()
        obs_writer = SpanWriter(
            frag_dir / f"campaign-{os.getpid()}.jsonl",
            ctx.trace_id, f"campaign/{os.getpid()}",
        )
        obs = (ctx.trace_id, run_ctx.span_id, str(frag_dir))

    results: Dict[int, StoredResult] = {}
    pending: List[int] = []
    analytical: List[int] = []
    progress.campaign_begin(len(plan.cells), plan.total_replications)
    for i, cell in enumerate(plan.cells):
        cached = store.get(plan.keys[i]) if (store and resume) else None
        if cached is not None:
            results[i] = cached
            progress.cell_cached(cell, plan.keys[i])
        elif isinstance(cell, AnalyticalCellSpec):
            analytical.append(i)
        else:
            pending.append(i)

    # Analytical fast path: closed-form cells never reach the DES or the
    # pool — the whole batch is evaluated in one vectorized pass (per
    # model kind) and persisted like any other cell.
    if analytical:
        for i in analytical:
            progress.cell_started(plan.cells[i], i)
        for i, result in zip(
            analytical,
            evaluate_analytical_batch([plan.cells[i] for i in analytical]),
        ):
            cell = plan.cells[i]
            if store is not None:
                store.put(
                    plan.keys[i], result,
                    meta={
                        "cell": [str(part) for part in cell.key],
                        "analytical": cell.kind,
                        "replications": 0,
                    },
                )
            results[i] = result
            progress.cell_done(cell, i)

    pending_reps = sum(plan.cells[i].replications for i in pending)
    if workers is None:
        workers = _default_workers(pending_reps)
    units = plan.shards(pending, max(workers, 1), max_shard)
    progress.pool_sized(max(workers, 1), len(units))

    # Per-cell reassembly state: shard outputs by rep_start + a countdown.
    shard_outputs: Dict[int, Dict[int, List]] = {i: {} for i in pending}
    shards_left: Dict[int, int] = {i: 0 for i in pending}
    for unit in units:
        shards_left[unit.cell_index] += 1
    for i in pending:
        progress.cell_started(plan.cells[i], i)

    def finish_cell(i: int) -> None:
        cell = plan.cells[i]
        ordered = []
        for start in sorted(shard_outputs[i]):
            ordered.extend(shard_outputs[i][start])
        if isinstance(cell, SchedCellSpec):
            result = aggregate_sched(cell.policy, ordered)
            meta = {
                "cell": [str(part) for part in cell.key],
                "sched": cell.policy,
                "jobs": len(cell.workload),
                "seed": cell.seed,
                "replications": cell.replications,
            }
        else:
            result = _aggregate(cell.app, cell.model, ordered)
            meta = {
                "cell": [str(part) for part in cell.key],
                "app": cell.app.name,
                "model": cell.model.name,
                "seed": cell.seed,
                "replications": cell.replications,
            }
        if store is not None:
            store.put(plan.keys[i], result, meta=meta)
        results[i] = result
        del shard_outputs[i]
        progress.cell_done(cell, i)

    def complete(unit: WorkUnit, outputs: List, retried: bool) -> None:
        shard_outputs[unit.cell_index][unit.rep_start] = outputs
        shards_left[unit.cell_index] -= 1
        progress.shard_done(unit, retried=retried)
        if shards_left[unit.cell_index] == 0:
            finish_cell(unit.cell_index)

    if workers <= 1:
        for unit in units:
            cell = plan.cells[unit.cell_index]
            try:
                outputs = _run_shard(cell, unit.rep_start, unit.rep_stop,
                                     obs)
                retried = False
            except Exception as exc:
                progress.shard_crashed(unit, exc)
                outputs = _rerun_serially(cell, unit, exc)
                retried = True
            complete(unit, outputs, retried)
    elif units:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_shard, plan.cells[u.cell_index],
                            u.rep_start, u.rep_stop, obs): u
                for u in units
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    unit = futures[future]
                    cell = plan.cells[unit.cell_index]
                    try:
                        outputs = future.result()
                        retried = False
                    except Exception as exc:
                        progress.shard_crashed(unit, exc)
                        outputs = _rerun_serially(cell, unit, exc)
                        retried = True
                    complete(unit, outputs, retried)

    progress.campaign_end()
    if obs_writer is not None:
        obs_writer.span(
            "campaign.run", t_campaign, time.time(),
            span_id=run_ctx.span_id, parent_id=ctx.span_id,
            args={"cells": len(plan.cells),
                  "replications_total": plan.total_replications,
                  "workers": max(workers, 1), "shards": len(units)},
        )
        obs_writer.close()
    # Present results in plan order, like the serial engines always did.
    return {plan.cells[i].key: results[i] for i in range(len(plan.cells))}
