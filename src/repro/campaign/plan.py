"""Campaign planning: cells, shards, and content-addressed cache keys.

A **cell** is one Monte-Carlo grid point — the full configuration tuple
(application, model, platform, failure distribution, lead-time model,
predictor, root seed, replication count).  A **shard** is a contiguous
slice of one cell's replications, the unit of work the scheduler hands to
the shared process pool.

Cache keys are SHA-256 hashes of a canonical JSON rendering of the whole
configuration plus the store schema version, so

* the same configuration hashes identically in every process and on
  every platform (no dependence on ``PYTHONHASHSEED`` or object ids);
* changing *any* field — one predictor rate, one Weibull parameter, the
  seed, the replication count, the code schema — produces a new key;
* floats are rendered with ``float.hex()``, so keys distinguish values
  that differ in the last ulp.

``docs/CAMPAIGN.md`` documents the full key-field inventory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.sweeps import analytical_params
from ..failures.leadtime import LeadTimeModel
from ..failures.predictor import PredictorSpec
from ..failures.weibull import WeibullParams
from ..models.base import ModelConfig
from ..platform.system import PlatformSpec
from ..workloads.applications import ApplicationSpec
from .store import SCHEMA_VERSION

__all__ = [
    "AnalyticalCellSpec",
    "CellSpec",
    "SchedCellSpec",
    "WorkUnit",
    "CampaignPlan",
    "canonical_config",
    "content_key",
]


def _canonical(obj: object) -> object:
    """Render *obj* as JSON-serializable data with a stable, exact form.

    Dataclasses serialize field-by-field with their type name; floats use
    ``float.hex()`` (exact, locale-free); generic objects fall back to
    their public ``__dict__``.  Raises ``TypeError`` for anything without
    a well-defined canonical form (e.g. callables) rather than silently
    hashing an unstable ``repr``.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj).hex()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj).hex()
    if isinstance(obj, np.ndarray):
        return [_canonical(x) for x in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, object] = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = _canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, LeadTimeModel):
        # Not a dataclass; its content is fully determined by the
        # sequence mixture (weights are derived from occurrences).
        return {"__type__": "LeadTimeModel",
                "sequences": _canonical(obj.sequences)}
    if hasattr(obj, "__dict__"):
        public = {k: v for k, v in vars(obj).items() if not k.startswith("_")}
        out = {"__type__": type(obj).__name__}
        for k, v in sorted(public.items()):
            out[k] = _canonical(v)
        return out
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for cache keying"
    )


@dataclass(frozen=True, eq=False)
class CellSpec:
    """One grid cell: the full configuration of a Monte-Carlo aggregate.

    Attributes
    ----------
    key:
        The caller-facing grid key, e.g. ``("P2", "POP")`` or
        ``("M2", -50)`` — what the sweep engines use in their result
        dicts.  **Not** part of the cache key (it names the slot, not the
        computation).
    app / model / platform / weibull / lead_model / predictor:
        The simulation configuration (model must be resolved to a
        :class:`ModelConfig`, not a registry name).
    seed:
        Root seed; replication *i* runs from ``SeedSequence(seed)``'s
        *i*-th spawned child.
    replications:
        Monte-Carlo runs aggregated into this cell.
    collect_metrics:
        Attach a metrics registry to every replication.
    """

    key: tuple
    app: ApplicationSpec
    model: ModelConfig
    platform: PlatformSpec
    weibull: WeibullParams
    lead_model: LeadTimeModel
    predictor: PredictorSpec
    seed: int
    replications: int
    collect_metrics: bool = False

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError("replications must be >= 1")


@dataclass(frozen=True, eq=False)
class AnalyticalCellSpec:
    """One closed-form grid point: evaluated analytically, never simulated.

    The campaign scheduler recognizes these cells and routes them
    through :func:`repro.analysis.sweeps.evaluate_analytical_batch` —
    one vectorized pass per model kind, zero DES replications — while
    caching the outcome in the same result store as simulated cells.

    Attributes
    ----------
    key:
        Caller-facing grid key (e.g. ``("breakeven", 0.25)``); names the
        slot, not the computation, exactly like :attr:`CellSpec.key`.
    kind:
        Which closed form applies — one of
        :data:`repro.analysis.sweeps.ANALYTICAL_KINDS`.
    params:
        The closed form's inputs, normalized to floats on construction
        (the full parameter set of *kind*; anything missing or extra is
        rejected immediately rather than at evaluation time).
    """

    key: tuple
    kind: str
    params: Dict[str, float]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", analytical_params(self.kind, self.params)
        )

    @property
    def replications(self) -> int:
        """Analytical cells run zero DES replications, by definition."""
        return 0


@dataclass(frozen=True, eq=False)
class SchedCellSpec:
    """One batch-queue grid point: a workload × policy schedule.

    The campaign scheduler routes these through
    :func:`repro.sched.engine.run_sched_once` — replication *k* runs the
    whole workload once from ``SeedSequence(seed)``'s *k*-th spawned
    child — and aggregates with
    :func:`repro.sched.engine.aggregate_sched`, caching the
    :class:`~repro.sched.engine.SchedResult` in the same store as
    simulated cells.

    Attributes
    ----------
    key:
        Caller-facing grid key, e.g. ``("sched", "easy")``; names the
        slot, not the computation, exactly like :attr:`CellSpec.key`.
    workload:
        The :class:`~repro.sched.jobs.SchedJob` tuple to schedule.
    policy:
        Placement policy name (``repro.sched.jobs.POLICY_NAMES``).
    platform / weibull / lead_model / predictor:
        Machine and failure physics shared by every job.
    drain_lanes / background_load:
        Shared-storage contention parameters.
    seed / replications / collect_metrics:
        As on :class:`CellSpec`.
    """

    key: tuple
    workload: tuple
    policy: str
    platform: PlatformSpec
    weibull: WeibullParams
    lead_model: LeadTimeModel
    predictor: PredictorSpec
    seed: int
    replications: int
    drain_lanes: int = 2
    background_load: float = 0.0
    collect_metrics: bool = False

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError("replications must be >= 1")
        if not self.workload:
            raise ValueError("workload cannot be empty")


def canonical_config(
    cell: "Union[CellSpec, AnalyticalCellSpec, SchedCellSpec]",
) -> Dict[str, object]:
    """The cell's full configuration in canonical (hash-input) form.

    Analytical cells hash ``{schema_version, analytical kind, params}``
    and sched cells ``{schema_version, sched policy, workload, ...}`` —
    shapes disjoint from simulation cells and from each other, so the
    three families can never collide on a store key, and
    simulation-cell keys are exactly what they were before the other
    families existed.
    """
    if isinstance(cell, AnalyticalCellSpec):
        return {
            "schema_version": SCHEMA_VERSION,
            "analytical": cell.kind,
            "params": _canonical(cell.params),
        }
    if isinstance(cell, SchedCellSpec):
        return {
            "schema_version": SCHEMA_VERSION,
            "sched": cell.policy,
            "workload": _canonical(cell.workload),
            "platform": _canonical(cell.platform),
            "weibull": _canonical(cell.weibull),
            "lead_model": _canonical(cell.lead_model),
            "predictor": _canonical(cell.predictor),
            "drain_lanes": int(cell.drain_lanes),
            "background_load": _canonical(float(cell.background_load)),
            "seed": int(cell.seed),
            "replications": int(cell.replications),
            "collect_metrics": bool(cell.collect_metrics),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "app": _canonical(cell.app),
        "model": _canonical(cell.model),
        "platform": _canonical(cell.platform),
        "weibull": _canonical(cell.weibull),
        "lead_model": _canonical(cell.lead_model),
        "predictor": _canonical(cell.predictor),
        "seed": int(cell.seed),
        "replications": int(cell.replications),
        "collect_metrics": bool(cell.collect_metrics),
    }


def content_key(
    cell: "Union[CellSpec, AnalyticalCellSpec, SchedCellSpec]",
) -> str:
    """Stable SHA-256 content hash of the cell configuration (64 hex)."""
    blob = json.dumps(canonical_config(cell), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable slice: replications [rep_start, rep_stop) of a cell."""

    cell_index: int
    rep_start: int
    rep_stop: int

    @property
    def replications(self) -> int:
        return self.rep_stop - self.rep_start


class CampaignPlan:
    """A flattened sweep: every cell, each with its cache key.

    Parameters
    ----------
    cells:
        Grid cells in the order the caller's result dict should present
        them — simulated (:class:`CellSpec`), analytical
        (:class:`AnalyticalCellSpec`) and batch-queue
        (:class:`SchedCellSpec`) cells may be freely mixed.
        Duplicate cache keys are rejected — two cells with the same full
        configuration would race on one store entry.
    """

    def __init__(
        self, cells:
            "Sequence[Union[CellSpec, AnalyticalCellSpec, SchedCellSpec]]"
    ) -> None:
        self.cells: \
            "Tuple[Union[CellSpec, AnalyticalCellSpec, SchedCellSpec], ...]" = \
            tuple(cells)
        self.keys: Tuple[str, ...] = tuple(content_key(c) for c in self.cells)
        seen: Dict[str, int] = {}
        for i, k in enumerate(self.keys):
            if k in seen:
                raise ValueError(
                    f"duplicate cell configuration: cells {seen[k]} and {i} "
                    f"({self.cells[seen[k]].key!r} / {self.cells[i].key!r}) "
                    f"hash to the same cache key"
                )
            seen[k] = i

    @property
    def total_replications(self) -> int:
        """Replications across all cells (cache state not considered)."""
        return sum(c.replications for c in self.cells)

    def shards(self, cell_indices: Sequence[int], workers: int,
               max_shard: Optional[int] = None) -> List[WorkUnit]:
        """Slice the given cells into pool-sized work units.

        Targets ~4 shards per worker across the whole campaign so the
        shared pool stays busy near the tail without drowning in IPC;
        *max_shard* caps the shard size explicitly.  Sharding never
        crosses a cell boundary and never affects results — aggregation
        reassembles outputs in replication order.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        pending = sum(self.cells[i].replications for i in cell_indices)
        if not pending:
            return []
        target = max(1, math.ceil(pending / (workers * 4)))
        if max_shard is not None:
            target = max(1, min(target, max_shard))
        units: List[WorkUnit] = []
        for i in cell_indices:
            reps = self.cells[i].replications
            for start in range(0, reps, target):
                units.append(WorkUnit(i, start, min(start + target, reps)))
        return units
