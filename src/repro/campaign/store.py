"""Content-addressed, on-disk store for per-cell campaign results.

One entry per grid cell, keyed by the cell's configuration hash (see
:mod:`repro.campaign.plan`).  Entries hold the cell's aggregated
:class:`~repro.experiments.runner.SimulationResult` serialized to JSON.
Python's ``repr``-based float serialization round-trips exactly (shortest
round-trip representation), so a result read back from the store is
**bit-identical** to the one that was written — the property the campaign
scheduler's cache-hit path relies on.

Layout (see ``docs/CAMPAIGN.md``)::

    <root>/
      schema.json            {"schema_version": N}
      ab/<64-hex-key>.json   one cell result (2-hex fan-out directories)

Writes are atomic (temp file + ``os.replace``), so an interrupted
campaign never leaves a torn entry: a cell is either fully persisted or
absent, and resuming simply recomputes the absent ones.

Concurrency
-----------
The store is safe under concurrent writers **across processes** (the
regime ``repro.service`` runs it in: many jobs sharing one store):

* two writers racing on the same key each stage a private temp file and
  ``os.replace`` it over the entry — the last replace wins whole, and
  because results are deterministic both writers carry identical bytes;
* readers never observe a torn entry (``os.replace`` is atomic), and
  :meth:`ResultStore.get`/:meth:`ResultStore.stats` tolerate entries
  vanishing mid-scan (a concurrent ``clear``) instead of crashing;
* :meth:`ResultStore.put` re-creates its fan-out directory if a
  concurrent ``clear`` removed it between ``mkdir`` and the temp-file
  creation.

``tests/test_store_concurrency.py`` stress-tests exactly these races
with real processes.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..analysis.metrics import FTStats, OverheadBreakdown
from ..analysis.sweeps import AnalyticalResult
from ..des.metrics import MetricsRegistry
from ..experiments.runner import SimulationResult
from ..sched.engine import SchedResult

#: What a store entry can hold: a Monte-Carlo aggregate, a closed-form
#: analytical evaluation, or a batch-queue schedule aggregate (the three
#: cell families of a campaign plan).
StoredResult = Union[SimulationResult, AnalyticalResult, SchedResult]

__all__ = [
    "SCHEMA_VERSION",
    "StoreSchemaError",
    "StoredResult",
    "ResultStore",
    "result_to_dict",
    "result_from_dict",
    "status_payload",
]

#: On-disk schema version.  Bump whenever the serialized result layout,
#: the cache-key canonicalization, or the simulation outputs change
#: incompatibly.  The version is hashed into every cache key (so stale
#: entries can never be hit) *and* written to ``schema.json`` (so
#: ``tools/check_store_schema.py`` can reject a stale store outright).
SCHEMA_VERSION = 1


class StoreSchemaError(RuntimeError):
    """An on-disk store's schema version does not match the code's."""


def result_to_dict(result: StoredResult) -> Dict:
    """Serialize a result to a JSON-friendly dict.

    Analytical results carry an ``"analytical": True`` marker and sched
    results a ``"sched": True`` marker so :func:`result_from_dict` can
    reconstruct the right type; the simulation-result layout is exactly
    what it always was, so existing store entries keep their bytes (and
    their keys).
    """
    if isinstance(result, AnalyticalResult):
        return {
            "analytical": True,
            "kind": result.kind,
            "params": result.params,
            "outputs": result.outputs,
            "replications": 0,
        }
    if isinstance(result, SchedResult):
        return {
            "sched": True,
            "policy": result.policy,
            "jobs": result.jobs,
            "replications": result.replications,
            "makespan_seconds": result.makespan_seconds,
            "utilization": result.utilization,
            "wait_mean_seconds": result.wait_mean_seconds,
            "wait_p95_seconds": result.wait_p95_seconds,
            "wait_max_seconds": result.wait_max_seconds,
            "starved": result.starved,
            "ft": asdict(result.ft),
            "per_job": list(result.per_job),
        }
    return {
        "app_name": result.app_name,
        "model_name": result.model_name,
        "replications": result.replications,
        "overhead": asdict(result.overhead),
        "overhead_std": result.overhead_std,
        "makespan_seconds": result.makespan_seconds,
        "ft": asdict(result.ft),
        "oci_initial": result.oci_initial,
        "oci_final": result.oci_final,
        "metrics": result.metrics.snapshot() if result.metrics is not None else None,
    }


def result_from_dict(payload: Dict) -> StoredResult:
    """Reconstruct a result from its :func:`result_to_dict` form.

    JSON round-trips every float exactly (shortest-repr serialization),
    so the reconstructed result is bit-identical for both families.
    """
    if payload.get("analytical"):
        return AnalyticalResult(
            kind=payload["kind"],
            params=dict(payload["params"]),
            outputs=dict(payload["outputs"]),
        )
    if payload.get("sched"):
        return SchedResult(
            policy=payload["policy"],
            jobs=payload["jobs"],
            replications=payload["replications"],
            makespan_seconds=payload["makespan_seconds"],
            utilization=payload["utilization"],
            wait_mean_seconds=payload["wait_mean_seconds"],
            wait_p95_seconds=payload["wait_p95_seconds"],
            wait_max_seconds=payload["wait_max_seconds"],
            starved=payload["starved"],
            ft=FTStats(**payload["ft"]),
            per_job=tuple(dict(e) for e in payload["per_job"]),
        )
    metrics = payload.get("metrics")
    return SimulationResult(
        app_name=payload["app_name"],
        model_name=payload["model_name"],
        replications=payload["replications"],
        overhead=OverheadBreakdown(**payload["overhead"]),
        overhead_std=payload["overhead_std"],
        makespan_seconds=payload["makespan_seconds"],
        ft=FTStats(**payload["ft"]),
        oci_initial=payload["oci_initial"],
        oci_final=payload["oci_final"],
        metrics=MetricsRegistry.from_snapshot(metrics) if metrics is not None else None,
    )


class ResultStore:
    """Directory-backed map from cache key to cell result.

    Parameters
    ----------
    root:
        Store directory; created (with ``schema.json``) if missing.

    Opening an existing store whose recorded schema version differs from
    :data:`SCHEMA_VERSION` raises :class:`StoreSchemaError` — clear the
    store (``pckpt campaign clear``) or keep the old code to read it.
    """

    _SCHEMA_FILE = "schema.json"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        schema_path = self.root / self._SCHEMA_FILE
        if schema_path.exists():
            on_disk = json.loads(schema_path.read_text(encoding="utf-8"))
            found = on_disk.get("schema_version")
            if found != SCHEMA_VERSION:
                raise StoreSchemaError(
                    f"store {self.root} has schema version {found!r}, "
                    f"code expects {SCHEMA_VERSION} — clear the store or "
                    f"use a matching code version"
                )
        else:
            self._write_atomic(
                schema_path, {"schema_version": SCHEMA_VERSION}
            )

    # -- paths ---------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Entry path for *key* (2-hex fan-out keeps directories small)."""
        if len(key) < 3:
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    # -- mapping protocol ----------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> Optional[StoredResult]:
        """The stored result for *key*, or ``None`` on a cache miss.

        A concurrent ``clear`` may unlink the entry between the
        existence check and the read; that is a cache miss, not an
        error.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        return result_from_dict(payload["result"])

    def get_meta(self, key: str) -> Optional[Dict]:
        """The descriptive metadata stored alongside *key*'s result."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        return payload.get("meta", {})

    def put(self, key: str, result: StoredResult,
            meta: Optional[Dict] = None) -> Path:
        """Persist *result* under *key* atomically; returns the entry path.

        Concurrent writers of the same key are safe: each stages a
        private temp file and the last atomic replace wins whole.  A
        concurrent ``clear`` removing the fan-out directory between our
        ``mkdir`` and the temp-file creation is retried with a fresh
        ``mkdir``.
        """
        path = self.path_for(key)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "meta": meta or {},
            "result": result_to_dict(result),
        }
        for attempt in range(8):
            try:
                # mkdir(exist_ok=True) can still raise FileExistsError
                # under a concurrent rmdir: it rechecks is_dir() after
                # the failed mkdir, and the directory may be gone again
                # by then.  Both races are retryable.
                path.parent.mkdir(parents=True, exist_ok=True)
                self._write_atomic(path, payload)
                return path
            except (FileNotFoundError, FileExistsError):
                # The fan-out dir vanished under us (concurrent clear);
                # re-create it and stage again.
                if attempt == 7:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _write_atomic(path: Path, payload: Dict) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fp:
                json.dump(payload, fp, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def telemetry_path(self) -> Path:
        """Location of the live telemetry feed ``run_campaign`` streams
        next to this store's results (``pckpt top`` tails it)."""
        from ..obs.telemetry import TELEMETRY_FILENAME

        return self.root / TELEMETRY_FILENAME

    # -- maintenance ---------------------------------------------------------
    @staticmethod
    def _scan(root: Path, pattern: str) -> List[Path]:
        """Snapshot of ``root.glob(pattern)`` that survives a concurrent
        ``clear``: pathlib's lazy glob scandirs each fan-out directory
        after listing it, and only suppresses PermissionError — a
        directory rmdir'd in that window raises FileNotFoundError out of
        the iterator.  A vanished directory is an empty one.
        """
        for _ in range(3):
            try:
                return list(root.glob(pattern))
            except FileNotFoundError:
                continue
        return []

    def keys(self) -> Iterator[str]:
        """All cached cell keys (sorted for stable iteration)."""
        for path in sorted(self._scan(self.root, "??/*.json")):
            yield path.stem

    def stats(self) -> Dict[str, object]:
        """Summary counters for ``pckpt campaign status``.

        Entries unlinked by a concurrent ``clear`` mid-scan are skipped.
        """
        cells = 0
        size = 0
        replications = 0
        for path in self._scan(self.root, "??/*.json"):
            try:
                size += path.stat().st_size
                payload = json.loads(path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                continue
            cells += 1
            replications += payload["result"].get("replications", 0)
        return {
            "path": str(self.root),
            "schema_version": SCHEMA_VERSION,
            "cells": cells,
            "replications": replications,
            "bytes": size,
        }

    def clear(self) -> int:
        """Delete every entry (keeps ``schema.json``); returns count removed.

        Safe against concurrent writers: entries another process already
        removed are skipped, and a fan-out directory refilled between
        the emptiness check and ``rmdir`` is left alone.
        """
        removed = 0
        for path in self._scan(self.root, "??/*.json"):
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            removed += 1
        for stray in self._scan(self.root, "??/*.tmp"):
            try:  # staging files left behind by killed writers
                stray.unlink()
            except FileNotFoundError:
                continue
        for sub in self._scan(self.root, "??"):
            try:
                sub.rmdir()  # only succeeds when (still) empty
            except OSError:
                continue
        return removed

    @classmethod
    def wipe(cls, root: Union[str, Path]) -> int:
        """Delete every entry under *root* and reset ``schema.json`` to the
        code's version, **without** validating the recorded schema — the
        recovery path for a store left behind by an older code version
        (constructing :class:`ResultStore` on such a store raises).
        Returns the number of entries removed.
        """
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        removed = 0
        for path in list(root.glob("??/*.json")):
            path.unlink()
            removed += 1
        for sub in list(root.glob("??")):
            if sub.is_dir() and not any(sub.iterdir()):
                sub.rmdir()
        cls._write_atomic(
            root / cls._SCHEMA_FILE, {"schema_version": SCHEMA_VERSION}
        )
        return removed

    def __len__(self) -> int:
        return len(self._scan(self.root, "??/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultStore {self.root} cells={len(self)}>"


def status_payload(store: ResultStore) -> Dict[str, object]:
    """Machine-readable campaign-store status (one JSON-ready dict).

    The single source behind every status surface: ``pckpt campaign
    status --json`` prints exactly this, and the service's
    ``GET /v1/status`` embeds it as its ``store`` block — so scripts
    parse one shape regardless of how they reached the store.

    Keys: ``store`` (the :meth:`ResultStore.stats` counters) and
    ``telemetry`` (the latest snapshot of the store-level feed, or
    ``None`` when no campaign has streamed one).
    """
    from ..obs.telemetry import latest_snapshot

    return {
        "store": store.stats(),
        "telemetry": latest_snapshot(str(store.telemetry_path())),
    }
