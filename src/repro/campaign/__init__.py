"""Campaign orchestration: shared-pool scheduling, content-addressed
result caching, and resumable Monte-Carlo sweeps.

The paper's evaluation is a grid of (model × application × parameter)
cells at up to 1000 replications each.  This subsystem flattens such a
grid into a plan of replication shards, executes them on **one** shared
process pool with dynamic scheduling, and persists every cell's
aggregate to an on-disk store keyed by a content hash of its full
configuration — so re-running a campaign is incremental and an
interrupted one resumes from the last completed cell.  See
``docs/CAMPAIGN.md``.
"""

from .plan import (
    AnalyticalCellSpec,
    CampaignPlan,
    CellSpec,
    WorkUnit,
    canonical_config,
    content_key,
)
from .progress import CampaignProgress
from .scheduler import CampaignExecutionError, run_campaign
from .store import (
    SCHEMA_VERSION,
    ResultStore,
    StoredResult,
    StoreSchemaError,
    result_from_dict,
    result_to_dict,
    status_payload,
)

__all__ = [
    "AnalyticalCellSpec",
    "CampaignPlan",
    "CellSpec",
    "WorkUnit",
    "canonical_config",
    "content_key",
    "CampaignProgress",
    "CampaignExecutionError",
    "run_campaign",
    "SCHEMA_VERSION",
    "ResultStore",
    "StoredResult",
    "StoreSchemaError",
    "result_to_dict",
    "result_from_dict",
    "status_payload",
]
