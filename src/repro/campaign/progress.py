"""Live campaign progress: metrics counters, trace spans, status lines.

The campaign layer reports through the same observability substrate the
simulations use (``docs/OBSERVABILITY.md``):

* a :class:`~repro.des.metrics.MetricsRegistry` holds scheduler counters
  (``campaign.cells.*``, ``campaign.replications.*``,
  ``campaign.shards.*``) — the cache-hit acceptance check reads
  ``campaign.replications.executed`` off this registry;
* an optional :class:`~repro.des.monitor.Trace` receives one
  ``campaign_run`` span for the whole campaign, a ``campaign_cell`` span
  per executed cell, and instants for cache hits / shard completions /
  retries, timestamped with **wall-clock** seconds since the campaign
  started (there is no simulation clock at this layer — the trace shows
  real scheduling, so it can sit next to per-replication simulation
  traces in Perfetto);
* an optional :class:`~repro.obs.telemetry.CampaignTelemetry` sink
  receives one streaming snapshot (cells/shards completed, cache hit
  rate, worker utilization, ETA) per scheduler event — the live feed
  behind ``pckpt top`` and ``pckpt campaign status``.

Counter vocabulary
------------------
``campaign.cells.total``         cells in the plan
``campaign.cells.cached``        cells served from the result store
``campaign.cells.executed``      cells computed this run
``campaign.replications.cached``    replications covered by cache hits
``campaign.replications.executed``  replications actually simulated
``campaign.shards.completed``    work units finished
``campaign.shards.retried``      work units re-run serially after a
                                 worker crash
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

from ..des.metrics import MetricsRegistry
from ..des.monitor import Trace
from ..obs.telemetry import CampaignTelemetry

__all__ = ["CampaignProgress"]


class _WallClock:
    """Minimal ``Environment`` stand-in: ``now`` = seconds since start."""

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    @property
    def now(self) -> float:
        return time.perf_counter() - self._t0


class CampaignProgress:
    """Observer the scheduler notifies as a campaign advances.

    Parameters
    ----------
    metrics:
        Registry receiving the campaign counters (created if omitted, so
        callers can always read ``progress.metrics`` afterwards).
    trace:
        Optional trace for scheduling spans.  The trace's environment is
        replaced by a wall clock while the campaign runs if it has none.
    stream:
        Text stream for one status line per completed/cached cell
        (``None`` = silent; ``pckpt campaign run`` passes stderr).
    telemetry:
        Optional :class:`~repro.obs.telemetry.CampaignTelemetry` sink; a
        schema-versioned snapshot is appended after every scheduler
        event.  ``run_campaign`` attaches one automatically (writing to
        ``<store>/telemetry.jsonl``) when the campaign has a store and
        no sink was supplied — that file is what ``pckpt top`` tails.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 trace: Optional[Trace] = None,
                 stream: Optional[IO[str]] = None,
                 telemetry: Optional[CampaignTelemetry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace
        self.stream = stream
        self.telemetry = telemetry
        self._clock = _WallClock()
        if trace is not None and trace.env is None:
            trace.env = self._clock
        self._run_sid = 0
        self._cell_sids: dict = {}
        self._total_cells = 0
        self._done_cells = 0
        self._total_replications = 0
        self._workers = 0
        self._shards_total = 0

    # -- campaign lifecycle --------------------------------------------------
    def campaign_begin(self, n_cells: int, n_replications: int) -> None:
        self._total_cells = n_cells
        self._total_replications = n_replications
        self.metrics.counter("campaign.cells.total").inc(n_cells)
        if self.trace is not None:
            self._run_sid = self.trace.span_begin(
                "campaign", "campaign_run",
                {"cells": n_cells, "replications": n_replications},
            )
        self._say(f"campaign: {n_cells} cells / {n_replications} replications")
        self._flush_telemetry("running")

    def pool_sized(self, workers: int, n_shards: int) -> None:
        """Scheduler callback: pool width and shard count are known."""
        self._workers = int(workers)
        self._shards_total = int(n_shards)
        self._flush_telemetry("running")

    def campaign_end(self) -> None:
        if self.trace is not None and self._run_sid:
            self.trace.span_end(self._run_sid)
        executed = self.metrics.counter("campaign.replications.executed").value
        cached = self.metrics.counter("campaign.cells.cached").value
        self._say(
            f"campaign: done ({cached:g} cells cached, "
            f"{executed:g} replications executed)"
        )
        self._flush_telemetry("done")
        if self.telemetry is not None:
            self.telemetry.close()

    # -- per-cell ------------------------------------------------------------
    def cell_cached(self, cell, key: str) -> None:
        self.metrics.counter("campaign.cells.cached").inc()
        self.metrics.counter("campaign.replications.cached").inc(
            cell.replications
        )
        self._done_cells += 1
        if self.trace is not None:
            self.trace.emit("campaign", "campaign_cell_hit",
                            {"cell": repr(cell.key), "key": key[:12]})
        self._say(self._cell_line(cell, "cached"))
        self._flush_telemetry("running")

    def cell_started(self, cell, cell_index: int) -> None:
        if self.trace is not None:
            self._cell_sids[cell_index] = self.trace.span_begin(
                "campaign", "campaign_cell", {"cell": repr(cell.key)}
            )

    def cell_done(self, cell, cell_index: int) -> None:
        self.metrics.counter("campaign.cells.executed").inc()
        self._done_cells += 1
        if self.trace is not None:
            sid = self._cell_sids.pop(cell_index, 0)
            if sid:
                self.trace.span_end(sid)
        self._say(self._cell_line(cell, "computed"))
        self._flush_telemetry("running")

    # -- per-shard -----------------------------------------------------------
    def shard_done(self, unit, retried: bool = False) -> None:
        self.metrics.counter("campaign.shards.completed").inc()
        self.metrics.counter("campaign.replications.executed").inc(
            unit.replications
        )
        if retried:
            self.metrics.counter("campaign.shards.retried").inc()
        if self.trace is not None:
            self.trace.emit(
                "campaign", "campaign_shard_done",
                {"cell_index": unit.cell_index,
                 "reps": [unit.rep_start, unit.rep_stop],
                 "retried": retried},
            )
        self._flush_telemetry("running")

    def shard_crashed(self, unit, error: BaseException) -> None:
        if self.trace is not None:
            self.trace.emit(
                "campaign", "campaign_shard_crash",
                {"cell_index": unit.cell_index,
                 "reps": [unit.rep_start, unit.rep_stop],
                 "error": repr(error)},
            )
        self._say(
            f"campaign: shard [{unit.rep_start}, {unit.rep_stop}) of cell "
            f"{unit.cell_index} crashed ({error!r}); retrying serially"
        )

    # -- telemetry -----------------------------------------------------------
    def telemetry_snapshot(self, state: str = "running") -> dict:
        """Current scheduler state as a telemetry snapshot dict.

        Counts come straight off the ``campaign.*`` counters; the derived
        operator fields are estimates: ``cache_hit_rate`` is cached
        replications over total, ``eta_seconds`` extrapolates the
        executed-replication rate over what remains (``None`` until the
        first executed replication lands), and ``worker_utilization`` is
        the fraction of pool slots with a shard still available to run.
        """
        m = self.metrics
        cells_cached = int(m.counter("campaign.cells.cached").value)
        cells_executed = int(m.counter("campaign.cells.executed").value)
        reps_cached = int(m.counter("campaign.replications.cached").value)
        reps_executed = int(m.counter("campaign.replications.executed").value)
        shards_completed = int(m.counter("campaign.shards.completed").value)
        shards_retried = int(m.counter("campaign.shards.retried").value)
        elapsed = float(self._clock.now)
        total_reps = self._total_replications
        remaining = max(total_reps - reps_cached - reps_executed, 0)
        rate = reps_executed / elapsed if elapsed > 0.0 else 0.0
        if state == "done":
            eta: Optional[float] = 0.0
        elif rate > 0.0:
            eta = remaining / rate
        else:
            eta = None
        shards_remaining = max(self._shards_total - shards_completed, 0)
        utilization = (
            min(shards_remaining, self._workers) / self._workers
            if self._workers > 0 and state != "done"
            else 0.0
        )
        return {
            "state": state,
            "elapsed_seconds": elapsed,
            "cells_total": self._total_cells,
            "cells_cached": cells_cached,
            "cells_executed": cells_executed,
            "cells_done": self._done_cells,
            "replications_total": total_reps,
            "replications_cached": reps_cached,
            "replications_executed": reps_executed,
            "shards_total": self._shards_total,
            "shards_completed": shards_completed,
            "shards_retried": shards_retried,
            "workers": self._workers,
            "worker_utilization": utilization,
            "cache_hit_rate": (
                reps_cached / total_reps if total_reps > 0 else 0.0
            ),
            "eta_seconds": eta,
        }

    def _flush_telemetry(self, state: str) -> None:
        if self.telemetry is not None:
            self.telemetry.write(self.telemetry_snapshot(state))

    # -- helpers -------------------------------------------------------------
    def _cell_line(self, cell, how: str) -> str:
        return (
            f"campaign: [{self._done_cells}/{self._total_cells}] "
            f"{cell.key!r} {how} "
            f"({cell.replications} reps, {self._clock.now:.1f}s elapsed)"
        )

    def _say(self, line: str) -> None:
        if self.stream is not None:
            print(line, file=self.stream)
            if self.stream is sys.stderr:  # keep live lines visible
                self.stream.flush()
