"""Generator-based processes for the :mod:`repro.des` kernel.

A :class:`Process` wraps a Python generator.  Each value the generator
yields must be an :class:`~.events.Event`; the process suspends until that
event is processed and is then resumed with the event's value (or, for a
failed event, has the exception thrown into it).  The process object is
itself an event that triggers when the generator terminates, so processes
can wait for each other simply by yielding them.
"""

from __future__ import annotations

from types import GeneratorType
from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import NORMAL, PENDING, Event, Initialize, Interruption
from .exceptions import SimulationError, StopProcess

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Process", "ProcessGenerator"]

#: Type alias for the generators accepted by :meth:`Environment.process`.
ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """An active simulation component driven by a generator.

    Created via :meth:`Environment.process`; user code rarely instantiates
    this directly.
    """

    __slots__ = ("_generator", "_send", "_target", "_cb", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        if not isinstance(generator, GeneratorType):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: Bound ``generator.send``, resolved once — every resume of the
        #: process calls it, so the attribute lookup must not repeat.
        self._send = generator.send
        #: The bound _resume callback, created once — subscribing to a new
        #: target on every yield must not allocate a fresh bound method.
        self._cb = self._resume
        #: The event the process is currently waiting for (None until started
        #: and after termination).
        self._target: Optional[Event] = Initialize(env, self)
        #: Human-readable name used in traces; defaults to the generator name.
        self.name = name or generator.__name__

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for, if any."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt this process, throwing ``Interrupt(cause)`` into it.

        A process cannot interrupt itself and terminated processes cannot
        be interrupted.  Interrupts are delivered with *urgent* priority,
        i.e. before ordinary events scheduled at the same time.
        """
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value/exception of *event*."""
        env = self.env
        env._active_proc = self
        send = self._send

        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The event failed: mark the exception as handled (the
                    # process is dealing with it now) and throw it in.
                    event._defused = True
                    exc = type(event._value)(*event._value.args)
                    exc.__cause__ = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as exc:
                # Generator returned: the process event succeeds.
                self._ok = True
                self._value = exc.value
                env.schedule(self, NORMAL)
                break
            except StopProcess as exc:
                self._ok = True
                self._value = exc.value
                env.schedule(self, NORMAL)
                break
            except BaseException as exc:
                # Unhandled exception inside the process: the process event
                # fails; if nobody waits for it, the kernel will re-raise.
                self._ok = False
                self._defused = False
                self._value = exc
                env.schedule(self, NORMAL)
                break

            # The generator yielded a new event to wait for.  Assume an
            # Event and let the attribute access fail for anything else —
            # an untaken try costs nothing, an isinstance per yield does.
            try:
                callbacks = next_event.callbacks
            except AttributeError:
                msg = f"process {self.name!r} yielded non-event {next_event!r}"
                error = SimulationError(msg)
                try:
                    self._generator.throw(error)
                except (SimulationError, StopIteration):
                    self._ok = False
                    self._defused = False
                    self._value = error
                    env.schedule(self, NORMAL)
                    break
                raise error  # pragma: no cover - generator swallowed it

            if callbacks is not None:
                # Event not yet processed: subscribe and suspend.
                callbacks.append(self._cb)
                self._target = next_event
                env._active_proc = None
                return

            # Event already processed: loop around immediately with it.
            event = next_event

        # Only the termination branches break out of the loop.
        self._target = None
        env._active_proc = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "terminated"
        return f"<Process {self.name!r} ({state}) at {id(self):#x}>"
