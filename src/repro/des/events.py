"""Event primitives for the :mod:`repro.des` kernel.

Events follow the SimPy life cycle:

1. *untriggered* — freshly created, may collect callbacks;
2. *triggered* — a value (or exception) has been set and the event has been
   scheduled on the environment's event queue;
3. *processed* — the environment has popped the event and invoked all of its
   callbacks.  Adding a callback to a processed event is an error.

Only the environment may move an event from *triggered* to *processed*.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from .exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Initialize",
    "Interruption",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
]

#: Sentinel for "no value set yet".
PENDING: Any = object()

#: Scheduling priority for urgent (kernel-internal) events.
URGENT: int = 0
#: Scheduling priority for ordinary events.
NORMAL: int = 1


class Event:
    """An event that may happen at some point in simulated time.

    Parameters
    ----------
    env:
        The environment the event lives in.

    Notes
    -----
    ``Event`` supports the ``&`` and ``|`` operators to build
    :class:`AllOf` / :class:`AnyOf` conditions, mirroring SimPy.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    # ``_defused`` is deliberately NOT initialized here (or in any of the
    # inlined event constructors): it is only ever read after a failure,
    # and :meth:`fail` / :meth:`trigger` set it on that path.  Event
    # construction is the kernel's hottest allocation site, so each
    # constructor saves one attribute store per event.  The ``defused``
    # property tolerates the unset slot for never-failed events.

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks invoked (in order) when the event is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value has been set and the event is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (callbacks list is consumed)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise AttributeError("value of event is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        Raises
        ------
        AttributeError
            If the event has not been triggered yet.
        """
        if self._value is PENDING:
            raise AttributeError("value of event is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failed event's exception has been marked as handled."""
        return getattr(self, "_defused", False)

    def defuse(self) -> None:
        """Mark a failed event as handled, suppressing kernel re-raise."""
        self._defused = True

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Set the event's value and schedule it.

        Returns the event itself so triggering can be chained at creation.
        The event is dispatched at the current simulation time, ordered
        against same-time events by (priority, schedule sequence).

        Raises
        ------
        SimulationError
            If the event has already been triggered.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined Environment.schedule with delay=0 (the only case here);
        # keep the key tuple in sync with core.Environment.schedule.  The
        # queue high-water mark is sampled at pop time by the run loop.
        # Heap mode pushes straight onto the heap (cheaper than any
        # indirection); in calendar mode NORMAL-priority entries at the
        # current time go through env._push_now, which a draining bucket
        # rebinds to its raw deque.append, and anything else takes the
        # general env._push (the queue's binning method).
        env = self.env
        if env._cal is None:
            heappush(env._queue, (env._now, priority, env._eid, self))
        elif priority == 1:
            env._push_now((env._now, priority, env._eid, self))
        else:
            env._push((env._now, priority, env._eid, self))
        env._eid += 1
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Fail the event with *exception* and schedule it.

        Waiters will have the exception thrown into them.  If no waiter
        handles (defuses) the failure, the kernel re-raises it out of
        :meth:`Environment.run`.

        Raises
        ------
        SimulationError
            If the event has already been triggered.
        TypeError
            If *exception* is not a ``BaseException`` instance.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._defused = False
        self._value = exception
        env = self.env
        if env._cal is None:
            heappush(env._queue, (env._now, priority, env._eid, self))
        elif priority == 1:
            env._push_now((env._now, priority, env._eid, self))
        else:
            env._push((env._now, priority, env._eid, self))
        env._eid += 1
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state and value of *event*.

        Useful as a callback to chain events together.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._defused = False
        self._value = event._value
        self.env.schedule(self, priority=NORMAL)

    # -- composition -----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} object ({state}) at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers itself after a *delay* of simulated time.

    Parameters
    ----------
    env:
        The environment to schedule on.
    delay:
        Simulated seconds until the event fires (>= 0).
    value:
        Value the event triggers with (default ``None``).

    Raises
    ------
    ValueError
        If *delay* is negative.

    Notes
    -----
    Timeouts dominate event traffic in every simulation, so ``__init__``
    is a fast path: it sets the :class:`Event` fields and pushes the
    ``(time, priority, sequence)`` queue entry directly instead of going
    through ``Event.__init__`` + :meth:`Environment.schedule` — one
    attribute-store sequence and one push (a direct ``heappush`` in heap
    mode, the calendar queue's binning method otherwise) per timeout,
    with identical
    scheduling semantics (same key tuple, same sequence numbering; the
    queue high-water mark is sampled at pop time by the run loop).
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        if type(delay) is not float:
            delay = float(delay)
        self._delay = delay
        cal = env._cal
        if cal is None:
            heappush(env._queue, (env._now + delay, NORMAL, env._eid, self))
        else:
            cal.push((env._now + delay, NORMAL, env._eid, self))
        env._eid += 1

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay} at {id(self):#x}>"


class Initialize(Event):
    """Kernel-internal event that starts a new :class:`~.process.Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: Any) -> None:
        super().__init__(env)
        self.callbacks = [process._cb]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Kernel-internal event that throws an Interrupt into a process.

    Scheduled as *urgent* so that the interrupt is delivered before any
    ordinary event at the same simulation time.
    """

    __slots__ = ("process",)

    def __init__(self, process: Any, cause: Any) -> None:
        from .exceptions import Interrupt  # local to avoid cycle at import

        super().__init__(process.env)
        if process._value is not PENDING:
            raise SimulationError(f"{process!r} has terminated and cannot be interrupted")
        if process is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        self.process = process
        self.callbacks = [self._interrupt]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: "Event") -> None:
        process = self.process
        # The process may have terminated in the meantime (e.g. its awaited
        # event fired at the same timestep); the interrupt then evaporates.
        if process._value is not PENDING:
            return
        # Detach the process from the event it is currently waiting for.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._cb)
            except ValueError:  # pragma: no cover - defensive
                pass
        process._resume(self)


class ConditionValue:
    """Ordered mapping of the events that triggered inside a condition.

    Behaves like a read-only dict keyed by the original event objects, in
    the order they were passed to the condition.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self) -> Iterable[Event]:
        return iter(self.events)

    def values(self) -> Iterable[Any]:
        return (e._value for e in self.events)

    def items(self):
        return ((e, e._value) for e in self.events)

    def todict(self) -> dict:
        """Return a plain dict snapshot of event → value."""
        return {e: e._value for e in self.events}


class Condition(Event):
    """An event that triggers once *evaluate* is satisfied over *events*.

    The condition value is a :class:`ConditionValue` containing every
    composed event that had triggered by the time the condition fired.
    Failed sub-events fail the condition immediately.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        # Inlined Event.__init__ (conditions are built per protocol join;
        # keep in sync with events.Event).
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        # One pass: validate, eagerly check already-processed events, and
        # subscribe to the rest.  Subscription stops as soon as the
        # condition is decided — further callbacks would only be ignored
        # by _check, and the eager pruning in _check has already cleaned
        # up the ones added so far.
        check = self._check
        decided = False
        for event in self._events:
            if event.env is not env:
                raise ValueError("all events of a condition must share an environment")
            if decided:
                continue
            if event.callbacks is None:
                check(event)
                decided = self._value is not PENDING
            else:
                event.callbacks.append(check)

        # An empty condition is immediately true.
        if self._value is PENDING and self._evaluate(self._events, self._count):
            self.succeed(ConditionValue())

        # When the condition fires, collect values and detach callbacks.
        assert self.callbacks is not None
        self.callbacks.append(self._build_value)

    def _desc(self) -> str:
        return f"{type(self).__name__}({self._evaluate.__name__}, {self._events})"

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            # Prune eagerly: the condition is decided, so the remaining
            # sub-events must not keep dead callbacks on their lists.
            self._remove_check_callbacks()
        elif self._evaluate(self._events, self._count):
            self.succeed(None)
            self._remove_check_callbacks()

    def _build_value(self, event: Event) -> None:
        # _check pruned the sub-event callbacks when the condition was
        # decided; here only the value remains to be assembled.
        if event._ok:
            value = ConditionValue()
            self._populate_value(value)
            self._value = value

    def _remove_check_callbacks(self) -> None:
        check = self._check
        for event in self._events:
            callbacks = event.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(check)
                except ValueError:
                    pass
            if isinstance(event, Condition):
                event._remove_check_callbacks()

    def _populate_value(self, value: ConditionValue) -> None:
        # Only *processed* events belong in the value: a Timeout carries
        # its value from creation, so checking `triggered` would claim
        # events that have not actually happened yet.
        for event in self._events:
            if isinstance(event, Condition) and event.callbacks is None:
                event._populate_value(value)
            elif event.callbacks is None:
                value.events.append(event)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Evaluate to true once every composed event has triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """Evaluate to true once any composed event has triggered."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires when *all* of *events* have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)

    def _check(self, event: Event) -> None:
        # Specialized Condition._check with the all_events predicate
        # inlined (conditions fire once per composed event on the
        # protocol's phase-2 joins; keep in sync with Condition._check).
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            self._remove_check_callbacks()
        elif self._count == len(self._events):
            # No pruning needed on success: all-of can only fire once
            # every composed event has been *processed*, so there are no
            # live callback lists left to remove this check from (and any
            # fired sub-condition already pruned its own sub-events).
            self.succeed(None)


class AnyOf(Condition):
    """Condition that fires when *any* of *events* has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)

    def _check(self, event: Event) -> None:
        # Specialized Condition._check: any fired event decides the
        # condition (keep in sync with Condition._check).
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(None)
        self._remove_check_callbacks()
