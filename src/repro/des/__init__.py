"""A from-scratch discrete-event simulation kernel (SimPy-compatible core).

The paper evaluates p-ckpt with SimPy; this package provides the same
process-based simulation semantics so the C/R models read like the paper's
description:

* :class:`Environment` — event loop with a deterministic
  ``(time, priority, sequence)``-ordered heap;
* generator-based :class:`Process` objects that ``yield`` events;
* :class:`Timeout`, bare :class:`Event`, :class:`AllOf` / :class:`AnyOf`
  conditions, and process :meth:`~Process.interrupt`;
* :class:`Resource` / :class:`PriorityResource` for contended slots
  (PFS drain lanes, prioritized PFS access);
* :class:`Store` / :class:`PriorityStore` / :class:`Container` for message
  queues and bulk capacities.

The kernel guarantees a deterministic total event order (the
"Determinism contract" in ``docs/ARCHITECTURE.md``), and its hot paths
are benchmarked and tracked by ``pckpt bench`` (``docs/PERFORMANCE.md``).

Example
-------
>>> from repro.des import Environment
>>> env = Environment()
>>> def worker(env, results):
...     yield env.timeout(3.0)
...     results.append(env.now)
>>> out = []
>>> _ = env.process(worker(env, out))
>>> env.run()
>>> out
[3.0]
"""

from .core import Environment, Infinity
from .events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .exceptions import EmptySchedule, Interrupt, SimulationError, StopProcess
from .metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .monitor import BEGIN, END, INSTANT, Trace, TraceRecord, load_jsonl
from .process import Process, ProcessGenerator
from .resources import PriorityRequest, PriorityResource, Release, Request, Resource
from .stores import (
    Container,
    ContainerGet,
    ContainerPut,
    PriorityItem,
    PriorityStore,
    Store,
    StoreGet,
    StorePut,
)

__all__ = [
    "Environment",
    "Infinity",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Process",
    "ProcessGenerator",
    "Interrupt",
    "StopProcess",
    "SimulationError",
    "EmptySchedule",
    "Resource",
    "PriorityResource",
    "Request",
    "PriorityRequest",
    "Release",
    "Store",
    "PriorityStore",
    "PriorityItem",
    "StorePut",
    "StoreGet",
    "Container",
    "ContainerPut",
    "ContainerGet",
    "Trace",
    "TraceRecord",
    "load_jsonl",
    "INSTANT",
    "BEGIN",
    "END",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_SECONDS_BUCKETS",
]
