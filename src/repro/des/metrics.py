"""A lightweight metrics registry for simulation components.

Three instrument types, modelled on the usual time-series vocabulary but
kept deliberately tiny so they are cheap enough to leave enabled:

* :class:`Counter` — a monotonically increasing total (events processed,
  checkpoints taken, protocol aborts);
* :class:`Gauge` — a point-in-time value with a tracked high-water mark
  (heap depth, current OCI);
* :class:`Histogram` — fixed, caller-chosen bucket bounds (phase
  durations, recovery read times).  Fixed buckets keep observation O(#buckets)
  worst case and — more importantly — make cross-replication merging a
  plain element-wise sum.

A :class:`MetricsRegistry` owns instruments by name and can be attached to
an :class:`~repro.des.core.Environment` (``env.metrics``) so any component
holding the environment can record without extra plumbing.

Merging is the whole point of the design: one registry per Monte-Carlo
replication, serialized with :meth:`MetricsRegistry.snapshot` (a plain
picklable dict, safe across ``ProcessPoolExecutor`` boundaries) and folded
together with :meth:`MetricsRegistry.merge_snapshots` in replication
order.  All merge operations are order-insensitive for counts and sums of
integers, and applied in a fixed (replication-index) order for float sums,
so the aggregate is bit-identical regardless of worker count.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_SECONDS_BUCKETS"]

#: Default histogram bounds for durations in seconds (log-ish spacing
#: covering microseconds of barrier cost up to multi-hour recoveries).
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 300.0, 1800.0, 7200.0, 43200.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another replication's total into this one (sum)."""
        self.value += other.value

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value with a high-water mark.

    Merging across replications keeps the component-wise **maximum** —
    a merged gauge answers "how bad did it ever get", which is the only
    cross-run question a last-value instrument can answer deterministically.
    """

    __slots__ = ("name", "value", "high_water", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.high_water: float = 0.0
        self.updates: int = 0

    def set(self, value: float) -> None:
        """Record the current value (and bump the high-water mark)."""
        self.value = value
        if value > self.high_water or self.updates == 0:
            self.high_water = value
        self.updates += 1

    def merge(self, other: "Gauge") -> None:
        """Fold another replication's gauge in (max semantics)."""
        if other.updates:
            if self.updates == 0 or other.high_water > self.high_water:
                self.high_water = other.high_water
            self.value = max(self.value, other.value) if self.updates else other.value
        self.updates += other.updates

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value} hwm={self.high_water}>"


class Histogram:
    """Fixed-bucket histogram of observations.

    Parameters
    ----------
    name:
        Instrument name.
    buckets:
        Strictly increasing upper bounds.  An observation lands in the
        first bucket whose bound is >= the value; values above the last
        bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "overflow", "total", "count")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * len(bounds)
        self.overflow: int = 0
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation (must be non-negative)."""
        if value < 0:
            raise ValueError(
                f"histogram {self.name}: negative observation {value}"
            )
        idx = bisect.bisect_left(self.buckets, value)
        if idx == len(self.buckets):
            self.overflow += 1
        else:
            self.counts[idx] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another replication's histogram in (element-wise sum)."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name}: merging incompatible bucket bounds "
                f"(have {self.buckets}, got {other.buckets})"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.overflow += other.overflow
        self.total += other.total
        self.count += other.count

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.4g}>"


class MetricsRegistry:
    """Named counters, gauges, and histograms for one simulation run.

    Instruments are get-or-create: components call
    ``registry.counter("drain.completed").inc()`` without worrying about
    registration order.  A name is bound to exactly one instrument type —
    re-requesting it as a different type raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access --------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        inst = self._counters.get(name)
        if inst is None:
            self._check_free(name, "counter")
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge *name*."""
        inst = self._gauges.get(name)
        if inst is None:
            self._check_free(name, "gauge")
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS
                  ) -> Histogram:
        """Get or create the histogram *name* (buckets fixed on creation)."""
        inst = self._histograms.get(name)
        if inst is None:
            self._check_free(name, "histogram")
            inst = self._histograms[name] = Histogram(name, buckets)
        return inst

    def _check_free(self, name: str, want: str) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if kind != want and name in table:
                raise ValueError(f"{name!r} already registered as a {kind}")

    def names(self) -> Tuple[str, ...]:
        """All registered instrument names, sorted."""
        return tuple(sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        ))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __iter__(self) -> Iterator[object]:
        for name in self.names():
            yield (self._counters.get(name) or self._gauges.get(name)
                   or self._histograms.get(name))

    # -- serialization ------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict serialization (picklable / JSON-friendly).

        Keys are sorted so two registries with identical contents produce
        identical snapshots regardless of instrument creation order.
        """
        return {
            "counters": {
                n: c.value for n, c in sorted(self._counters.items())
            },
            "gauges": {
                n: {"value": g.value, "high_water": g.high_water,
                    "updates": g.updates}
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: {"buckets": list(h.buckets), "counts": list(h.counts),
                    "overflow": h.overflow, "total": h.total,
                    "count": h.count}
                for n, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Dict[str, object]]
                      ) -> "MetricsRegistry":
        """Reconstruct a registry from :meth:`snapshot` output."""
        reg = cls()
        for name, value in snap.get("counters", {}).items():
            reg.counter(name).value = value
        for name, g in snap.get("gauges", {}).items():
            gauge = reg.gauge(name)
            gauge.value = g["value"]
            gauge.high_water = g["high_water"]
            gauge.updates = g["updates"]
        for name, h in snap.get("histograms", {}).items():
            hist = reg.histogram(name, h["buckets"])
            hist.counts = list(h["counts"])
            hist.overflow = h["overflow"]
            hist.total = h["total"]
            hist.count = h["count"]
        return reg

    # -- aggregation ---------------------------------------------------------
    def _merge_conflicts(self, other: "MetricsRegistry") -> List[str]:
        """Every reason merging *other* into ``self`` would be rejected.

        Two registries are mergeable iff no name is bound to different
        instrument types and every shared histogram has identical bucket
        bounds.  Checked up front so :meth:`merge` is atomic.
        """
        conflicts: List[str] = []
        tables = (("counter", self._counters), ("gauge", self._gauges),
                  ("histogram", self._histograms))
        for kind, theirs in (("counter", other._counters),
                             ("gauge", other._gauges),
                             ("histogram", other._histograms)):
            for name in sorted(theirs):
                for have_kind, mine in tables:
                    if have_kind != kind and name in mine:
                        conflicts.append(
                            f"{name!r} is a {kind} in the source but "
                            f"already registered as a {have_kind}"
                        )
        for name, h in sorted(other._histograms.items()):
            mine = self._histograms.get(name)
            if mine is not None and mine.buckets != h.buckets:
                conflicts.append(
                    f"histogram {name!r} bucket bounds differ "
                    f"(have {mine.buckets}, got {h.buckets})"
                )
        return conflicts

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* into this registry, creating instruments as needed.

        The merge is a **structural union**: instruments that exist only
        in *other* are created here even when their values are zero (an
        empty counter still merges), so the merged registry's instrument
        set is the union of both sides regardless of which side observed
        anything.  Merging an empty registry is therefore a no-op, and
        merging *into* an empty registry copies *other*.

        Incompatible registries — a name bound to different instrument
        types, or a shared histogram with different bucket bounds — raise
        :class:`ValueError` listing every conflict **before any state is
        touched**, so a failed merge never leaves ``self`` partially
        updated.
        """
        conflicts = self._merge_conflicts(other)
        if conflicts:
            raise ValueError(
                "registries cannot be merged: " + "; ".join(conflicts)
            )
        for name, c in sorted(other._counters.items()):
            self.counter(name).merge(c)
        for name, g in sorted(other._gauges.items()):
            self.gauge(name).merge(g)
        for name, h in sorted(other._histograms.items()):
            self.histogram(name, h.buckets).merge(h)

    @classmethod
    def merge_snapshots(
        cls, snapshots: Sequence[Optional[Dict[str, Dict[str, object]]]]
    ) -> "MetricsRegistry":
        """Merge per-replication snapshots, in the given (fixed) order.

        ``None`` entries (replications run without metrics) are skipped;
        an empty or all-``None`` sequence yields an empty registry.
        Because the order is the caller's replication order — not worker
        completion order — the result is independent of parallelism.
        Incompatible snapshots raise :class:`ValueError` (see
        :meth:`merge`); snapshots before the offending one are already
        folded into the (discarded) partial result, never into a
        caller-visible registry.
        """
        merged = cls()
        for snap in snapshots:
            if snap is not None:
                merged.merge(cls.from_snapshot(snap))
        return merged

    def format(self) -> str:
        """Render every instrument as aligned text lines."""
        lines: List[str] = []
        for name in self.names():
            c = self._counters.get(name)
            if c is not None:
                lines.append(f"{name:<40s} counter   {c.value:g}")
                continue
            g = self._gauges.get(name)
            if g is not None:
                lines.append(
                    f"{name:<40s} gauge     {g.value:g} (hwm {g.high_water:g})"
                )
                continue
            h = self._histograms.get(name)
            lines.append(
                f"{name:<40s} histogram n={h.count} mean={h.mean:g} "
                f"total={h.total:g}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")
