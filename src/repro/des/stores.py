"""Store and container primitives for producer/consumer coordination.

:class:`Store` is an unbounded-or-bounded FIFO of Python objects — the
kernel's message-queue primitive, used for p-ckpt notifications
(prediction events, pfs-commit broadcasts) between node processes.
:class:`PriorityStore` orders retrieval by item priority (the node-local
priority queue of the p-ckpt protocol).  :class:`Container` models bulk
continuous capacity (bytes in a burst buffer).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, List, NamedTuple

from .events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = [
    "StorePut",
    "StoreGet",
    "Store",
    "PriorityItem",
    "PriorityStore",
    "ContainerPut",
    "ContainerGet",
    "Container",
]


class StorePut(Event):
    """Request to put *item* into a store; fires when accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._dispatch()


class StoreGet(Event):
    """Request to take one item from a store; fires with the item."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_waiters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw the get request if it has not been fulfilled yet."""
        if self._value is PENDING:
            # Mark as no longer interested; dispatcher skips triggered events
            # and we remove eagerly where cheap.
            self._ok = True
            self._value = _GET_CANCELLED
            self.callbacks = None


#: Sentinel value assigned to cancelled StoreGet events.
_GET_CANCELLED: Any = object()


class Store:
    """FIFO store of arbitrary items with optional capacity bound.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Maximum number of items held; ``inf`` (default) for unbounded.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    @property
    def capacity(self) -> float:
        """Maximum number of items the store holds."""
        return self._capacity

    def put(self, item: Any) -> StorePut:
        """Offer *item*; the returned event fires once it is stored."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request one item; the returned event fires with the item."""
        return StoreGet(self)

    def __len__(self) -> int:
        return len(self.items)

    # -- internals ---------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self._store_item(event.item)
            event.succeed(None)
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self._take_item())
            return True
        return False

    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _take_item(self) -> Any:
        return self.items.pop(0)

    def _dispatch(self) -> None:
        """Match puts against capacity and gets against items until stuck."""
        progress = True
        while progress:
            progress = False
            while self._put_waiters:
                put = self._put_waiters[0]
                if put._value is not PENDING:
                    self._put_waiters.pop(0)
                    continue
                if self._do_put(put):
                    self._put_waiters.pop(0)
                    progress = True
                else:
                    break
            while self._get_waiters:
                get = self._get_waiters[0]
                if get._value is not PENDING:
                    self._get_waiters.pop(0)
                    continue
                if self._do_get(get):
                    self._get_waiters.pop(0)
                    progress = True
                else:
                    break

    def __repr__(self) -> str:
        return f"<{type(self).__name__} items={len(self.items)}>"


class PriorityItem(NamedTuple):
    """An item with an explicit priority; lower values dequeue first.

    The payload does not participate in comparisons, so heterogeneous or
    non-orderable payloads are fine.
    """

    priority: float
    item: Any

    def __lt__(self, other: "PriorityItem") -> bool:  # type: ignore[override]
        return self.priority < other.priority


class PriorityStore(Store):
    """A store whose :meth:`get` returns the lowest-priority item first.

    Items should be :class:`PriorityItem` instances (or anything orderable).
    Equal priorities dequeue in insertion order.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._seq = 0
        self._heap: List[Any] = []

    def _store_item(self, item: Any) -> None:
        heappush(self._heap, (item, self._seq))
        self._seq += 1
        self.items = [entry[0] for entry in sorted(self._heap)]

    def _take_item(self) -> Any:
        item, _ = heappop(self._heap)
        self.items = [entry[0] for entry in sorted(self._heap)]
        return item


class ContainerPut(Event):
    """Request to deposit *amount* into a container."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = float(amount)
        container._put_waiters.append(self)
        container._dispatch()


class ContainerGet(Event):
    """Request to withdraw *amount* from a container."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = float(amount)
        container._get_waiters.append(self)
        container._dispatch()


class Container:
    """A homogeneous bulk resource (e.g. bytes of burst-buffer space).

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Maximum level; ``inf`` for unbounded.
    init:
        Initial level.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if init < 0 or init > capacity:
            raise ValueError(f"init level {init} outside [0, {capacity}]")
        self.env = env
        self._capacity = float(capacity)
        self._level = float(init)
        self._put_waiters: List[ContainerPut] = []
        self._get_waiters: List[ContainerGet] = []

    @property
    def capacity(self) -> float:
        """Maximum level."""
        return self._capacity

    @property
    def level(self) -> float:
        """Current level."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Deposit *amount*; fires once there is room."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Withdraw *amount*; fires once enough is available."""
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self._capacity:
                    self._level += put.amount
                    put.succeed(None)
                    self._put_waiters.pop(0)
                    progress = True
                else:
                    break
            while self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount:
                    self._level -= get.amount
                    get.succeed(None)
                    self._get_waiters.pop(0)
                    progress = True
                else:
                    break

    def __repr__(self) -> str:
        return f"<Container level={self._level}/{self._capacity}>"
