"""Store and container primitives for producer/consumer coordination.

:class:`Store` is an unbounded-or-bounded FIFO of Python objects — the
kernel's message-queue primitive, used for p-ckpt notifications
(prediction events, pfs-commit broadcasts) between node processes.
:class:`PriorityStore` orders retrieval by item priority (the node-local
priority queue of the p-ckpt protocol).  :class:`Container` models bulk
continuous capacity (bytes in a burst buffer).
"""

from __future__ import annotations

from collections import deque
from functools import partial
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Any, Deque, List, NamedTuple

from .events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = [
    "StorePut",
    "StoreGet",
    "Store",
    "PriorityItem",
    "PriorityStore",
    "ContainerPut",
    "ContainerGet",
    "Container",
]


class StorePut(Event):
    """Request to put *item* into a store; fires when accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        # Inlined Event.__init__ (store puts carry every p-ckpt
        # notification; keep in sync with events.Event).
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self.item = item
        # Fast path for the overwhelmingly common case: no put is queued
        # ahead of us and the store has room.  Accept in place, then serve
        # any waiting gets directly — a successful get cannot unblock a
        # put here (none are waiting, and succeed() never runs callbacks
        # synchronously), so the _dispatch fixpoint is unnecessary.
        if store._put_waiters or not store._do_put(self):
            store._put_waiters.append(self)
            store._dispatch()
            return
        get_waiters = store._get_waiters
        while get_waiters:
            get = get_waiters[0]
            if get._value is not PENDING:
                get_waiters.popleft()
                continue
            if store._do_get(get):
                get_waiters.popleft()
            else:
                break


class StoreGet(Event):
    """Request to take one item from a store; fires with the item."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        # Mirror image of the StorePut fast path: take in place, then let
        # waiting puts refill the freed capacity (their items cannot serve
        # further gets — none are waiting).
        if store._get_waiters or not store._do_get(self):
            store._get_waiters.append(self)
            store._dispatch()
            return
        put_waiters = store._put_waiters
        while put_waiters:
            put = put_waiters[0]
            if put._value is not PENDING:
                put_waiters.popleft()
                continue
            if store._do_put(put):
                put_waiters.popleft()
            else:
                break

    def cancel(self) -> None:
        """Withdraw the get request if it has not been fulfilled yet."""
        if self._value is PENDING:
            # Mark as no longer interested; dispatcher skips triggered events
            # and we remove eagerly where cheap.
            self._ok = True
            self._value = _GET_CANCELLED
            self.callbacks = None


#: Sentinel value assigned to cancelled StoreGet events.
_GET_CANCELLED: Any = object()


class Store:
    """FIFO store of arbitrary items with optional capacity bound.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Maximum number of items held; ``inf`` (default) for unbounded.

    Raises
    ------
    ValueError
        If *capacity* is not positive.

    Notes
    -----
    Puts are accepted and gets are served strictly in request order, so
    store traffic is deterministic given the environment's event order.
    Items live in a :class:`collections.deque` (FIFO take is O(1));
    :attr:`items` exposes it directly and may be mutated in place.

    ``put(item)`` and ``get()`` — offer an item / request one; each
    returns an event that fires when served.  Both are bound as
    :func:`functools.partial` instance attributes rather than methods
    (the same C-call-path pattern as ``Environment.timeout``): store
    traffic is a kernel hot path and the trivial wrapper frame showed up
    in profiles.
    """

    __slots__ = ("env", "_capacity", "_items", "_put_waiters", "_get_waiters",
                 "put", "get")

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._items: Deque[Any] = deque()
        self._put_waiters: Deque[StorePut] = deque()
        self._get_waiters: Deque[StoreGet] = deque()
        #: Offer an item: ``store.put(item)`` -> StorePut (see class docs).
        self.put = partial(StorePut, self)
        #: Request one item: ``store.get()`` -> StoreGet (see class docs).
        self.get = partial(StoreGet, self)

    @property
    def capacity(self) -> float:
        """Maximum number of items the store holds."""
        return self._capacity

    @property
    def items(self):
        """The stored items, oldest first (live view, mutable in place)."""
        return self._items

    def __len__(self) -> int:
        return self._size()

    # -- internals ---------------------------------------------------------
    def _size(self) -> int:
        return len(self._items)

    def _do_put(self, event: StorePut) -> bool:
        if len(self._items) < self._capacity:
            self._items.append(event.item)
            event.succeed(None)
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self._items:
            event.succeed(self._items.popleft())
            return True
        return False

    def _dispatch(self) -> None:
        """Match puts against capacity and gets against items until stuck."""
        put_waiters = self._put_waiters
        get_waiters = self._get_waiters
        progress = True
        while progress:
            progress = False
            while put_waiters:
                put = put_waiters[0]
                if put._value is not PENDING:
                    put_waiters.popleft()
                    continue
                if self._do_put(put):
                    put_waiters.popleft()
                    progress = True
                else:
                    break
            while get_waiters:
                get = get_waiters[0]
                if get._value is not PENDING:
                    get_waiters.popleft()
                    continue
                if self._do_get(get):
                    get_waiters.popleft()
                    progress = True
                else:
                    break

    def __repr__(self) -> str:
        return f"<{type(self).__name__} items={self._size()}>"


class PriorityItem(NamedTuple):
    """An item with an explicit priority; lower values dequeue first.

    The payload does not participate in comparisons, so heterogeneous or
    non-orderable payloads are fine.
    """

    priority: float
    item: Any

    def __lt__(self, other: "PriorityItem") -> bool:  # type: ignore[override]
        return self.priority < other.priority


class _HeapEntry:
    """Heap node pairing an item with its insertion sequence number.

    A plain ``(item, seq)`` tuple does *not* give FIFO tie-breaking:
    tuple comparison consults ``seq`` only when the items compare
    *equal*, but two :class:`PriorityItem` entries with the same priority
    and different payloads are neither equal nor ordered (``__eq__``
    includes the payload while ``__lt__`` compares priority only), so
    the heap saw them as interchangeable and popped them in heap-shape
    order.  This wrapper falls back to ``seq`` whenever neither item
    strictly precedes the other, restoring the documented insertion-order
    tie-break (caught by the ``repro.validate`` fuzzer; the minimal
    reproducer lives in ``tests/corpus/``).
    """

    __slots__ = ("item", "seq")

    def __init__(self, item: Any, seq: int) -> None:
        self.item = item
        self.seq = seq

    def __lt__(self, other: "_HeapEntry") -> bool:
        if self.item < other.item:
            return True
        if other.item < self.item:
            return False
        return self.seq < other.seq


class PriorityStore(Store):
    """A store whose :meth:`get` returns the lowest-priority item first.

    Items should be :class:`PriorityItem` instances (or anything orderable).
    Equal priorities dequeue in insertion order (an insertion sequence
    number breaks ties, so retrieval order is deterministic).

    Notes
    -----
    Items are held in a binary heap: put and take are O(log n).  The
    :attr:`items` view is assembled on demand — earlier revisions rebuilt
    the sorted list on *every* put/get, making store traffic O(n log n)
    per operation; only diagnostics pay for the sort now.

    While every stored item is a :class:`PriorityItem` with a numeric,
    non-NaN priority, heap nodes are plain ``(priority, seq, item)``
    tuples whose comparisons never leave C — ``seq`` is unique, so the
    payload is never compared and the ordering is exactly the
    priority-then-insertion-order contract.  The first item that does
    not fit that shape rebuilds the heap onto :class:`_HeapEntry` nodes
    (general orderable items, Python-level comparison) and the store
    stays in that mode.
    """

    __slots__ = ("_seq", "_heap", "_fast")

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._seq = 0
        self._heap: List[Any] = []
        self._fast = True

    @property
    def items(self):
        """Snapshot of the stored items in retrieval order (a new list)."""
        if self._fast:
            return [entry[2] for entry in sorted(self._heap)]
        return [entry.item for entry in sorted(self._heap)]

    def _size(self) -> int:
        return len(self._heap)

    def _go_slow(self) -> None:
        # Rebuild (priority, seq, item) tuples into _HeapEntry nodes.
        # Tuple ordering and _HeapEntry ordering agree for the items the
        # fast path admits (numeric non-NaN priorities: a == b exactly
        # when neither a < b nor b < a), so the rebuilt heap pops in the
        # same order the tuple heap would have.
        self._heap = [_HeapEntry(entry[2], entry[1]) for entry in self._heap]
        heapify(self._heap)
        self._fast = False

    def _do_put(self, event: StorePut) -> bool:
        if len(self._heap) < self._capacity:
            item = event.item
            if self._fast:
                if type(item) is PriorityItem:
                    priority = item.priority
                    kind = type(priority)
                    if (kind is float or kind is int) and priority == priority:
                        heappush(self._heap, (priority, self._seq, item))
                        self._seq += 1
                        event.succeed(None)
                        return True
                self._go_slow()
            heappush(self._heap, _HeapEntry(item, self._seq))
            self._seq += 1
            event.succeed(None)
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self._heap:
            if self._fast:
                event.succeed(heappop(self._heap)[2])
            else:
                event.succeed(heappop(self._heap).item)
            return True
        return False


class ContainerPut(Event):
    """Request to deposit *amount* into a container."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        self.env = container.env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self.amount = float(amount)
        container._put_waiters.append(self)
        container._dispatch()


class ContainerGet(Event):
    """Request to withdraw *amount* from a container."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        self.env = container.env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self.amount = float(amount)
        container._get_waiters.append(self)
        container._dispatch()


class Container:
    """A homogeneous bulk resource (e.g. bytes of burst-buffer space).

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Maximum level; ``inf`` for unbounded.
    init:
        Initial level.

    Raises
    ------
    ValueError
        If *capacity* is not positive or *init* lies outside
        ``[0, capacity]``.

    Notes
    -----
    Deposits and withdrawals are served strictly in request order (no
    reordering to fit smaller requests first), which keeps container
    traffic deterministic.

    ``put(amount)`` and ``get(amount)`` — deposit / withdraw; each
    returns an event that fires when served.  Bound as
    :func:`functools.partial` instance attributes for the same hot-path
    reason as :class:`Store`.
    """

    __slots__ = ("env", "_capacity", "_level", "_put_waiters", "_get_waiters",
                 "put", "get")

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if init < 0 or init > capacity:
            raise ValueError(f"init level {init} outside [0, {capacity}]")
        self.env = env
        self._capacity = float(capacity)
        self._level = float(init)
        self._put_waiters: Deque[ContainerPut] = deque()
        self._get_waiters: Deque[ContainerGet] = deque()
        #: Deposit: ``container.put(amount)`` -> ContainerPut.
        self.put = partial(ContainerPut, self)
        #: Withdraw: ``container.get(amount)`` -> ContainerGet.
        self.get = partial(ContainerGet, self)

    @property
    def capacity(self) -> float:
        """Maximum level."""
        return self._capacity

    @property
    def level(self) -> float:
        """Current level."""
        return self._level

    def _dispatch(self) -> None:
        put_waiters = self._put_waiters
        get_waiters = self._get_waiters
        progress = True
        while progress:
            progress = False
            while put_waiters:
                put = put_waiters[0]
                if self._level + put.amount <= self._capacity:
                    self._level += put.amount
                    put.succeed(None)
                    put_waiters.popleft()
                    progress = True
                else:
                    break
            while get_waiters:
                get = get_waiters[0]
                if self._level >= get.amount:
                    self._level -= get.amount
                    get.succeed(None)
                    get_waiters.popleft()
                    progress = True
                else:
                    break

    def __repr__(self) -> str:
        return f"<Container level={self._level}/{self._capacity}>"
