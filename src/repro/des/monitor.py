"""Lightweight instrumentation for simulations.

:class:`Trace` collects timestamped records emitted by simulation
components; the C/R models use it both for debugging (the protocol-trace
example) and for metric accounting cross-checks in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulation time of the record.
    source:
        Component that emitted it (e.g. ``"node/17"`` or ``"pckpt"``).
    kind:
        Short machine-readable tag (e.g. ``"ckpt_bb_start"``).
    detail:
        Arbitrary payload for humans / assertions.
    """

    time: float
    source: str
    kind: str
    detail: Any = None


class Trace:
    """An append-only, filterable record of simulation activity.

    Tracing is off by default in production runs; models accept an optional
    trace and emit only when one is supplied, so the hot path stays clean.
    """

    def __init__(self, env: "Environment", enabled: bool = True,
                 max_records: Optional[int] = None) -> None:
        self.env = env
        self.enabled = enabled
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self._counts: Dict[str, int] = {}

    def emit(self, source: str, kind: str, detail: Any = None) -> None:
        """Append a record at the current simulation time."""
        if not self.enabled:
            return
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if self.max_records is not None and len(self.records) >= self.max_records:
            return
        self.records.append(TraceRecord(self.env.now, source, kind, detail))

    def count(self, kind: str) -> int:
        """Number of records of *kind* (counted even past max_records)."""
        return self._counts.get(kind, 0)

    def filter(self, kind: Optional[str] = None, source: Optional[str] = None
               ) -> Iterator[TraceRecord]:
        """Iterate records matching the given kind and/or source."""
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if source is not None and rec.source != source:
                continue
            yield rec

    def kinds(self) -> Tuple[str, ...]:
        """All record kinds seen so far, in first-seen order."""
        return tuple(self._counts)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def format(self, limit: Optional[int] = None) -> str:
        """Render the trace as aligned text lines (for examples/debugging)."""
        rows = self.records if limit is None else self.records[:limit]
        lines = [
            f"[{rec.time:14.3f}s] {rec.source:<16s} {rec.kind:<24s} {rec.detail!r}"
            for rec in rows
        ]
        if limit is not None and len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more records)")
        return "\n".join(lines)
