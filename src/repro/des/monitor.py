"""Structured tracing for simulations.

:class:`Trace` collects timestamped records emitted by simulation
components.  Two record shapes exist:

* **instant events** (:meth:`Trace.emit`) — a point-in-time fact
  ("failure struck node 12");
* **spans** (:meth:`Trace.span_begin` / :meth:`Trace.span_end`, or the
  :meth:`Trace.span` context manager) — a named interval bracketing a
  protocol phase (a BB checkpoint, a p-ckpt phase 1, a recovery restore).
  Span durations are accumulated per name in :attr:`Trace.span_totals`
  even when the backing record buffer is bounded, so accounting
  cross-checks survive truncation.

Recording can be bounded two ways: ``max_records`` with ``ring=False``
(the default) keeps the *first* N records and drops the rest;
``ring=True`` keeps the *most recent* N (a flight recorder).  Emit-time
filters (``only_kinds`` / ``only_sources``) cut storage cost before a
record is built.

Traces export to JSONL (one record per line, :meth:`Trace.to_jsonl` /
:func:`load_jsonl`) and to the Chrome trace-event format
(:meth:`Trace.to_chrome_trace`) viewable in Perfetto or
``chrome://tracing``, with one displayed "thread" per record source.
See ``docs/OBSERVABILITY.md`` for the vocabulary and a walkthrough.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Collection, Dict, IO, Iterator, List,
                    Optional, Tuple, Union)

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["TraceRecord", "Trace", "load_jsonl", "INSTANT", "BEGIN", "END"]

#: Record phase markers (mirroring the Chrome trace-event vocabulary).
INSTANT = "I"
BEGIN = "B"
END = "E"


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulation time of the record.
    source:
        Component that emitted it (e.g. ``"node/17"`` or ``"pckpt"``).
        Sources map to "threads" in the Chrome trace export.
    kind:
        Short machine-readable tag (e.g. ``"ckpt_bb_start"``).  For span
        records this is the span name.
    detail:
        Arbitrary payload for humans / assertions.
    ph:
        Record phase: :data:`INSTANT` (default), :data:`BEGIN`, or
        :data:`END` for span boundaries.
    sid:
        Span id linking a BEGIN to its END (0 for instants).
    """

    time: float
    source: str
    kind: str
    detail: Any = None
    ph: str = INSTANT
    sid: int = 0


class _OpenSpan:
    """Bookkeeping for a span whose END has not been emitted yet."""

    __slots__ = ("sid", "source", "kind", "begin")

    def __init__(self, sid: int, source: str, kind: str, begin: float) -> None:
        self.sid = sid
        self.source = source
        self.kind = kind
        self.begin = begin


class _SpanContext:
    """Context manager returned by :meth:`Trace.span`."""

    __slots__ = ("_trace", "_source", "_kind", "_detail", "sid")

    def __init__(self, trace: "Trace", source: str, kind: str,
                 detail: Any) -> None:
        self._trace = trace
        self._source = source
        self._kind = kind
        self._detail = detail
        self.sid = 0

    def __enter__(self) -> "_SpanContext":
        self.sid = self._trace.span_begin(self._source, self._kind,
                                          self._detail)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._trace.span_end(self.sid)


class Trace:
    """An append-only, filterable record of simulation activity.

    Tracing is off by default in production runs; models accept an optional
    trace and emit only when one is supplied, so the hot path stays clean.

    Parameters
    ----------
    env:
        The environment whose clock timestamps records.
    enabled:
        Master switch; a disabled trace records nothing.
    max_records:
        Bound on stored records (``None`` = unbounded).
    ring:
        With ``max_records`` set: ``False`` keeps the first N records
        (historic behaviour), ``True`` keeps the most recent N.
    only_kinds / only_sources:
        When given, only matching records are stored *or counted* — the
        cheapest way to trace one protocol phase in a long run.
    trace_id:
        Optional request-correlation id (see :mod:`repro.obs.context`);
        stamped on every :meth:`to_jsonl` line and into the Chrome
        export's ``otherData`` so per-replication traces name the
        request that caused them.
    """

    def __init__(self, env: "Environment", enabled: bool = True,
                 max_records: Optional[int] = None, ring: bool = False,
                 only_kinds: Optional[Collection[str]] = None,
                 only_sources: Optional[Collection[str]] = None,
                 trace_id: Optional[str] = None) -> None:
        self.env = env
        self.enabled = enabled
        self.max_records = max_records
        self.ring = ring
        self.trace_id = trace_id
        self.only_kinds = frozenset(only_kinds) if only_kinds else None
        self.only_sources = frozenset(only_sources) if only_sources else None
        self._records: Union[List[TraceRecord], deque] = (
            deque(maxlen=max_records) if (ring and max_records) else []
        )
        #: Live subscribers: callables invoked with every accepted record
        #: the moment it is emitted, **before** any storage bound drops
        #: it — the stream the :class:`repro.spec.engine.SimEngine`
        #: ``subscribe`` hook (and any future service layer) feeds from.
        #: Subscribe via :meth:`add_listener`.
        self.listeners: List[Any] = []
        self._counts: Dict[str, int] = {}
        self._next_sid = 1
        self._open_spans: Dict[int, _OpenSpan] = {}
        #: Completed-span accounting: kind -> [count, total seconds].
        #: Maintained even past max_records truncation (like counts).
        self.span_totals: Dict[str, List[float]] = {}

    # -- properties kept for backwards compatibility ---------------------
    @property
    def records(self) -> List[TraceRecord]:
        """Stored records as a list (oldest first)."""
        recs = self._records
        return recs if isinstance(recs, list) else list(recs)

    # -- recording ----------------------------------------------------------
    def _accepts(self, source: str, kind: str) -> bool:
        if not self.enabled:
            return False
        if self.only_kinds is not None and kind not in self.only_kinds:
            return False
        if self.only_sources is not None and source not in self.only_sources:
            return False
        return True

    def add_listener(self, handler) -> None:
        """Stream every accepted record to *handler* as it is emitted.

        Listeners see records that storage bounds (``max_records``)
        would drop; emit-time filters (``only_kinds``/``only_sources``)
        still apply.  Handlers must not raise — an exception propagates
        into the emitting simulation component.
        """
        self.listeners.append(handler)

    def _store(self, rec: TraceRecord) -> None:
        if self.listeners:
            for handler in self.listeners:
                handler(rec)
        recs = self._records
        if isinstance(recs, deque):
            recs.append(rec)  # maxlen evicts the oldest automatically
            return
        if self.max_records is not None and len(recs) >= self.max_records:
            return
        recs.append(rec)

    def emit(self, source: str, kind: str, detail: Any = None) -> None:
        """Append an instant record at the current simulation time."""
        if not self._accepts(source, kind):
            return
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self._store(TraceRecord(self.env.now, source, kind, detail))

    # -- spans ---------------------------------------------------------------
    def span_begin(self, source: str, kind: str, detail: Any = None) -> int:
        """Open a span; returns its id (0 when filtered/disabled)."""
        if not self._accepts(source, kind):
            return 0
        sid = self._next_sid
        self._next_sid += 1
        now = self.env.now
        self._open_spans[sid] = _OpenSpan(sid, source, kind, now)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self._store(TraceRecord(now, source, kind, detail, BEGIN, sid))
        return sid

    def span_end(self, sid: int, detail: Any = None) -> float:
        """Close span *sid*; returns its duration (0.0 for id 0 / unknown)."""
        span = self._open_spans.pop(sid, None)
        if span is None:
            return 0.0
        now = self.env.now
        duration = now - span.begin
        totals = self.span_totals.get(span.kind)
        if totals is None:
            totals = self.span_totals[span.kind] = [0, 0.0]
        totals[0] += 1
        totals[1] += duration
        self._store(
            TraceRecord(now, span.source, span.kind, detail, END, sid)
        )
        return duration

    def span(self, source: str, kind: str, detail: Any = None) -> _SpanContext:
        """Context manager emitting a BEGIN/END pair around its body."""
        return _SpanContext(self, source, kind, detail)

    def open_spans(self) -> Tuple[Tuple[str, str], ...]:
        """(source, kind) of spans still open (diagnostics)."""
        return tuple(
            (s.source, s.kind) for s in self._open_spans.values()
        )

    def span_seconds(self, kind: str) -> float:
        """Total accumulated duration of completed spans named *kind*."""
        totals = self.span_totals.get(kind)
        return totals[1] if totals else 0.0

    # -- queries -----------------------------------------------------------
    def count(self, kind: str) -> int:
        """Number of records of *kind* (counted even past max_records)."""
        return self._counts.get(kind, 0)

    def filter(self, kind: Optional[str] = None, source: Optional[str] = None,
               ph: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate records matching the given kind, source, and/or phase."""
        for rec in self._records:
            if kind is not None and rec.kind != kind:
                continue
            if source is not None and rec.source != source:
                continue
            if ph is not None and rec.ph != ph:
                continue
            yield rec

    def kinds(self) -> Tuple[str, ...]:
        """All record kinds seen so far, in first-seen order."""
        return tuple(self._counts)

    def sources(self) -> Tuple[str, ...]:
        """All sources present in the stored records, in first-seen order."""
        seen: Dict[str, None] = {}
        for rec in self._records:
            seen.setdefault(rec.source, None)
        return tuple(seen)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def format(self, limit: Optional[int] = None) -> str:
        """Render the trace as aligned text lines (for examples/debugging)."""
        records = self.records
        rows = records if limit is None else records[:limit]
        marks = {INSTANT: " ", BEGIN: ">", END: "<"}
        lines = [
            f"[{rec.time:14.3f}s] {marks[rec.ph]} {rec.source:<16s} "
            f"{rec.kind:<24s} {rec.detail!r}"
            for rec in rows
        ]
        if limit is not None and len(records) > limit:
            lines.append(f"... ({len(records) - limit} more records)")
        return "\n".join(lines)

    # -- exporters ------------------------------------------------------------
    def to_jsonl(self, path_or_fp: Union[str, IO[str]]) -> int:
        """Write every stored record as one JSON object per line.

        Non-JSON-native details are stringified; records whose detail is
        built from JSON types round-trip exactly through
        :func:`load_jsonl`.  Returns the number of records written.
        """
        def _write(fp: IO[str]) -> int:
            n = 0
            for rec in self._records:
                line = {"t": rec.time, "source": rec.source,
                        "kind": rec.kind, "ph": rec.ph, "sid": rec.sid,
                        "detail": rec.detail}
                if self.trace_id is not None:
                    line["trace_id"] = self.trace_id
                fp.write(json.dumps(
                    line, default=str, separators=(",", ":"),
                ))
                fp.write("\n")
                n += 1
            return n

        if isinstance(path_or_fp, str):
            with open(path_or_fp, "w", encoding="utf-8") as fp:
                return _write(fp)
        return _write(path_or_fp)

    def to_chrome_trace(self, path_or_fp: Union[str, IO[str]],
                        time_scale: float = 1e6,
                        profiler: Optional[Any] = None) -> int:
        """Write the trace in Chrome trace-event JSON (Perfetto-viewable).

        Each source becomes one named "thread"; spans map to ``B``/``E``
        duration events and instants to scoped ``i`` events.  Simulation
        seconds are scaled by *time_scale* into the format's microsecond
        timestamps (the default renders 1 sim-second as 1 display-second).
        Returns the number of trace events written (metadata included).

        When a :class:`~repro.obs.profiler.KernelProfiler` is passed, a
        second process named ``kernel-profiler`` is appended with one
        thread per attribution owner; each thread lays out that owner's
        per-event-kind simulated-time totals as complete (``X``) events
        placed end-to-end, with dispatch count and wall seconds in the
        event args.  The tracks visualize *where simulated time went*,
        not when — positions are cumulative offsets, not timestamps.
        """
        tids: Dict[str, int] = {}
        events: List[Dict[str, Any]] = []
        for rec in self._records:
            tid = tids.get(rec.source)
            if tid is None:
                tid = tids[rec.source] = len(tids) + 1
            ev: Dict[str, Any] = {
                "name": rec.kind,
                "ph": "i" if rec.ph == INSTANT else rec.ph,
                "ts": rec.time * time_scale,
                "pid": 1,
                "tid": tid,
            }
            if rec.ph == INSTANT:
                ev["s"] = "t"  # thread-scoped instant
            if rec.detail is not None:
                ev["args"] = {"detail": _jsonable(rec.detail)}
            events.append(ev)
        meta = [
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "simulation"}},
        ] + [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
             "args": {"name": source}}
            for source, tid in tids.items()
        ]
        if profiler is not None:
            meta.append({"name": "process_name", "ph": "M", "pid": 2,
                         "args": {"name": "kernel-profiler"}})
            prof_tids: Dict[str, int] = {}
            offsets: Dict[str, float] = {}
            for entry in profiler.entries():
                tid = prof_tids.get(entry.owner)
                if tid is None:
                    tid = prof_tids[entry.owner] = len(prof_tids) + 1
                    meta.append({"name": "thread_name", "ph": "M", "pid": 2,
                                 "tid": tid, "args": {"name": entry.owner}})
                start = offsets.get(entry.owner, 0.0)
                dur = entry.sim_seconds * time_scale
                offsets[entry.owner] = start + dur
                events.append({
                    "name": entry.kind, "ph": "X", "ts": start, "dur": dur,
                    "pid": 2, "tid": tid,
                    "args": {"count": entry.count,
                             "wall_seconds": entry.wall_seconds,
                             "sim_seconds": entry.sim_seconds},
                })
        payload = {"traceEvents": meta + events, "displayTimeUnit": "ms"}
        if self.trace_id is not None:
            payload["otherData"] = {"trace_id": self.trace_id}
        if isinstance(path_or_fp, str):
            with open(path_or_fp, "w", encoding="utf-8") as fp:
                json.dump(payload, fp)
        else:
            json.dump(payload, path_or_fp)
        return len(meta) + len(events)


def _jsonable(detail: Any) -> Any:
    """Best-effort conversion of a record detail to JSON-native types."""
    try:
        json.dumps(detail)
        return detail
    except (TypeError, ValueError):
        if isinstance(detail, dict):
            return {str(k): _jsonable(v) for k, v in detail.items()}
        if isinstance(detail, (list, tuple, set, frozenset)):
            return [_jsonable(v) for v in detail]
        return str(detail)


def load_jsonl(path_or_fp: Union[str, IO[str]]) -> List[TraceRecord]:
    """Read records written by :meth:`Trace.to_jsonl`."""
    def _read(fp: IO[str]) -> List[TraceRecord]:
        out: List[TraceRecord] = []
        for line in fp:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            out.append(TraceRecord(
                time=obj["t"], source=obj["source"], kind=obj["kind"],
                detail=obj.get("detail"), ph=obj.get("ph", INSTANT),
                sid=obj.get("sid", 0),
            ))
        return out

    if isinstance(path_or_fp, str):
        with open(path_or_fp, "r", encoding="utf-8") as fp:
            return _read(fp)
    return _read(path_or_fp)
