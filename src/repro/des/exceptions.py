"""Exception types used by the :mod:`repro.des` discrete-event kernel.

The kernel deliberately mirrors SimPy's exception taxonomy so that
simulation code written against the paper's description (which used SimPy)
reads identically here.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "SimulationError",
    "Interrupt",
    "StopProcess",
    "EmptySchedule",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain.

    :meth:`Environment.run` catches this internally; user code only sees it
    when stepping the environment manually.
    """


class StopProcess(Exception):
    """Raised inside a process to terminate it early with a return value.

    Equivalent to executing ``return value`` inside the process generator;
    provided for call sites that are several frames below the generator and
    cannot ``return`` directly.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupt carries an arbitrary ``cause`` describing why the victim
    was interrupted (e.g. a failure-prediction notification in the p-ckpt
    protocol).  Interrupting a process does *not* remove it from the event
    it was waiting for; the victim may re-yield the same event to resume
    waiting, exactly like SimPy.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"
