"""Shared-resource primitives: :class:`Resource` and :class:`PriorityResource`.

These model contention points in the platform — most importantly the
limited number of concurrent BB→PFS drain slots (plain :class:`Resource`)
and the prioritized PFS access lanes used by the p-ckpt protocol
(:class:`PriorityResource`, where a *lower* priority value is served first,
matching "lower lead time ⇒ higher priority" from the paper).

Requests are events; a process acquires by ``yield resource.request()`` and
must release with ``resource.release(req)`` (or use the request as a context
manager).
"""

from __future__ import annotations

from collections import deque
from functools import partial
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Deque, List, Tuple

from .events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Request", "PriorityRequest", "Release", "Resource", "PriorityResource"]


class Request(Event):
    """A request to acquire one slot of a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ...  # slot held here
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        # Inlined Event.__init__ (requests are created once per acquire on
        # the drain/protocol hot paths; keep in sync with events.Event).
        self.env = resource.env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self.resource = resource
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw an unfulfilled request (no-op if already granted)."""
        if self._value is PENDING:
            self.resource._cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Release if granted; cancel if still waiting.
        if self._value is PENDING:
            self.cancel()
        elif self in self.resource.users:
            self.resource.release(self)


class PriorityRequest(Request):
    """A prioritized request; lower ``priority`` values are served first.

    Ties are broken by request time, then FIFO submission order.
    """

    __slots__ = ("priority", "time", "_key")

    def __init__(self, resource: "PriorityResource", priority: float = 0.0) -> None:
        self.priority = float(priority)
        self.time = resource.env.now
        super().__init__(resource)

    def __repr__(self) -> str:
        state = "granted" if self.triggered else "waiting"
        return f"<PriorityRequest prio={self.priority} ({state})>"


class Release(Event):
    """Event representing the release of a resource slot (fires at once)."""

    __slots__ = ("resource", "request")

    def __init__(self, resource: "Resource", request: Request) -> None:
        self.env = resource.env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self.resource = resource
        self.request = request
        resource._do_release(self)
        self.succeed(None)


class Resource:
    """A resource with *capacity* identical slots and FIFO queueing.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Number of slots that may be held concurrently (>= 1).

    Raises
    ------
    ValueError
        If *capacity* is less than 1.

    Notes
    -----
    Grant order is deterministic: FIFO over request creation, which in
    turn follows the deterministic event order of the environment.  The
    wait queue is a :class:`collections.deque` so the grant path pops
    from the left in O(1) (cancellation, the rare path, stays O(n)).

    ``request()`` and ``release(request)`` — acquire a slot (possibly
    immediately) / release a held one; each returns an event.  Both are
    bound as :func:`functools.partial` instance attributes rather than
    methods (the ``Environment.timeout`` hot-path pattern): the p-ckpt
    drain loops acquire and release once per checkpoint segment.
    """

    __slots__ = ("env", "_capacity", "users", "queue", "request", "release")

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = int(capacity)
        #: Requests currently holding a slot.
        self.users: List[Request] = []
        #: Requests waiting for a slot, in grant order.
        self.queue: Deque[Request] = deque()
        #: Acquire: ``resource.request()`` -> Request (see class docs).
        self.request = partial(Request, self)
        #: Release: ``resource.release(request)`` -> Release.
        self.release = partial(Release, self)

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    # -- internals ---------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed(None)
        else:
            self.queue.append(request)

    def _do_release(self, release: Release) -> None:
        try:
            self.users.remove(release.request)
        except ValueError:
            raise RuntimeError(
                f"cannot release {release.request!r}: it does not hold a slot"
            ) from None
        self._grant_next()

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed(None)

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} capacity={self._capacity} "
            f"users={len(self.users)} queued={len(self.queue)}>"
        )


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by priority.

    Lower priority values win.  This is the primitive beneath the p-ckpt
    node-local priority queue: vulnerable nodes request PFS access with
    ``priority = lead_time_remaining`` while healthy nodes request with a
    large constant, so every vulnerable node drains ahead of every healthy
    node, and the most imminent failure drains first.

    Ties are broken by request time, then submission sequence, so the
    grant order is deterministic for any mix of priorities.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: List[Tuple[float, float, int, PriorityRequest]] = []
        self._seq = 0
        #: Acquire with a priority (lower = sooner):
        #: ``resource.request(priority=...)`` -> PriorityRequest.
        self.request = partial(PriorityRequest, self)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if len(self.users) < self._capacity and not self._heap:
            self.users.append(request)
            request.succeed(None)
        else:
            heappush(self._heap, (request.priority, request.time, self._seq, request))
            self._seq += 1
            self.queue.append(request)

    def _grant_next(self) -> None:
        while self._heap and len(self.users) < self._capacity:
            _, _, _, nxt = heappop(self._heap)
            if nxt._value is not PENDING:  # cancelled entries are skipped
                continue
            self.queue.remove(nxt)
            self.users.append(nxt)
            nxt.succeed(None)

    def _cancel(self, request: Request) -> None:
        # Lazy deletion: mark by failing silently is wrong (waiters may
        # observe); instead remove from the visible queue and leave the heap
        # entry to be skipped at grant time.
        try:
            self.queue.remove(request)
        except ValueError:
            return
        request._value = _CANCELLED
        request._ok = True
        request.callbacks = None


#: Sentinel assigned to cancelled priority requests so the heap skips them.
_CANCELLED: Any = object()
