"""The simulation :class:`Environment` — event loop and clock.

The environment owns a binary-heap event queue ordered by
``(time, priority, sequence)``.  The sequence number makes scheduling
deterministic: two events scheduled for the same time and priority are
processed in the order they were scheduled.  Determinism matters for this
package because every experiment must be exactly reproducible from a seed
(see "Determinism contract" in ``docs/ARCHITECTURE.md``).

Performance
-----------
:meth:`Environment.run` is the hottest loop in the package — every
simulated second of every replication of every sweep goes through it — so
it inlines event dispatch instead of calling :meth:`Environment.step` per
event: the heap and the pop function are kept in locals, the
events-processed count is derived from heap deltas rather than counted,
and the per-event Python-level call overhead is gone.
``step()`` remains the single-event reference implementation (and the
kernel API for manual stepping); the inlined loops must match its
semantics exactly.  ``docs/PERFORMANCE.md`` describes the hot-path
architecture and how changes here are benchmarked.
"""

from __future__ import annotations

import time as _time
from functools import partial
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .events import NORMAL, AllOf, AnyOf, Event, Timeout
from .exceptions import EmptySchedule, SimulationError
from .process import Process, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import MetricsRegistry
    from ..obs.profiler import KernelProfiler

__all__ = ["Environment", "Infinity", "KERNEL_OWNER"]

#: Positive infinity, usable as an `until` value meaning "run to exhaustion".
Infinity: float = float("inf")

#: Attribution owner used by the profiler for events whose first callback
#: is not a :class:`Process` resume (condition checks, bare events, clock
#: idle advances).  See ``repro.obs.profiler``.
KERNEL_OWNER: str = "kernel"


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds in this package).

    Notes
    -----
    **Determinism contract.**  The event queue is ordered by
    ``(time, priority, sequence)`` where the sequence number increments on
    every schedule.  Given the same initial state and the same sequence of
    ``schedule`` calls, an environment dispatches the exact same events in
    the exact same order — there is no wall-clock, iteration-order, or
    hash-randomization dependence anywhere in the kernel.  Every
    replication of every experiment in this package relies on this.

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return "done"
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> env.now
    5.0
    >>> p.value
    'done'
    """

    __slots__ = (
        "_now",
        "_initial_time",
        "_queue",
        "_eid",
        "_active_proc",
        "metrics",
        "profiler",
        "events_processed",
        "queue_high_water",
        "wall_seconds",
        "event",
        "timeout",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = float(initial_time)
        self._initial_time: float = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid: int = 0
        self._active_proc: Optional[Process] = None
        #: Optional :class:`~repro.des.metrics.MetricsRegistry` shared by
        #: components holding this environment (attach via
        #: :meth:`attach_metrics`); ``None`` keeps recording disabled.
        self.metrics: Optional["MetricsRegistry"] = None
        #: Optional :class:`~repro.obs.profiler.KernelProfiler` (attach via
        #: :meth:`attach_profiler`); ``None`` keeps per-event attribution
        #: disabled.  This is the kernel analogue of the no-op-rebinding
        #: pattern used by ``CRSimulation``: :meth:`run` checks it exactly
        #: once per call (not per event) and dispatches to the separate
        #: :meth:`_run_profiled` loop, so the three inlined fast loops pay
        #: nothing when profiling is off.
        self.profiler: Optional["KernelProfiler"] = None
        # -- kernel self-profiling (cheap enough to leave always on) -----
        #: Events popped and dispatched so far.
        self.events_processed: int = 0
        #: Deepest the event heap has ever been.
        self.queue_high_water: int = 0
        #: Wall-clock seconds spent inside :meth:`run` loops.
        self.wall_seconds: float = 0.0
        # -- event factories (hot, so bound as C-level partials) ---------
        #: Create a new untriggered :class:`Event`: ``env.event()``.
        self.event = partial(Event, self)
        #: Create a :class:`Timeout` firing after a delay:
        #: ``env.timeout(delay, value=None)``.  Raises :class:`ValueError`
        #: if the delay is negative.  Bound as a :func:`functools.partial`
        #: rather than a method so the hottest event factory in the
        #: package skips one Python frame per call.
        self.timeout = partial(Timeout, self)

    # -- clock & introspection -------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else Infinity

    @property
    def queue_size(self) -> int:
        """Number of scheduled-but-unprocessed events (diagnostics)."""
        return len(self._queue)

    # -- event factories ---------------------------------------------------
    # ``event`` and ``timeout`` are per-instance partials (see __init__):
    # they behave exactly like the obvious methods but dispatch through
    # functools.partial's C call path.
    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` from *generator*.

        Raises
        ------
        TypeError
            If *generator* is not a generator object.
        """
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Condition that fires once all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Condition that fires once any of *events* has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule *event* to be processed after *delay*.

        Kernel API; user code triggers events via ``succeed``/``fail``.
        The event is keyed by ``(now + delay, priority, sequence)`` — see
        the class docstring for the determinism contract this implements.
        (:class:`~.events.Timeout` inlines an equivalent of this method;
        keep the two in sync.)

        Raises
        ------
        ValueError
            If *delay* is negative.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        queue = self._queue
        heappush(queue, (self._now + delay, priority, self._eid, event))
        self._eid += 1
        if len(queue) > self.queue_high_water:
            self.queue_high_water = len(queue)

    def step(self) -> None:
        """Process the single next event.

        This is the reference implementation of event dispatch: pop the
        earliest ``(time, priority, sequence)`` entry, advance the clock,
        consume the callback list (an event is processed exactly once),
        and re-raise unhandled failures.  :meth:`run` inlines these exact
        semantics.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        qlen = len(self._queue)
        if qlen > self.queue_high_water:
            self.queue_high_water = qlen
        prev_now = self._now
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events left") from None
        self.events_processed += 1

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        profiler = self.profiler
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            t0 = _time.perf_counter()
            for callback in callbacks:
                callback(event)
            wall = _time.perf_counter() - t0
            owner = getattr(callbacks[0], "__self__", None) if callbacks else None
            profiler.record(
                owner.name if isinstance(owner, Process) else KERNEL_OWNER,
                type(event).__name__,
                wall,
                self._now - prev_now,
            )

        if not event._ok and not event._defused:
            # Nobody handled the failure — propagate it out of the loop.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the event queue is exhausted.
            A number — run until the clock reaches that time (must be
            strictly greater than :attr:`now`).
            An :class:`Event` — run until that event is processed and
            return its value.

        Returns
        -------
        The value of *until* when it is an event, else ``None``.

        Raises
        ------
        ValueError
            If *until* is a number less than or equal to :attr:`now`
            (including exactly equal — a zero-length run is always a bug
            in the caller).
        SimulationError
            If *until* is an event and the queue empties before it fires.
        BaseException
            A failed event whose exception no process handled is
            re-raised out of the loop exactly as :meth:`step` would.
        """
        # Hot path: the three loop variants below inline step() with the
        # heap, heappop, and the event counter in locals.  Any semantic
        # change here must be mirrored in step() (and vice versa), and in
        # the instrumented twin _run_profiled().
        if self.profiler is not None:
            # Attribution profiling rides a separate loop so the fast
            # variants below stay branch-free per event.  This check is
            # the only cost the disabled mode pays: one attribute load
            # per run() call.
            return self._run_profiled(until)
        if until is None:
            at = Infinity
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            at = Infinity
            if stop_event.callbacks is None:
                # Already processed — nothing to run.
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(_StopFlag())
        else:
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until ({at}) must be greater than now ({self._now})")
            stop_event = None

        # The heap high-water mark is sampled at pop time (queue length is
        # maximal right before a pop) so the schedule fast paths don't pay
        # a per-push attribute compare.
        # The processed count is derived in the finally block instead of
        # incremented per event: every heap push increments _eid exactly
        # once (the sequence-uniqueness invariant the heap key relies on),
        # so pops == pushes-during-run + queue-length delta.
        queue = self._queue
        pop = heappop
        eid_start = self._eid
        len_start = len(queue)
        hw = self.queue_high_water
        wall_start = _time.perf_counter()
        try:
            if stop_event is not None:
                while queue:
                    qlen = len(queue)
                    if qlen > hw:
                        hw = qlen
                    self._now, _, _, event = pop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if stop_event.callbacks is None:
                        if stop_event._ok:
                            return stop_event._value
                        raise stop_event._value
            elif at == Infinity:
                while queue:
                    qlen = len(queue)
                    if qlen > hw:
                        hw = qlen
                    self._now, _, _, event = pop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
            else:
                while queue:
                    if queue[0][0] > at:
                        self._now = at
                        break
                    qlen = len(queue)
                    if qlen > hw:
                        hw = qlen
                    self._now, _, _, event = pop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
        finally:
            self.events_processed += (self._eid - eid_start) + (len_start - len(queue))
            if hw > self.queue_high_water:
                self.queue_high_water = hw
            self.wall_seconds += _time.perf_counter() - wall_start

        if stop_event is not None:
            # Loop drained without the flag firing.
            raise SimulationError(
                f"simulation ended before the until-event {stop_event!r} was triggered"
            )
        if at != Infinity and self._now < at:
            # Queue exhausted before the target time: advance the clock.
            self._now = at
        return None

    def _run_profiled(self, until: Any = None) -> Any:
        """Instrumented twin of :meth:`run` used when a profiler is attached.

        One unified loop replicates the exact semantics of all three
        inlined :meth:`run` variants (queue exhaustion, until-event with
        stop flag, bounded time with final clock advance) while recording
        a ``(owner, event-kind) -> (count, wall, sim)`` attribution per
        dispatched event.  Attribution rules — kept identical to the ones
        in :meth:`step`:

        * *owner* is the name of the :class:`Process` whose bound resume
          method is the event's first callback, else :data:`KERNEL_OWNER`;
        * *sim* is the clock delta this event's pop produced, so summing
          the sim column over all entries reproduces ``now - initial_time``
          exactly (clock advances past the last event are attributed to
          ``(KERNEL_OWNER, "idle")``);
        * *wall* is the perf-counter span of the callback dispatch, so the
          wall column sums to slightly less than :attr:`wall_seconds`
          (which also covers heap pops and loop bookkeeping).
        """
        profiler = self.profiler
        if until is None:
            at = Infinity
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            at = Infinity
            if stop_event.callbacks is None:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(_StopFlag())
        else:
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until ({at}) must be greater than now ({self._now})")
            stop_event = None

        queue = self._queue
        pop = heappop
        perf = _time.perf_counter
        record = profiler.record
        eid_start = self._eid
        len_start = len(queue)
        hw = self.queue_high_water
        wall_start = perf()
        try:
            while queue:
                if queue[0][0] > at:
                    idle = at - self._now
                    if idle > 0.0:
                        record(KERNEL_OWNER, "idle", 0.0, idle)
                    self._now = at
                    break
                qlen = len(queue)
                if qlen > hw:
                    hw = qlen
                prev_now = self._now
                self._now, _, _, event = pop(queue)
                callbacks = event.callbacks
                event.callbacks = None
                t0 = perf()
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                t1 = perf()
                owner = getattr(callbacks[0], "__self__", None) if callbacks else None
                record(
                    owner.name if isinstance(owner, Process) else KERNEL_OWNER,
                    type(event).__name__,
                    t1 - t0,
                    self._now - prev_now,
                )
                if not event._ok and not event._defused:
                    raise event._value
                if stop_event is not None and stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
        finally:
            self.events_processed += (self._eid - eid_start) + (len_start - len(queue))
            if hw > self.queue_high_water:
                self.queue_high_water = hw
            self.wall_seconds += perf() - wall_start

        if stop_event is not None:
            raise SimulationError(
                f"simulation ended before the until-event {stop_event!r} was triggered"
            )
        if at != Infinity and self._now < at:
            # Queue exhausted before the target time: advance the clock.
            idle = at - self._now
            if idle > 0.0:
                record(KERNEL_OWNER, "idle", 0.0, idle)
            self._now = at
        return None

    def run_until_empty(self) -> None:
        """Drain every remaining event (convenience for tests)."""
        self.run()

    # -- observability ----------------------------------------------------
    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Share a metrics registry with components using this environment."""
        self.metrics = registry

    def attach_profiler(self, profiler: "KernelProfiler") -> None:
        """Enable per-event attribution profiling (see ``repro.obs``).

        Subsequent :meth:`run` calls dispatch through the instrumented
        :meth:`_run_profiled` loop and :meth:`step` records per-event
        attributions into *profiler*.  Attach before running; detaching
        restores the zero-overhead fast loops.
        """
        self.profiler = profiler

    def detach_profiler(self) -> None:
        """Disable attribution profiling and restore the fast run loops."""
        self.profiler = None

    def kernel_stats(self) -> Dict[str, float]:
        """Kernel self-profile of this environment.

        Returns events processed, the heap-depth high-water mark, wall
        seconds spent in the event loop, simulated seconds elapsed, and the
        wall-per-sim-second ratio (the DES hot-loop figure of merit; wall
        values are measurement, not simulation, and are therefore excluded
        from the deterministic metrics registry).  ``pckpt bench`` reports
        these numbers for a fixed workload set — see ``docs/PERFORMANCE.md``.
        """
        sim_seconds = self._now - self._initial_time
        return {
            "events_processed": float(self.events_processed),
            "queue_high_water": float(self.queue_high_water),
            "wall_seconds": self.wall_seconds,
            "sim_seconds": sim_seconds,
            "wall_per_sim_second": (
                self.wall_seconds / sim_seconds if sim_seconds > 0 else 0.0
            ),
        }

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={len(self._queue)}>"


class _StopFlag:
    """Callback object marking that the until-event has been processed."""

    __slots__ = ()

    def __call__(self, event: Event) -> None:
        # Presence in callbacks is enough; run() checks callbacks is None.
        return None
