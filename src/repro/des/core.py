"""The simulation :class:`Environment` — event loop and clock.

The environment owns a binary-heap event queue ordered by
``(time, priority, sequence)``.  The sequence number makes scheduling
deterministic: two events scheduled for the same time and priority are
processed in the order they were scheduled.  Determinism matters for this
package because every experiment must be exactly reproducible from a seed
(see "Determinism contract" in ``docs/ARCHITECTURE.md``).

Performance
-----------
:meth:`Environment.run` is the hottest loop in the package — every
simulated second of every replication of every sweep goes through it — so
it inlines event dispatch instead of calling :meth:`Environment.step` per
event: the heap and the pop function are kept in locals, the
events-processed count is derived from heap deltas rather than counted,
and the per-event Python-level call overhead is gone.
``step()`` remains the single-event reference implementation (and the
kernel API for manual stepping); the inlined loops must match its
semantics exactly.  ``docs/PERFORMANCE.md`` describes the hot-path
architecture and how changes here are benchmarked.
"""

from __future__ import annotations

import math as _math
import time as _time
from collections import deque
from functools import partial
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .events import NORMAL, AllOf, AnyOf, Event, Timeout
from .exceptions import EmptySchedule, SimulationError
from .process import Process, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import MetricsRegistry
    from ..obs.profiler import KernelProfiler

__all__ = ["CalendarQueue", "Environment", "Infinity", "KERNEL_OWNER"]

#: Positive infinity, usable as an `until` value meaning "run to exhaustion".
Infinity: float = float("inf")

#: Attribution owner used by the profiler for events whose first callback
#: is not a :class:`Process` resume (condition checks, bare events, clock
#: idle advances).  See ``repro.obs.profiler``.
KERNEL_OWNER: str = "kernel"

#: Every this-many created calendar buckets, the queue probes whether the
#: workload still profits from bucketing (power of two: the probe check
#: is a single AND against ``_DENSITY_PROBE_MASK``).
_DENSITY_PROBE_BUCKETS: int = 512
_DENSITY_PROBE_MASK: int = _DENSITY_PROBE_BUCKETS - 1

#: Minimum schedules-per-created-bucket ratio at the density probe; below
#: it (sparse timer chains: every event lands in a fresh bucket) the
#: binary heap is at least as fast, so the queue demotes itself.
_MIN_EVENTS_PER_BUCKET: int = 2

#: Maximum fraction of pushes allowed through the Python-level
#: :meth:`CalendarQueue.push` binning path at a density probe, as the
#: denominator of 1/N.  The calendar only beats the heap when most
#: pushes are same-time cascade appends (C-level ``deque.append`` during
#: a bucket drain); a workload dominated by ``Timeout``-style binned
#: pushes pays a Python frame where ``heappush`` costs a C call, so it
#: runs faster on the heap and the queue demotes itself.  1/4 is the
#: measured break-even region: a bounded-store backpressure loop (one
#: timer per three pushes, 33% binned) loses ~20% on the calendar, while
#: cascade storms sit near 0% binned.
_MAX_BINNED_FRACTION_DENOM: int = 4


class CalendarQueue:
    """Bucket queue specialized for grid-aligned event times.

    The dominant scheduling pattern in this package is ``Timeout`` events
    on a coarse delay grid plus zero-delay cascades (``succeed``/``fail``
    at the current time).  When every pending time is an exact multiple
    of a known grid, a heap's ``log n`` tuple comparisons per operation
    buy nothing: events can be binned by integer bucket index
    ``t / grid`` and each bucket drained FIFO.  Within a bucket every
    entry carries the *exact same* float time (see below), so the heap's
    ``(time, priority, sequence)`` order reduces to "urgent deque before
    normal deque, append order within each" — O(1) deque ops per event.

    **Qualification rule** (:meth:`qualifies`): the grid must be a
    positive, finite power of two and the initial time non-negative and
    on-grid.  Power-of-two grids make ``t * (1/grid)`` an exact binary
    scaling, so the bucket-index computation ``int(t * inv)`` is
    rounding-free and the exactness check ``idx == t * inv`` proves every
    entry in a bucket shares one representable time value.  Any other
    grid would admit two *different* floats in one bucket and silently
    reorder them — so it never qualifies.

    **Fallback / demotion**: the queue is an optimization, never a
    constraint.  Any push it cannot bin exactly — off-grid or non-finite
    time, priority outside ``{URGENT, NORMAL}`` — and any workload too
    sparse to benefit (see :data:`_DENSITY_PROBE_BUCKETS`) demotes the
    environment back to the binary heap at runtime: all pending entries
    move into ``env._queue``, ``heapify`` restores the heap invariant
    (entries are the same ``(time, priority, sequence, event)`` tuples,
    so the total order is preserved bit-for-bit), and ``env._push``
    is rebound so subsequent pushes go straight to the heap.  The
    running :meth:`Environment._run_calendar` loop notices ``demoted``
    and continues in heap mode within the same accounting block, which
    keeps ``events_processed``/``queue_high_water`` identical to a
    heap-only run — the ``validate`` harness compares those bit-exactly
    across backends.
    """

    __slots__ = (
        "env",
        "grid",
        "inv",
        "buckets",
        "index_heap",
        "count",
        "demoted",
        "eid0",
        "created",
        "binned",
    )

    def __init__(self, env: "Environment", grid: float) -> None:
        self.env = env
        self.grid = grid
        self.inv = 1.0 / grid
        #: bucket index -> (urgent deque, normal deque); indexable by
        #: priority because URGENT == 0 and NORMAL == 1.
        self.buckets: Dict[int, Tuple[deque, deque]] = {}
        #: Min-heap of active bucket indices (ints compare faster than
        #: the heap's 4-tuples, and one entry covers a whole cascade).
        self.index_heap: List[int] = []
        self.count = 0
        self.demoted = False
        self.eid0 = env._eid
        self.created = 0
        #: Pushes that went through this Python-level binning method (as
        #: opposed to the raw in-bucket cascade appends the run loop
        #: installs); the probe demotes when their share grows too large.
        self.binned = 0

    @staticmethod
    def qualifies(grid: Any, initial_time: float) -> bool:
        """Whether *grid* admits exact bucketing from *initial_time*."""
        try:
            g = float(grid)
        except (TypeError, ValueError):
            return False
        if not (0.0 < g < Infinity) or _math.frexp(g)[0] != 0.5:
            return False
        t0 = float(initial_time)
        if t0 < 0.0:
            return False
        i = t0 / g
        return i == int(i)

    def push(self, entry: Tuple[float, int, int, "Event"]) -> None:
        """Bin one ``(time, priority, sequence, event)`` entry — or demote.

        Exactness is checked per push: the instant an entry cannot be
        binned losslessly the whole queue demotes to the heap, so the
        dispatch order is *always* the heap order.
        """
        try:
            t = entry[0]
            prio = entry[1]
            i = t * self.inv
            idx = int(i)  # OverflowError on inf, ValueError on nan
            if idx != i or prio < 0 or prio > 1:
                self._demote(entry)
                return
            b = self.buckets.get(idx)
            if b is None:
                created = self.created = self.created + 1
                if not created & _DENSITY_PROBE_MASK:
                    # Periodic profitability probe (on bucket creation
                    # only, so the per-push cost is one AND): demote when
                    # the workload is too sparse (every event a fresh
                    # bucket) or too binned-push-heavy (cascade appends,
                    # the only pushes the calendar makes cheaper than the
                    # heap, are a minority).
                    total = self.env._eid - self.eid0
                    if (total < created * _MIN_EVENTS_PER_BUCKET
                            or self.binned * _MAX_BINNED_FRACTION_DENOM > total):
                        self._demote(entry)
                        return
                self.buckets[idx] = b = (deque(), deque())
                heappush(self.index_heap, idx)
            b[prio].append(entry)
            self.count += 1
            self.binned += 1
        except (TypeError, ValueError, OverflowError):
            # Unorderable/odd priority or non-finite time: let the heap
            # apply its general ordering instead.
            self._demote(entry)

    def _demote(self, entry: Optional[tuple] = None) -> None:
        """Move every pending entry to ``env._queue`` and switch modes."""
        env = self.env
        heap = env._queue
        for u, n in self.buckets.values():
            heap.extend(u)
            heap.extend(n)
        if entry is not None:
            heap.append(entry)
        heapify(heap)
        self.buckets.clear()
        self.index_heap.clear()
        self.count = 0
        self.demoted = True
        env._cal = None
        env._push = partial(heappush, heap)
        env._push_now = env._push

    def pop(self) -> Tuple[float, int, int, "Event"]:
        """Remove and return the earliest entry in heap order.

        Raises :class:`IndexError` when empty (callers check
        :attr:`count` first, mirroring the heap's behaviour).
        """
        buckets = self.buckets
        bh = self.index_heap
        while True:
            idx = bh[0]
            b = buckets.get(idx)
            if b is None:  # pragma: no cover - stale-index safety net
                heappop(bh)
                continue
            u, n = b
            entry = u.popleft() if u else n.popleft()
            if not u and not n:
                del buckets[idx]
                heappop(bh)
            self.count -= 1
            return entry

    def peek(self) -> float:
        """Time of the earliest pending entry, or ``inf`` if none."""
        bh = self.index_heap
        while bh:
            idx = bh[0]
            if idx in self.buckets:
                return idx * self.grid
            heappop(bh)  # pragma: no cover - stale-index safety net
        return Infinity

    def __len__(self) -> int:
        return self.count


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds in this package).
    delay_grid:
        Optional hint that (nearly) every scheduled time will be an
        exact multiple of this grid.  When the hint *qualifies* (a
        positive, finite power of two with an on-grid, non-negative
        ``initial_time`` — see :meth:`CalendarQueue.qualifies`) the
        environment uses a :class:`CalendarQueue` instead of the binary
        heap; otherwise, or whenever an off-grid event is scheduled at
        runtime, it transparently falls back to the heap.  Pure
        optimization: dispatch order, results, and kernel stats are
        identical either way.

    Notes
    -----
    **Determinism contract.**  The event queue is ordered by
    ``(time, priority, sequence)`` where the sequence number increments on
    every schedule.  Given the same initial state and the same sequence of
    ``schedule`` calls, an environment dispatches the exact same events in
    the exact same order — there is no wall-clock, iteration-order, or
    hash-randomization dependence anywhere in the kernel.  Every
    replication of every experiment in this package relies on this.

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return "done"
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> env.now
    5.0
    >>> p.value
    'done'
    """

    __slots__ = (
        "_now",
        "_initial_time",
        "_queue",
        "_cal",
        "_push",
        "_push_now",
        "_eid",
        "_active_proc",
        "metrics",
        "profiler",
        "events_processed",
        "queue_high_water",
        "wall_seconds",
        "event",
        "timeout",
    )

    def __init__(self, initial_time: float = 0.0,
                 delay_grid: Optional[float] = None) -> None:
        self._now: float = float(initial_time)
        self._initial_time: float = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        #: Active :class:`CalendarQueue`, or ``None`` in heap mode.  When
        #: set, ``_queue`` is empty; a runtime demotion refills it and
        #: resets this to ``None``.
        self._cal: Optional[CalendarQueue] = None
        #: The push entry point every scheduling site goes through —
        #: ``heappush`` bound to ``_queue`` (a C-level partial, so heap
        #: mode pays nothing for the indirection) or the calendar's
        #: ``push`` method.
        self._push = partial(heappush, self._queue)
        #: Specialized push for NORMAL-priority entries at the *current*
        #: time — what ``Event.succeed``/``fail`` emit.  Identical to
        #: ``_push`` except while :meth:`_run_calendar` drains a bucket,
        #: when it is the bucket's raw ``deque.append``: a same-time
        #: cascade then schedules at C speed with no binning arithmetic.
        self._push_now = self._push
        self._eid: int = 0
        if delay_grid is not None and CalendarQueue.qualifies(delay_grid, initial_time):
            self._cal = CalendarQueue(self, float(delay_grid))
            self._push = self._cal.push
            self._push_now = self._push
        self._active_proc: Optional[Process] = None
        #: Optional :class:`~repro.des.metrics.MetricsRegistry` shared by
        #: components holding this environment (attach via
        #: :meth:`attach_metrics`); ``None`` keeps recording disabled.
        self.metrics: Optional["MetricsRegistry"] = None
        #: Optional :class:`~repro.obs.profiler.KernelProfiler` (attach via
        #: :meth:`attach_profiler`); ``None`` keeps per-event attribution
        #: disabled.  This is the kernel analogue of the no-op-rebinding
        #: pattern used by ``CRSimulation``: :meth:`run` checks it exactly
        #: once per call (not per event) and dispatches to the separate
        #: :meth:`_run_profiled` loop, so the three inlined fast loops pay
        #: nothing when profiling is off.
        self.profiler: Optional["KernelProfiler"] = None
        # -- kernel self-profiling (cheap enough to leave always on) -----
        #: Events popped and dispatched so far.
        self.events_processed: int = 0
        #: Deepest the event heap has ever been.
        self.queue_high_water: int = 0
        #: Wall-clock seconds spent inside :meth:`run` loops.
        self.wall_seconds: float = 0.0
        # -- event factories (hot, so bound as C-level partials) ---------
        #: Create a new untriggered :class:`Event`: ``env.event()``.
        self.event = partial(Event, self)
        #: Create a :class:`Timeout` firing after a delay:
        #: ``env.timeout(delay, value=None)``.  Raises :class:`ValueError`
        #: if the delay is negative.  Bound as a :func:`functools.partial`
        #: rather than a method so the hottest event factory in the
        #: package skips one Python frame per call.
        self.timeout = partial(Timeout, self)

    # -- clock & introspection -------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        cal = self._cal
        if cal is not None:
            return cal.peek()
        return self._queue[0][0] if self._queue else Infinity

    @property
    def queue_size(self) -> int:
        """Number of scheduled-but-unprocessed events (diagnostics)."""
        cal = self._cal
        return len(self._queue) + (cal.count if cal is not None else 0)

    # -- event factories ---------------------------------------------------
    # ``event`` and ``timeout`` are per-instance partials (see __init__):
    # they behave exactly like the obvious methods but dispatch through
    # functools.partial's C call path.
    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` from *generator*.

        Raises
        ------
        TypeError
            If *generator* is not a generator object.
        """
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Condition that fires once all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Condition that fires once any of *events* has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule *event* to be processed after *delay*.

        Kernel API; user code triggers events via ``succeed``/``fail``.
        The event is keyed by ``(now + delay, priority, sequence)`` — see
        the class docstring for the determinism contract this implements.
        (:class:`~.events.Timeout` inlines an equivalent of this method;
        keep the two in sync.)

        Raises
        ------
        ValueError
            If *delay* is negative.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._push((self._now + delay, priority, self._eid, event))
        self._eid += 1

    def step(self) -> None:
        """Process the single next event.

        This is the reference implementation of event dispatch: pop the
        earliest ``(time, priority, sequence)`` entry, advance the clock,
        consume the callback list (an event is processed exactly once),
        and re-raise unhandled failures.  :meth:`run` inlines these exact
        semantics.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        cal = self._cal
        if cal is not None:
            qlen = cal.count
            if qlen > self.queue_high_water:
                self.queue_high_water = qlen
            prev_now = self._now
            if not qlen:
                raise EmptySchedule("no scheduled events left")
            entry = cal.pop()
            self._now = entry[0]
            event = entry[3]
        else:
            qlen = len(self._queue)
            if qlen > self.queue_high_water:
                self.queue_high_water = qlen
            prev_now = self._now
            try:
                self._now, _, _, event = heappop(self._queue)
            except IndexError:
                raise EmptySchedule("no scheduled events left") from None
        self.events_processed += 1

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        profiler = self.profiler
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            t0 = _time.perf_counter()
            for callback in callbacks:
                callback(event)
            wall = _time.perf_counter() - t0
            owner = getattr(callbacks[0], "__self__", None) if callbacks else None
            profiler.record(
                owner.name if isinstance(owner, Process) else KERNEL_OWNER,
                type(event).__name__,
                wall,
                self._now - prev_now,
            )

        if not event._ok and not event._defused:
            # Nobody handled the failure — propagate it out of the loop.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the event queue is exhausted.
            A number — run until the clock reaches that time (must be
            strictly greater than :attr:`now`).
            An :class:`Event` — run until that event is processed and
            return its value.

        Returns
        -------
        The value of *until* when it is an event, else ``None``.

        Raises
        ------
        ValueError
            If *until* is a number less than or equal to :attr:`now`
            (including exactly equal — a zero-length run is always a bug
            in the caller).
        SimulationError
            If *until* is an event and the queue empties before it fires.
        BaseException
            A failed event whose exception no process handled is
            re-raised out of the loop exactly as :meth:`step` would.
        """
        # Hot path: the three loop variants below inline step() with the
        # heap, heappop, and the event counter in locals.  Any semantic
        # change here must be mirrored in step() (and vice versa), and in
        # the instrumented twin _run_profiled().
        if self.profiler is not None:
            # Attribution profiling rides a separate loop so the fast
            # variants below stay branch-free per event.  This check is
            # the only cost the disabled mode pays: one attribute load
            # per run() call.
            return self._run_profiled(until)
        if self._cal is not None:
            # Calendar mode has its own batched-dispatch loop; like the
            # profiler check this costs heap mode one load per run() call.
            return self._run_calendar(until)
        if until is None:
            at = Infinity
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            at = Infinity
            if stop_event.callbacks is None:
                # Already processed — nothing to run.
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(_StopFlag())
        else:
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until ({at}) must be greater than now ({self._now})")
            stop_event = None

        # The heap high-water mark is sampled at pop time (queue length is
        # maximal right before a pop) so the schedule fast paths don't pay
        # a per-push attribute compare.
        # The processed count is derived in the finally block instead of
        # incremented per event: every heap push increments _eid exactly
        # once (the sequence-uniqueness invariant the heap key relies on),
        # so pops == pushes-during-run + queue-length delta.
        queue = self._queue
        pop = heappop
        eid_start = self._eid
        len_start = len(queue)
        hw = self.queue_high_water
        wall_start = _time.perf_counter()
        try:
            if stop_event is not None:
                while queue:
                    qlen = len(queue)
                    if qlen > hw:
                        hw = qlen
                    self._now, _, _, event = pop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if stop_event.callbacks is None:
                        if stop_event._ok:
                            return stop_event._value
                        raise stop_event._value
            elif at == Infinity:
                while queue:
                    qlen = len(queue)
                    if qlen > hw:
                        hw = qlen
                    self._now, _, _, event = pop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
            else:
                while queue:
                    if queue[0][0] > at:
                        self._now = at
                        break
                    qlen = len(queue)
                    if qlen > hw:
                        hw = qlen
                    self._now, _, _, event = pop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
        finally:
            self.events_processed += (self._eid - eid_start) + (len_start - len(queue))
            if hw > self.queue_high_water:
                self.queue_high_water = hw
            self.wall_seconds += _time.perf_counter() - wall_start

        if stop_event is not None:
            # Loop drained without the flag firing.
            raise SimulationError(
                f"simulation ended before the until-event {stop_event!r} was triggered"
            )
        if at != Infinity and self._now < at:
            # Queue exhausted before the target time: advance the clock.
            self._now = at
        return None

    def _run_calendar(self, until: Any = None) -> Any:
        """Calendar-mode twin of :meth:`run` with batched bucket dispatch.

        Same semantics as the three inlined heap loops, but dispatch is
        batched per bucket: the clock store, the until-bound check, and
        the bucket lookup are paid once per *timestamp*, and every event
        of a same-time cascade then costs only a deque pop plus its
        callbacks.  Zero-delay cascades (``succeed`` during dispatch)
        land in the bucket currently being drained and are picked up by
        the same drain — urgent pushes jump ahead of pending normal
        entries exactly as the heap would order them.

        If the calendar demotes itself mid-run (off-grid push inside a
        callback), the loop falls through to an inlined heap loop within
        the same accounting block, so ``events_processed`` and
        ``queue_high_water`` come out identical to a heap-only run.
        """
        cal = self._cal
        if until is None:
            at = Infinity
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            at = Infinity
            if stop_event.callbacks is None:
                # Already processed — nothing to run.
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(_StopFlag())
        else:
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until ({at}) must be greater than now ({self._now})")
            stop_event = None

        queue = self._queue  # filled by a runtime demotion
        grid = cal.grid
        pop = heappop
        push_now_outer = self._push_now
        eid_start = self._eid
        len_start = cal.count + len(queue)
        hw = self.queue_high_water
        # Pending-count invariant for the calendar phase:
        # ``pending == negoff + self._eid`` at all times — every push
        # (raw same-time append or binned) increments ``_eid`` exactly
        # once, and ``negoff`` absorbs each pop.  This keeps the
        # per-event accounting free of attribute stores; ``cal.count``
        # is re-synced from the invariant in the finally block.
        negoff = cal.count - self._eid
        wall_start = _time.perf_counter()
        try:
            while not cal.demoted:
                bh = cal.index_heap
                if not bh:
                    break
                idx = bh[0]
                buckets = cal.buckets
                b = buckets.get(idx)
                if b is None:  # pragma: no cover - stale-index safety net
                    pop(bh)
                    continue
                t = idx * grid
                if t > at:
                    self._now = at
                    break
                self._now = t
                u, n = b
                # Same-time cascades scheduled by the callbacks below
                # belong in this very bucket, so succeed()/fail() may
                # append to its normal deque directly — C-level, no
                # binning.  Restored by the finally block (and by a
                # demotion).
                self._push_now = n.append
                while True:
                    # Urgent entries first, then normal, each FIFO: with
                    # one exact time per bucket this is the heap's
                    # (time, priority, sequence) order.  Re-checked per
                    # event so urgent pushes from callbacks jump ahead.
                    if u:
                        src = u
                    elif n:
                        src = n
                    else:
                        del buckets[idx]
                        pop(bh)
                        break
                    pend = negoff + self._eid
                    if pend > hw:
                        hw = pend
                    negoff -= 1
                    event = src.popleft()[3]
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if stop_event is not None and stop_event.callbacks is None:
                        if stop_event._ok:
                            return stop_event._value
                        raise stop_event._value
                    if cal.demoted:
                        break
            # Heap continuation: empty unless the calendar demoted
            # mid-run, in which case every pending entry is now in
            # ``queue`` and dispatch continues in heap order.  Mirrors
            # the three specialized run() variants so a demoted run pays
            # no per-event checks its until mode doesn't need.
            if stop_event is not None:
                while queue:
                    qlen = len(queue)
                    if qlen > hw:
                        hw = qlen
                    self._now, _, _, event = pop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if stop_event.callbacks is None:
                        if stop_event._ok:
                            return stop_event._value
                        raise stop_event._value
            elif at == Infinity:
                while queue:
                    qlen = len(queue)
                    if qlen > hw:
                        hw = qlen
                    self._now, _, _, event = pop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
            else:
                while queue:
                    if queue[0][0] > at:
                        self._now = at
                        break
                    qlen = len(queue)
                    if qlen > hw:
                        hw = qlen
                    self._now, _, _, event = pop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
        finally:
            pending = len(queue)
            if self._cal is not None:
                # Still in calendar mode: re-sync the authoritative
                # count from the invariant and restore the binning push.
                cal.count = negoff + self._eid
                self._push_now = push_now_outer
                pending += cal.count
            self.events_processed += (self._eid - eid_start) + (len_start - pending)
            if hw > self.queue_high_water:
                self.queue_high_water = hw
            self.wall_seconds += _time.perf_counter() - wall_start

        if stop_event is not None:
            # Loop drained without the flag firing.
            raise SimulationError(
                f"simulation ended before the until-event {stop_event!r} was triggered"
            )
        if at != Infinity and self._now < at:
            # Queue exhausted before the target time: advance the clock.
            self._now = at
        return None

    def _run_profiled(self, until: Any = None) -> Any:
        """Instrumented twin of :meth:`run` used when a profiler is attached.

        One unified loop replicates the exact semantics of all three
        inlined :meth:`run` variants (queue exhaustion, until-event with
        stop flag, bounded time with final clock advance) while recording
        a ``(owner, event-kind) -> (count, wall, sim)`` attribution per
        dispatched event.  Attribution rules — kept identical to the ones
        in :meth:`step`:

        * *owner* is the name of the :class:`Process` whose bound resume
          method is the event's first callback, else :data:`KERNEL_OWNER`;
        * *sim* is the clock delta this event's pop produced, so summing
          the sim column over all entries reproduces ``now - initial_time``
          exactly (clock advances past the last event are attributed to
          ``(KERNEL_OWNER, "idle")``);
        * *wall* is the perf-counter span of the callback dispatch, so the
          wall column sums to slightly less than :attr:`wall_seconds`
          (which also covers heap pops and loop bookkeeping).
        """
        profiler = self.profiler
        if until is None:
            at = Infinity
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            at = Infinity
            if stop_event.callbacks is None:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(_StopFlag())
        else:
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until ({at}) must be greater than now ({self._now})")
            stop_event = None

        queue = self._queue
        cal = self._cal
        pop = heappop
        perf = _time.perf_counter
        record = profiler.record
        eid_start = self._eid
        len_start = len(queue) + (cal.count if cal is not None else 0)
        hw = self.queue_high_water
        wall_start = perf()
        try:
            while True:
                # One loop covers both queue modes (profiling already
                # pays two perf-counter calls per event, so the mode
                # check is noise); a mid-run demotion flips to heap mode.
                if cal is not None:
                    if cal.demoted:
                        cal = None
                        continue
                    nxt = cal.peek()
                    if nxt == Infinity:
                        break
                else:
                    if not queue:
                        break
                    nxt = queue[0][0]
                if nxt > at:
                    idle = at - self._now
                    if idle > 0.0:
                        record(KERNEL_OWNER, "idle", 0.0, idle)
                    self._now = at
                    break
                qlen = cal.count if cal is not None else len(queue)
                if qlen > hw:
                    hw = qlen
                prev_now = self._now
                if cal is not None:
                    entry = cal.pop()
                    self._now = entry[0]
                    event = entry[3]
                else:
                    self._now, _, _, event = pop(queue)
                callbacks = event.callbacks
                event.callbacks = None
                t0 = perf()
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                t1 = perf()
                owner = getattr(callbacks[0], "__self__", None) if callbacks else None
                record(
                    owner.name if isinstance(owner, Process) else KERNEL_OWNER,
                    type(event).__name__,
                    t1 - t0,
                    self._now - prev_now,
                )
                if not event._ok and not event._defused:
                    raise event._value
                if stop_event is not None and stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
        finally:
            pending = len(queue)
            recal = self._cal
            if recal is not None:
                pending += recal.count
            self.events_processed += (self._eid - eid_start) + (len_start - pending)
            if hw > self.queue_high_water:
                self.queue_high_water = hw
            self.wall_seconds += perf() - wall_start

        if stop_event is not None:
            raise SimulationError(
                f"simulation ended before the until-event {stop_event!r} was triggered"
            )
        if at != Infinity and self._now < at:
            # Queue exhausted before the target time: advance the clock.
            idle = at - self._now
            if idle > 0.0:
                record(KERNEL_OWNER, "idle", 0.0, idle)
            self._now = at
        return None

    def run_until_empty(self) -> None:
        """Drain every remaining event (convenience for tests)."""
        self.run()

    # -- observability ----------------------------------------------------
    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Share a metrics registry with components using this environment."""
        self.metrics = registry

    def attach_profiler(self, profiler: "KernelProfiler") -> None:
        """Enable per-event attribution profiling (see ``repro.obs``).

        Subsequent :meth:`run` calls dispatch through the instrumented
        :meth:`_run_profiled` loop and :meth:`step` records per-event
        attributions into *profiler*.  Attach before running; detaching
        restores the zero-overhead fast loops.
        """
        self.profiler = profiler

    def detach_profiler(self) -> None:
        """Disable attribution profiling and restore the fast run loops."""
        self.profiler = None

    def kernel_stats(self) -> Dict[str, float]:
        """Kernel self-profile of this environment.

        Returns events processed, the heap-depth high-water mark, wall
        seconds spent in the event loop, simulated seconds elapsed, and the
        wall-per-sim-second ratio (the DES hot-loop figure of merit; wall
        values are measurement, not simulation, and are therefore excluded
        from the deterministic metrics registry).  ``pckpt bench`` reports
        these numbers for a fixed workload set — see ``docs/PERFORMANCE.md``.
        """
        sim_seconds = self._now - self._initial_time
        return {
            "events_processed": float(self.events_processed),
            "queue_high_water": float(self.queue_high_water),
            "wall_seconds": self.wall_seconds,
            "sim_seconds": sim_seconds,
            "wall_per_sim_second": (
                self.wall_seconds / sim_seconds if sim_seconds > 0 else 0.0
            ),
        }

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={self.queue_size}>"


class _StopFlag:
    """Callback object marking that the until-event has been processed."""

    __slots__ = ()

    def __call__(self, event: Event) -> None:
        # Presence in callbacks is enough; run() checks callbacks is None.
        return None
