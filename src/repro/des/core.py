"""The simulation :class:`Environment` — event loop and clock.

The environment owns a binary-heap event queue ordered by
``(time, priority, sequence)``.  The sequence number makes scheduling
deterministic: two events scheduled for the same time and priority are
processed in the order they were scheduled.  Determinism matters for this
package because every experiment must be exactly reproducible from a seed.
"""

from __future__ import annotations

import time as _time
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .events import NORMAL, AllOf, AnyOf, Event, Timeout
from .exceptions import EmptySchedule, SimulationError
from .process import Process, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import MetricsRegistry

__all__ = ["Environment", "Infinity"]

#: Positive infinity, usable as an `until` value meaning "run to exhaustion".
Infinity: float = float("inf")


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds in this package).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return "done"
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> env.now
    5.0
    >>> p.value
    'done'
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = float(initial_time)
        self._initial_time: float = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid: int = 0
        self._active_proc: Optional[Process] = None
        #: Optional :class:`~repro.des.metrics.MetricsRegistry` shared by
        #: components holding this environment (attach via
        #: :meth:`attach_metrics`); ``None`` keeps recording disabled.
        self.metrics: Optional["MetricsRegistry"] = None
        # -- kernel self-profiling (cheap enough to leave always on) -----
        #: Events popped and dispatched by :meth:`step` so far.
        self.events_processed: int = 0
        #: Deepest the event heap has ever been.
        self.queue_high_water: int = 0
        #: Wall-clock seconds spent inside :meth:`run` loops.
        self.wall_seconds: float = 0.0

    # -- clock & introspection -------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else Infinity

    @property
    def queue_size(self) -> int:
        """Number of scheduled-but-unprocessed events (diagnostics)."""
        return len(self._queue)

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after *delay*."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` from *generator*."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Condition that fires once all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Condition that fires once any of *events* has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule *event* to be processed after *delay*.

        Kernel API; user code triggers events via ``succeed``/``fail``.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heappush(self._queue, (self._now + delay, priority, self._eid, event))
        self._eid += 1
        if len(self._queue) > self.queue_high_water:
            self.queue_high_water = len(self._queue)

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events left") from None
        self.events_processed += 1

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure — propagate it out of the loop.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the event queue is exhausted.
            A number — run until the clock reaches that time.
            An :class:`Event` — run until that event is processed and
            return its value.

        Returns
        -------
        The value of *until* when it is an event, else ``None``.
        """
        if until is None:
            at = Infinity
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            at = Infinity
            if stop_event.callbacks is None:
                # Already processed — nothing to run.
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(_StopFlag())
        else:
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until ({at}) must be greater than now ({self._now})")
            stop_event = None

        wall_start = _time.perf_counter()
        try:
            while self._queue:
                next_time = self._queue[0][0]
                if next_time > at:
                    self._now = at
                    break
                self.step()
                if stop_event is not None and stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
        except _StopSimulation:  # pragma: no cover - internal control flow
            pass
        finally:
            self.wall_seconds += _time.perf_counter() - wall_start

        if stop_event is not None and stop_event.callbacks is not None:
            raise SimulationError(
                f"simulation ended before the until-event {stop_event!r} was triggered"
            )
        if until is None or stop_event is None:
            if at is not Infinity and self._now < at:
                self._now = at
            return None
        return None

    def run_until_empty(self) -> None:
        """Drain every remaining event (convenience for tests)."""
        wall_start = _time.perf_counter()
        try:
            while self._queue:
                self.step()
        finally:
            self.wall_seconds += _time.perf_counter() - wall_start

    # -- observability ----------------------------------------------------
    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Share a metrics registry with components using this environment."""
        self.metrics = registry

    def kernel_stats(self) -> Dict[str, float]:
        """Kernel self-profile of this environment.

        Returns events processed, the heap-depth high-water mark, wall
        seconds spent in the event loop, simulated seconds elapsed, and the
        wall-per-sim-second ratio (the DES hot-loop figure of merit; wall
        values are measurement, not simulation, and are therefore excluded
        from the deterministic metrics registry).
        """
        sim_seconds = self._now - self._initial_time
        return {
            "events_processed": float(self.events_processed),
            "queue_high_water": float(self.queue_high_water),
            "wall_seconds": self.wall_seconds,
            "sim_seconds": sim_seconds,
            "wall_per_sim_second": (
                self.wall_seconds / sim_seconds if sim_seconds > 0 else 0.0
            ),
        }

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={len(self._queue)}>"


class _StopSimulation(Exception):
    """Internal control-flow exception (kept for API parity; unused)."""


class _StopFlag:
    """Callback object marking that the until-event has been processed."""

    def __call__(self, event: Event) -> None:
        # Presence in callbacks is enough; run() checks callbacks is None.
        return None
