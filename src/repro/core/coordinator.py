"""Proactive-action arbitration for the hybrid model (Fig 5 + Sec. VI).

:class:`ProactiveCoordinator` is the decision brain shared by the C/R
models: given a prediction's lead time and the platform's FT latencies it
chooses among live migration, p-ckpt, safeguard checkpointing, or doing
nothing, according to the model's capability flags.  The hybrid rule is
the paper's: **LM is the preferred proactive choice** (cheaper in network
traffic, application keeps running) whenever the lead time covers the LM
transfer; otherwise p-ckpt guarantees the vulnerable node's commit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ProactiveAction", "ProactiveCoordinator"]


class ProactiveAction(enum.Enum):
    """What to do about a prediction."""

    IGNORE = "ignore"
    SAFEGUARD = "safeguard"
    PCKPT = "pckpt"
    LIVE_MIGRATION = "lm"


@dataclass(frozen=True)
class ProactiveCoordinator:
    """Capability-driven proactive decision rule.

    Attributes
    ----------
    supports_lm / supports_pckpt / supports_safeguard:
        Which mechanisms the C/R model implements.
    lm_transfer_seconds:
        FT latency of one live migration (θ); LM is chosen only when the
        lead time strictly exceeds it.
    lm_margin:
        Safety factor on θ (1.0 = paper's behaviour: any lead ≥ θ goes to
        LM).
    """

    supports_lm: bool = False
    supports_pckpt: bool = False
    supports_safeguard: bool = False
    lm_transfer_seconds: float = 0.0
    lm_margin: float = 1.0

    def __post_init__(self) -> None:
        if self.lm_transfer_seconds < 0:
            raise ValueError("lm_transfer_seconds must be non-negative")
        if self.lm_margin < 1.0:
            raise ValueError("lm_margin must be >= 1")
        if self.supports_lm and self.lm_transfer_seconds == 0.0 and self.lm_margin != 1.0:
            raise ValueError("margin without a transfer time is meaningless")

    def lm_feasible(self, lead_seconds: float) -> bool:
        """Whether a migration started now completes before the failure."""
        return (
            self.supports_lm
            and lead_seconds >= self.lm_margin * self.lm_transfer_seconds
        )

    def decide(self, lead_seconds: float) -> ProactiveAction:
        """Pick the proactive action for a prediction with this lead time.

        Order of preference (paper Sec. VI): LM when feasible, else
        p-ckpt, else safeguard, else nothing.
        """
        if lead_seconds < 0:
            raise ValueError("lead time must be non-negative")
        if self.lm_feasible(lead_seconds):
            return ProactiveAction.LIVE_MIGRATION
        if self.supports_pckpt:
            return ProactiveAction.PCKPT
        if self.supports_safeguard:
            return ProactiveAction.SAFEGUARD
        return ProactiveAction.IGNORE

    def should_abort_lm_for(self, new_lead: float, lm_remaining: float) -> bool:
        """Fig 5's abort rule: a prediction that LM cannot also cover.

        The in-flight migration is aborted when the *new* prediction's
        lead is too short for the protocol to wait for the migration —
        i.e. the new failure would strike before the current migration
        finishes, so p-ckpt must start immediately.
        """
        return self.supports_pckpt and new_lead < lm_remaining
