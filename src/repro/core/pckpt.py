"""The coordinated prioritized checkpoint (p-ckpt) protocol — Sec. VI.

This is the paper's contribution.  On a failure prediction the application
snapshots a globally consistent state and commits it to the PFS in two
phases:

* **Phase 1 — prioritized commits.**  Vulnerable nodes drain through a
  lead-time priority queue: the node whose failure is most imminent gets
  contention-free single-node PFS access first.  Nodes predicted to fail
  *during* the protocol join the queue (re-keyed if already queued).
* **Phase 2 — healthy commits.**  Once the queue empties, a ``pfs-commit``
  broadcast releases the healthy nodes, which commit at aggregate
  bandwidth.  A vulnerable arrival during phase 2 pauses it and reopens
  phase 1.

Failure semantics (the crux of p-ckpt's low FT latency): a failure whose
node has *already committed* does not kill the protocol — the per-node
checkpoint daemons on surviving nodes complete their commits, so the
snapshot stays viable and the failure counts as mitigated.  A failure on
a node that has **not** committed destroys an irreplaceable share of the
snapshot and aborts the protocol (:class:`ProtocolAborted`); recovery then
falls back to the last periodic checkpoint.

The protocol generator runs *inside* the application's DES process — the
application is blocked for the duration, which is exactly the paper's
checkpoint-overhead accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Union

from ..des import Environment, Interrupt
from ..failures.injector import FailureEvent, FalseAlarmEvent
from .priority import LeadTimePriorityQueue, VulnerableEntry

__all__ = [
    "ProtocolAborted",
    "ProtocolOutcome",
    "PckptProtocol",
    "entry_from_prediction",
]

_EPS = 1e-9


class ProtocolAborted(Exception):
    """A failure destroyed an uncommitted share of the protocol snapshot.

    Carries the fatal :class:`FailureEvent`; the application rolls back to
    its last periodic checkpoint.
    """

    def __init__(self, failure: FailureEvent) -> None:
        super().__init__(f"p-ckpt aborted by failure of node {failure.node}")
        self.failure = failure


@dataclass
class ProtocolOutcome:
    """Result of a completed p-ckpt protocol run.

    Attributes
    ----------
    snapshot_work:
        Application progress captured by the protocol snapshot.
    committed:
        Nodes that obtained a prioritized phase-1 commit, with commit times.
    pending_failures:
        Failures that struck committed nodes mid-protocol; the caller must
        run recovery for them after the protocol returns.
    phase1_seconds / phase2_seconds:
        Blocked time spent in each phase (checkpoint overhead;
        ``phase2_seconds`` is 0 when phase 2 runs asynchronously).
    healthy_nodes:
        Nodes whose shares remain to be flushed by the asynchronous
        phase 2 (0 when phase 2 ran synchronously).
    """

    snapshot_work: float
    committed: Dict[int, float]
    pending_failures: List[FailureEvent]
    phase1_seconds: float
    phase2_seconds: float
    healthy_nodes: int = 0

    @property
    def duration(self) -> float:
        """Total blocked time of the protocol."""
        return self.phase1_seconds + self.phase2_seconds


def entry_from_prediction(
    prediction: Union[FailureEvent, FalseAlarmEvent]
) -> VulnerableEntry:
    """Build a queue entry from either prediction kind.

    The protocol treats false alarms exactly like true predictions — it
    cannot tell them apart, just like the real system.
    """
    if isinstance(prediction, FailureEvent):
        return VulnerableEntry(prediction.node, prediction.time, prediction)
    return VulnerableEntry(
        prediction.node,
        prediction.prediction_time + prediction.claimed_lead,
        prediction,
    )


class PckptProtocol:
    """One execution of the two-phase prioritized commit protocol.

    Parameters
    ----------
    env:
        Simulation environment.
    snapshot_work:
        Application progress the snapshot captures (taken at start).
    total_nodes:
        Application node count.
    priority_write_seconds:
        Callable ``node -> seconds`` for one prioritized phase-1 commit.
    phase2_write_seconds:
        Callable ``n_healthy -> seconds`` for the aggregate phase-2 commit.
    initial:
        Vulnerable entries known at protocol start.
    already_covered:
        Nodes whose state needs no commit (e.g. already migrated away);
        failures of these nodes never abort the protocol.
    on_commit:
        Optional callback per phase-1 commit (FT bookkeeping).
    barrier_seconds:
        Cost charged for each global synchronization (the paper measures
        ≈8 µs at 2048 nodes and ignores it; kept configurable).
    include_phase2:
        When True (the conservative/blocking variant) the protocol also
        performs the healthy nodes' phase-2 commit synchronously, blocking
        the application.  When False (the paper's deployment: per-node
        checkpoint daemons flush phase 2 while the application resumes)
        :meth:`run` returns right after phase 1 and the caller schedules
        the asynchronous phase 2 from :attr:`ProtocolOutcome`.
    """

    def __init__(
        self,
        env: Environment,
        snapshot_work: float,
        total_nodes: int,
        priority_write_seconds: Callable[[int], float],
        phase2_write_seconds: Callable[[int], float],
        initial: List[VulnerableEntry],
        already_covered: Optional[Set[int]] = None,
        on_commit: Optional[Callable[[VulnerableEntry, float], None]] = None,
        barrier_seconds: float = 0.0,
        include_phase2: bool = True,
    ) -> None:
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        if not initial:
            raise ValueError("p-ckpt requires at least one vulnerable node")
        self.env = env
        self.snapshot_work = snapshot_work
        self.total_nodes = total_nodes
        self._write_seconds = priority_write_seconds
        self._phase2_seconds_fn = phase2_write_seconds
        self.queue = LeadTimePriorityQueue()
        for entry in initial:
            self.queue.push(entry)
        self.committed: Dict[int, float] = {}
        self.already_covered: Set[int] = set(already_covered or ())
        self.pending_failures: List[FailureEvent] = []
        self._on_commit = on_commit
        self.barrier_seconds = barrier_seconds
        self.include_phase2 = include_phase2
        self.current_writer: Optional[int] = None
        self._phase1_spent = 0.0
        self._phase2_spent = 0.0
        self._phase2_remaining: Optional[float] = None

    # -- interrupt handling ---------------------------------------------------
    def _dispatch(self, cause) -> None:
        """Handle an interrupt that landed during a protocol wait."""
        kind = cause[0]
        if kind in ("prediction", "proactive"):
            prediction = cause[1]
            node = (
                prediction.node
                if isinstance(prediction, (FailureEvent, FalseAlarmEvent))
                else None
            )
            if node is None:
                return
            if node in self.committed or node in self.already_covered:
                # Snapshot share already safe; nothing more to prioritize.
                return
            self.queue.push(entry_from_prediction(prediction))
        elif kind == "failure":
            failure: FailureEvent = cause[1]
            if failure.node in self.committed or failure.node in self.already_covered:
                self.pending_failures.append(failure)
            else:
                raise ProtocolAborted(failure)
        # Any other cause ("replan", "lm-done", ...) is irrelevant while
        # the application is blocked in the protocol.

    def _wait(self, duration: float, bail_on_new_vulnerable: bool):
        """Interruptible wait; returns the unserved remainder (0 if done).

        The epsilon applies to the residue left by an interrupt (it
        absorbs float accumulation error), not to the requested duration
        — even a sub-epsilon write is actually waited out, so blocked
        time is charged exactly.
        """
        remaining = duration
        while remaining > 0.0:
            start = self.env.now
            try:
                yield self.env.timeout(remaining)
                remaining = 0.0
            except Interrupt as intr:
                remaining -= self.env.now - start
                if remaining <= _EPS:
                    remaining = 0.0
                self._dispatch(intr.cause)
                if bail_on_new_vulnerable and self.queue:
                    return remaining
        return 0.0

    # -- the protocol ------------------------------------------------------
    def run(self):
        """Generator to be driven inside the application process.

        Returns a :class:`ProtocolOutcome`; raises :class:`ProtocolAborted`
        when a failure destroys an uncommitted snapshot share.  On abort,
        :attr:`phase1_spent` / :attr:`phase2_spent` still hold the blocked
        time burned, so the caller can account for it.
        """
        while True:
            # ---- Phase 1: prioritized vulnerable commits --------------
            while self.queue:
                entry = self.queue.pop()
                self.current_writer = entry.node
                t0 = self.env.now
                try:
                    yield from self._wait(
                        self._write_seconds(entry.node), bail_on_new_vulnerable=False
                    )
                finally:
                    self._phase1_spent += self.env.now - t0
                    self.current_writer = None
                self.committed[entry.node] = self.env.now
                if self._on_commit is not None:
                    self._on_commit(entry, self.env.now)

            # ---- pfs-commit broadcast ------------------------------------
            if self.barrier_seconds > 0.0:
                t0 = self.env.now
                yield from self._wait(self.barrier_seconds, bail_on_new_vulnerable=False)
                self._phase1_spent += self.env.now - t0

            if not self.include_phase2:
                # Phase 2 is flushed asynchronously by the per-node
                # checkpoint daemons; the application resumes now.
                break

            # ---- Phase 2: healthy aggregate commit -----------------------
            if self._phase2_remaining is None:
                n_healthy = self.total_nodes - len(self.committed) - len(
                    self.already_covered
                )
                self._phase2_remaining = (
                    self._phase2_seconds_fn(n_healthy) if n_healthy > 0 else 0.0
                )
            t0 = self.env.now
            try:
                self._phase2_remaining = yield from self._wait(
                    self._phase2_remaining, bail_on_new_vulnerable=True
                )
            finally:
                self._phase2_spent += self.env.now - t0
            if self._phase2_remaining <= _EPS:
                break
            # A new vulnerable node arrived: reopen phase 1.

        return ProtocolOutcome(
            snapshot_work=self.snapshot_work,
            committed=dict(self.committed),
            pending_failures=list(self.pending_failures),
            phase1_seconds=self._phase1_spent,
            phase2_seconds=self._phase2_spent,
            healthy_nodes=(
                0
                if self.include_phase2
                else self.total_nodes - len(self.committed) - len(self.already_covered)
            ),
        )

    @property
    def phase1_spent(self) -> float:
        """Blocked seconds spent in phase 1 so far (valid after abort too)."""
        return self._phase1_spent

    @property
    def phase2_spent(self) -> float:
        """Blocked seconds spent in phase 2 so far (valid after abort too)."""
        return self._phase2_spent
