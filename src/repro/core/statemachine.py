"""Node state machine of the hybrid C/R model (paper Fig 5).

Encodes the legal transitions of a node's health state and provides a
guarded transition helper.  The C/R models route every state change
through :func:`transition`, so an illegal protocol interleaving fails loudly
in simulation instead of silently corrupting FT accounting — and the
property tests fuzz the machine directly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..platform.node import NodeHealth

__all__ = ["ALLOWED_TRANSITIONS", "IllegalTransition", "transition", "can_transition"]


class IllegalTransition(RuntimeError):
    """Raised when a node attempts a transition Fig 5 does not permit."""


#: Legal state transitions (Fig 5), source → set of destinations.
ALLOWED_TRANSITIONS: Dict[NodeHealth, FrozenSet[NodeHealth]] = {
    NodeHealth.NORMAL: frozenset(
        {
            NodeHealth.VULNERABLE,  # failure predicted for this node
            NodeHealth.WAITING,     # p-ckpt notification from another node
            NodeHealth.FAILED,      # unpredicted failure
        }
    ),
    NodeHealth.VULNERABLE: frozenset(
        {
            NodeHealth.MIGRATING,   # enough lead time: live migration
            NodeHealth.NORMAL,      # committed / false alarm expired
            NodeHealth.FAILED,      # the predicted failure struck
        }
    ),
    NodeHealth.MIGRATING: frozenset(
        {
            NodeHealth.VULNERABLE,  # LM aborted (shorter-lead prediction)
            NodeHealth.NORMAL,      # LM completed: process vacated
            NodeHealth.FAILED,      # failure overtook the transfer
        }
    ),
    NodeHealth.WAITING: frozenset(
        {
            NodeHealth.NORMAL,      # pfs-commit received, phase 2 done
            NodeHealth.VULNERABLE,  # predicted to fail while waiting
            NodeHealth.FAILED,      # unpredicted failure while waiting
        }
    ),
    NodeHealth.FAILED: frozenset(
        {
            NodeHealth.NORMAL,      # replaced by a healthy spare
        }
    ),
}


def can_transition(src: NodeHealth, dst: NodeHealth) -> bool:
    """Whether Fig 5 permits the transition *src* → *dst*."""
    return dst in ALLOWED_TRANSITIONS[src]


def transition(src: NodeHealth, dst: NodeHealth) -> NodeHealth:
    """Validate and perform a transition, returning the new state.

    Raises
    ------
    IllegalTransition
        If the move is not in :data:`ALLOWED_TRANSITIONS`.
    """
    if not can_transition(src, dst):
        raise IllegalTransition(f"illegal node transition {src.value} -> {dst.value}")
    return dst
