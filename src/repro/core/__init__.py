"""The paper's contribution: the coordinated prioritized checkpoint
(p-ckpt) protocol, its lead-time priority queue, the Fig 5 node state
machine, and the hybrid proactive-action coordinator."""

from .coordinator import ProactiveAction, ProactiveCoordinator
from .pckpt import (
    PckptProtocol,
    ProtocolAborted,
    ProtocolOutcome,
    entry_from_prediction,
)
from .priority import LeadTimePriorityQueue, VulnerableEntry
from .statemachine import (
    ALLOWED_TRANSITIONS,
    IllegalTransition,
    can_transition,
    transition,
)

__all__ = [
    "PckptProtocol",
    "ProtocolAborted",
    "ProtocolOutcome",
    "entry_from_prediction",
    "LeadTimePriorityQueue",
    "VulnerableEntry",
    "ProactiveAction",
    "ProactiveCoordinator",
    "ALLOWED_TRANSITIONS",
    "IllegalTransition",
    "can_transition",
    "transition",
]
