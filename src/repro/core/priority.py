"""Lead-time priority queue for vulnerable nodes (paper Sec. VI).

"The p-ckpt process is implemented with node-local priority queues, where
vulnerable nodes with lower lead time to failures have higher priority
while all healthy nodes have equal lower priorities."

At any instant, ordering by *remaining* lead time equals ordering by the
predicted absolute failure time, so the queue keys on the latter — it is
stable as simulation time advances, whereas raw lead times would need
re-keying every step.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from ..failures.injector import FailureEvent, FalseAlarmEvent

__all__ = ["VulnerableEntry", "LeadTimePriorityQueue"]


@dataclass(frozen=True)
class VulnerableEntry:
    """One vulnerable node awaiting its prioritized PFS commit.

    Attributes
    ----------
    node:
        Node index.
    predicted_failure_time:
        Absolute time the failure is predicted to occur (the priority key;
        earlier = more urgent).
    prediction:
        The triggering prediction (a real :class:`FailureEvent` or a
        :class:`FalseAlarmEvent` — the protocol cannot tell them apart,
        exactly like the real system).
    """

    node: int
    predicted_failure_time: float
    prediction: Union[FailureEvent, FalseAlarmEvent]

    def lead_time_remaining(self, now: float) -> float:
        """Time left before the predicted failure."""
        return self.predicted_failure_time - now


class LeadTimePriorityQueue:
    """Min-heap of :class:`VulnerableEntry` by predicted failure time.

    Supports removal (a node whose migration completed, or whose alarm
    expired, leaves the queue) via lazy tombstoning.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, VulnerableEntry]] = []
        self._live: dict[int, VulnerableEntry] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __contains__(self, node: int) -> bool:
        return node in self._live

    def push(self, entry: VulnerableEntry) -> None:
        """Enqueue a vulnerable node.

        A node already queued is re-keyed (a *newer* prediction for the
        same node supersedes the old one — the Fig 5 "lower lead time"
        re-prediction case).
        """
        self._live[entry.node] = entry
        heapq.heappush(
            self._heap, (entry.predicted_failure_time, next(self._counter), entry)
        )

    def remove(self, node: int) -> Optional[VulnerableEntry]:
        """Remove a node from the queue (returns its entry, if present)."""
        return self._live.pop(node, None)

    def peek(self) -> Optional[VulnerableEntry]:
        """Most urgent live entry without removing it."""
        self._skim()
        return self._heap[0][2] if self._heap else None

    def pop(self) -> VulnerableEntry:
        """Remove and return the most urgent live entry."""
        self._skim()
        if not self._heap:
            raise IndexError("pop from empty LeadTimePriorityQueue")
        _, _, entry = heapq.heappop(self._heap)
        del self._live[entry.node]
        return entry

    def entries(self) -> Iterator[VulnerableEntry]:
        """Iterate live entries in arbitrary order."""
        return iter(self._live.values())

    def _skim(self) -> None:
        """Drop stale heap heads (removed or superseded entries)."""
        while self._heap:
            _, _, entry = self._heap[0]
            if self._live.get(entry.node) is entry:
                return
            heapq.heappop(self._heap)
