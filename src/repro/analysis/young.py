"""Optimal checkpoint interval formulas (paper Eqs. 1 and 2).

Young's first-order OCI applies because checkpoints are staged to fast
node-local BBs and drained asynchronously — the commit window to the PFS
is negligible relative to the interval (paper Sec. II).  The hybrid model
additionally discounts the failure rate by σ, the fraction of failures
live migration will avert, lengthening the interval (Eq. 2).
"""

from __future__ import annotations

import math

__all__ = ["young_oci", "sigma_adjusted_oci", "oci_elongation_percent"]


def young_oci(t_ckpt_bb: float, per_node_rate: float, nodes: int) -> float:
    """Eq. (1): :math:`t_{cmpt}^{opt} = \\sqrt{2 t_{ckpt}^{bb} / (\\lambda c)}`.

    Parameters
    ----------
    t_ckpt_bb:
        Seconds to write one checkpoint to the BBs.
    per_node_rate:
        λ — per-node failure rate (failures/second).
    nodes:
        c — number of compute nodes the job runs on.

    Returns
    -------
    Optimal compute seconds between checkpoints.
    """
    if t_ckpt_bb <= 0:
        raise ValueError("t_ckpt_bb must be positive")
    if per_node_rate <= 0:
        raise ValueError("failure rate must be positive")
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    return math.sqrt(2.0 * t_ckpt_bb / (per_node_rate * nodes))


def sigma_adjusted_oci(
    t_ckpt_bb: float, per_node_rate: float, nodes: int, sigma: float
) -> float:
    """Eq. (2): Young's OCI with the failure rate discounted by σ.

    σ is the fraction of failures predictable with lead time exceeding the
    live-migration transfer time θ — those failures are *avoided* (no
    recovery), so they do not count toward the effective rate.  Only the
    hybrid model (P2) and the LM model (M2) use this; p-ckpt-mitigated
    failures still require recovery and are deliberately not discounted.
    """
    if not (0.0 <= sigma < 1.0):
        raise ValueError("sigma must be in [0, 1)")
    return young_oci(t_ckpt_bb, per_node_rate * (1.0 - sigma), nodes)


def oci_elongation_percent(sigma: float) -> float:
    """Percent increase of the OCI caused by the σ discount.

    ``sigma_adjusted_oci / young_oci − 1 = 1/sqrt(1−σ) − 1`` (in percent).
    The paper reports ≈54–340% across its applications (Observation 6).
    """
    if not (0.0 <= sigma < 1.0):
        raise ValueError("sigma must be in [0, 1)")
    return (1.0 / math.sqrt(1.0 - sigma) - 1.0) * 100.0
