"""Overhead and fault-tolerance metric containers.

These mirror the paper's accounting exactly (Sec. V definitions):

* **checkpoint overhead** — wall time the application is *blocked* writing
  checkpoints (synchronous BB writes, proactive PFS writes) plus the
  slowdown imposed by in-flight live migrations;
* **recomputation overhead** — wall time spent re-executing work lost to
  failures;
* **recovery overhead** — wall time spent restoring state (BB/PFS reads,
  restart latency).

FT ratio = successfully mitigated failures / total failures.

:func:`trace_summary` bridges the observability layer back into this
accounting: it folds a :class:`~repro.des.monitor.Trace`'s span totals
into per-category second counts that can be compared against an
:class:`OverheadBreakdown` (the integration tests assert they agree to
within 1e-6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from ..des.monitor import Trace

__all__ = ["OverheadBreakdown", "FTStats", "percent_reduction", "trace_summary"]

SECONDS_PER_HOUR = 3600.0


@dataclass
class OverheadBreakdown:
    """Accumulated overhead, split by the paper's categories (seconds).

    ``migration`` is tracked separately for analysis but folded into the
    checkpoint category by :attr:`checkpoint_reported`, because the paper
    counts LM's (tiny) interference alongside proactive-action cost.
    """

    checkpoint: float = 0.0
    recomputation: float = 0.0
    recovery: float = 0.0
    migration: float = 0.0

    def validate(self) -> None:
        """Raise if any component is negative (accounting bug guard)."""
        for f in fields(self):
            v = getattr(self, f.name)
            if v < -1e-9:
                raise ValueError(f"negative overhead component {f.name}={v}")

    @property
    def checkpoint_reported(self) -> float:
        """Checkpoint category as the paper reports it (incl. LM cost)."""
        return self.checkpoint + self.migration

    @property
    def total(self) -> float:
        """Total fault-tolerance overhead (seconds)."""
        return self.checkpoint + self.recomputation + self.recovery + self.migration

    @property
    def total_hours(self) -> float:
        """Total overhead in hours (the annotation atop Fig 6's bars)."""
        return self.total / SECONDS_PER_HOUR

    def __add__(self, other: "OverheadBreakdown") -> "OverheadBreakdown":
        return OverheadBreakdown(
            checkpoint=self.checkpoint + other.checkpoint,
            recomputation=self.recomputation + other.recomputation,
            recovery=self.recovery + other.recovery,
            migration=self.migration + other.migration,
        )

    def scaled(self, factor: float) -> "OverheadBreakdown":
        """Component-wise scaling (used for averaging replications)."""
        return OverheadBreakdown(
            checkpoint=self.checkpoint * factor,
            recomputation=self.recomputation * factor,
            recovery=self.recovery * factor,
            migration=self.migration * factor,
        )


@dataclass
class FTStats:
    """Fault-tolerance event counts for one simulation run.

    Attributes
    ----------
    failures:
        Real failures injected.
    predicted:
        Failures the predictor caught (true predictions).
    mitigated_lm:
        Failures averted by a completed live migration.
    mitigated_pckpt:
        Failures survived because the vulnerable node's prioritized PFS
        commit finished in time.
    mitigated_safeguard:
        Failures survived because a full safeguard checkpoint finished.
    false_alarms:
        Predictions with no subsequent failure.
    lm_aborts:
        Live migrations aborted mid-flight (shorter-lead prediction or
        premature failure).
    """

    failures: int = 0
    predicted: int = 0
    mitigated_lm: int = 0
    mitigated_pckpt: int = 0
    mitigated_safeguard: int = 0
    false_alarms: int = 0
    lm_aborts: int = 0

    @property
    def mitigated(self) -> int:
        """Total failures mitigated by any proactive mechanism."""
        return self.mitigated_lm + self.mitigated_pckpt + self.mitigated_safeguard

    @property
    def ft_ratio(self) -> float:
        """Mitigated / total failures (0 when no failures occurred)."""
        return self.mitigated / self.failures if self.failures else 0.0

    @property
    def lm_pckpt_ft_difference(self) -> float:
        """(LM-mitigated − p-ckpt-mitigated) / total failures — Fig 8's y-axis.

        Positive ⇒ LM dominates; negative ⇒ p-ckpt dominates.
        """
        if not self.failures:
            return 0.0
        return (self.mitigated_lm - self.mitigated_pckpt) / self.failures

    def validate(self) -> None:
        """Raise on impossible count relationships."""
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"negative count {f.name}")
        if self.predicted > self.failures:
            raise ValueError("more true predictions than failures")
        if self.mitigated > self.failures:
            raise ValueError("more mitigations than failures")

    def __add__(self, other: "FTStats") -> "FTStats":
        return FTStats(
            failures=self.failures + other.failures,
            predicted=self.predicted + other.predicted,
            mitigated_lm=self.mitigated_lm + other.mitigated_lm,
            mitigated_pckpt=self.mitigated_pckpt + other.mitigated_pckpt,
            mitigated_safeguard=self.mitigated_safeguard + other.mitigated_safeguard,
            false_alarms=self.false_alarms + other.false_alarms,
            lm_aborts=self.lm_aborts + other.lm_aborts,
        )


def percent_reduction(base: float, value: float) -> float:
    """Percent reduction of *value* relative to *base* (higher = better).

    Returns 0 when *base* is 0 (no overhead to reduce).
    """
    if base < 0 or value < 0:
        raise ValueError("overheads must be non-negative")
    if base == 0.0:
        return 0.0
    return (base - value) / base * 100.0


#: Span kinds whose total duration constitutes the checkpoint category.
CHECKPOINT_SPAN_KINDS = ("ckpt_bb_write", "safeguard_write", "pckpt_protocol")
#: Span kind whose total duration constitutes the recovery category.
RECOVERY_SPAN_KIND = "recovery_restore"


def trace_summary(trace: "Trace") -> Dict:
    """Fold a trace's spans back into the paper's overhead categories.

    Returns a plain dict::

        {
          "spans":    {kind: {"count": n, "seconds": total}},
          "events":   {kind: instant-record count},
          "overhead": {"checkpoint": s, "recovery": s, "recomputation": s},
          "open_spans": n,
        }

    ``overhead`` reconstructs three of the four
    :class:`OverheadBreakdown` categories purely from the trace —
    checkpoint from the blocked-write span kinds, recovery from the
    restore spans, recomputation from the ``lost`` detail each restore
    span carries on its END record.  Migration overhead (LM slowdown) is
    a rate effect, not a blocked phase, so it has no span and is absent
    here.  The three reconstructed categories agree with the
    simulation's own accounting to within 1e-6 (asserted by the
    integration tests).

    Spans survive ring-buffer truncation (``Trace`` keeps running span
    totals), but the recomputation cross-check reads END records — on a
    truncated trace it only covers the retained window.
    """
    from ..des.monitor import END, INSTANT

    spans = {
        kind: {"count": count, "seconds": total}
        for kind, (count, total) in sorted(trace.span_totals.items())
    }
    events: Dict[str, int] = {}
    recomputation = 0.0
    for rec in trace.records:
        if rec.ph == END:
            if rec.kind == RECOVERY_SPAN_KIND and isinstance(rec.detail, dict):
                recomputation += float(rec.detail.get("lost", 0.0))
        elif rec.ph == INSTANT:
            events[rec.kind] = events.get(rec.kind, 0) + 1
    checkpoint = sum(
        trace.span_totals[k][1]
        for k in CHECKPOINT_SPAN_KINDS
        if k in trace.span_totals
    )
    recovery = (
        trace.span_totals[RECOVERY_SPAN_KIND][1]
        if RECOVERY_SPAN_KIND in trace.span_totals
        else 0.0
    )
    return {
        "spans": spans,
        "events": dict(sorted(events.items())),
        "overhead": {
            "checkpoint": checkpoint,
            "recovery": recovery,
            "recomputation": recomputation,
        },
        "open_spans": len(trace.open_spans()),
    }
