"""Analytical models: OCI formulas (Eqs 1–2), LM-vs-p-ckpt break-even
(Eqs 4–8), vectorized sweep evaluation, and the overhead/FT metric
containers."""

from .breakeven import (
    SIGMA_UPPER_BOUND,
    alpha_breakeven,
    alpha_breakeven_curve,
    alpha_breakeven_exact,
    beta_fraction,
    lm_checkpoint_reduction,
    pckpt_beats_lm,
    sigma_upper_bound,
)
from .expected import ExpectedOverheads, expected_base_overheads
from .metrics import FTStats, OverheadBreakdown, percent_reduction
from .sweeps import (
    ANALYTICAL_KINDS,
    AnalyticalResult,
    analytical_params,
    evaluate_analytical_batch,
)
from .young import oci_elongation_percent, sigma_adjusted_oci, young_oci

__all__ = [
    "young_oci",
    "sigma_adjusted_oci",
    "oci_elongation_percent",
    "SIGMA_UPPER_BOUND",
    "lm_checkpoint_reduction",
    "beta_fraction",
    "pckpt_beats_lm",
    "alpha_breakeven",
    "alpha_breakeven_curve",
    "alpha_breakeven_exact",
    "sigma_upper_bound",
    "OverheadBreakdown",
    "FTStats",
    "percent_reduction",
    "ExpectedOverheads",
    "expected_base_overheads",
    "ANALYTICAL_KINDS",
    "AnalyticalResult",
    "analytical_params",
    "evaluate_analytical_batch",
]
