"""Vectorized evaluation of the closed-form models over whole sweeps.

The scalar functions in :mod:`repro.analysis.young` and
:mod:`repro.analysis.breakeven` answer one configuration at a time; a
campaign sweep asks for hundreds.  This module evaluates an entire batch
of **analytical cells** in one numpy pass per model kind — the fast path
:func:`repro.campaign.scheduler.run_campaign` takes so analytical cells
never enter the DES at all.

Bitwise contract
----------------
The vectorized evaluators reproduce the scalar functions **bit for
bit**: every arithmetic expression keeps the scalar operand order, and
``+``/``-``/``*``/``/``/``sqrt`` are all correctly rounded in IEEE-754
double precision, so elementwise numpy evaluation cannot diverge from
the ``math``-module path.  ``tests/test_analytical_sweep.py`` pins this
down with ``float.hex`` comparisons across wide parameter grids; the
campaign layer relies on it so a store entry written by the batched
path is byte-identical to one written cell-by-cell.

Supported kinds (the ``kind`` field of an analytical cell):

``young-oci``
    Eq. (1) — params ``t_ckpt_bb``, ``per_node_rate``, ``nodes``;
    output ``oci``.
``sigma-oci``
    Eq. (2) — params as above plus ``sigma``; outputs ``oci`` and
    ``elongation_percent`` (Observation 6).
``breakeven``
    Eqs. (6)–(8) — param ``sigma``; outputs ``alpha`` (published Eq. 8)
    and ``alpha_exact`` (the consistent derivation, ``inf`` past the
    golden-ratio bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .breakeven import SIGMA_UPPER_BOUND

__all__ = [
    "ANALYTICAL_KINDS",
    "AnalyticalResult",
    "analytical_params",
    "evaluate_analytical_batch",
]


@dataclass(frozen=True)
class AnalyticalResult:
    """Outcome of one analytical cell — the closed form's in- and outputs.

    The analytical counterpart of
    :class:`~repro.experiments.runner.SimulationResult`: what the
    campaign scheduler returns (and the result store persists) for a
    cell evaluated in closed form.  ``replications`` is always 0 —
    analytical cells never run the DES — which lets the store's
    replication accounting treat both result types uniformly.
    """

    kind: str
    params: Dict[str, float] = field(default_factory=dict)
    outputs: Dict[str, float] = field(default_factory=dict)

    #: Analytical cells execute zero DES replications, by construction.
    replications: int = 0


#: Parameter names (in canonical order) required by each analytical kind.
ANALYTICAL_KINDS: Dict[str, Tuple[str, ...]] = {
    "young-oci": ("t_ckpt_bb", "per_node_rate", "nodes"),
    "sigma-oci": ("t_ckpt_bb", "per_node_rate", "nodes", "sigma"),
    "breakeven": ("sigma",),
}


def analytical_params(kind: str, params: Mapping[str, float]) -> Dict[str, float]:
    """Validate and normalize *params* for *kind* (floats, exact key set)."""
    try:
        names = ANALYTICAL_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown analytical kind {kind!r}; "
            f"expected one of {sorted(ANALYTICAL_KINDS)}"
        ) from None
    if set(params) != set(names):
        raise ValueError(
            f"analytical kind {kind!r} takes parameters {list(names)}, "
            f"got {sorted(params)}"
        )
    return {name: float(params[name]) for name in names}


def _columns(kind: str, batch: Sequence[Mapping[str, float]]) -> List[np.ndarray]:
    """Stack the batch's parameters into one float64 column per name."""
    names = ANALYTICAL_KINDS[kind]
    return [
        np.array([p[name] for p in batch], dtype=np.float64)
        for name in names
    ]


def _eval_young_oci(batch: Sequence[Mapping[str, float]]) -> List[Dict[str, float]]:
    # Mirrors analysis.young.young_oci, including its validation.
    t_bb, rate, nodes = _columns("young-oci", batch)
    if np.any(t_bb <= 0):
        raise ValueError("t_ckpt_bb must be positive")
    if np.any(rate <= 0):
        raise ValueError("failure rate must be positive")
    if np.any(nodes < 1):
        raise ValueError("nodes must be >= 1")
    oci = np.sqrt(2.0 * t_bb / (rate * nodes))
    return [{"oci": v} for v in oci.tolist()]


def _eval_sigma_oci(batch: Sequence[Mapping[str, float]]) -> List[Dict[str, float]]:
    # Mirrors sigma_adjusted_oci (Eq. 2) and oci_elongation_percent:
    # the discounted rate is formed first, exactly like the scalar call
    # chain young_oci(t, rate * (1 - sigma), nodes).
    t_bb, rate, nodes, sigma = _columns("sigma-oci", batch)
    if np.any(sigma < 0.0) or np.any(sigma >= 1.0):
        raise ValueError("sigma must be in [0, 1)")
    discounted = rate * (1.0 - sigma)
    if np.any(t_bb <= 0):
        raise ValueError("t_ckpt_bb must be positive")
    if np.any(discounted <= 0):
        raise ValueError("failure rate must be positive")
    if np.any(nodes < 1):
        raise ValueError("nodes must be >= 1")
    oci = np.sqrt(2.0 * t_bb / (discounted * nodes))
    elongation = (1.0 / np.sqrt(1.0 - sigma) - 1.0) * 100.0
    return [
        {"oci": o, "elongation_percent": e}
        for o, e in zip(oci.tolist(), elongation.tolist())
    ]


def _eval_breakeven(batch: Sequence[Mapping[str, float]]) -> List[Dict[str, float]]:
    # Mirrors alpha_breakeven (published Eq. 8, valid below
    # SIGMA_UPPER_BOUND) and alpha_breakeven_exact (inf at and past the
    # golden-ratio denominator zero).
    (sigma,) = _columns("breakeven", batch)
    if np.any(sigma < 0.0) or np.any(sigma >= SIGMA_UPPER_BOUND):
        raise ValueError(f"sigma must be in [0, {SIGMA_UPPER_BOUND})")
    root = np.sqrt(1.0 - sigma)
    alpha = (sigma + 1.0) / (sigma + root)
    denom = root - sigma
    exact = np.full_like(sigma, np.inf)
    positive = denom > 0.0
    np.divide(1.0 - sigma, denom, out=exact, where=positive)
    return [
        {"alpha": a, "alpha_exact": x}
        for a, x in zip(alpha.tolist(), exact.tolist())
    ]


_EVALUATORS = {
    "young-oci": _eval_young_oci,
    "sigma-oci": _eval_sigma_oci,
    "breakeven": _eval_breakeven,
}


def evaluate_analytical_batch(
    cells: Sequence,
) -> List[AnalyticalResult]:
    """Evaluate a batch of analytical cells, one numpy pass per kind.

    *cells* is any sequence of objects with ``kind`` and ``params``
    attributes (the campaign layer passes
    :class:`~repro.campaign.plan.AnalyticalCellSpec`).  Results come
    back in input order regardless of how the kinds interleave.  A
    single invalid parameter fails the whole batch — the same
    ``ValueError`` the scalar function would raise for that cell.
    """
    by_kind: Dict[str, List[int]] = {}
    for i, cell in enumerate(cells):
        if cell.kind not in _EVALUATORS:
            raise ValueError(
                f"unknown analytical kind {cell.kind!r}; "
                f"expected one of {sorted(ANALYTICAL_KINDS)}"
            )
        by_kind.setdefault(cell.kind, []).append(i)

    results: List[AnalyticalResult] = [None] * len(cells)  # type: ignore[list-item]
    for kind, indices in by_kind.items():
        outputs = _EVALUATORS[kind]([cells[i].params for i in indices])
        for i, out in zip(indices, outputs):
            results[i] = AnalyticalResult(
                kind=kind, params=dict(cells[i].params), outputs=out
            )
    return results
